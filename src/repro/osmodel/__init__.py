"""OS model: page tables and allocation policies."""

from repro.osmodel.allocation import (FirstTouchPolicy, IdentityPolicy,
                                      MCAwarePolicy, PageAllocationPolicy,
                                      PhysicalMemory, SequentialPolicy)
from repro.osmodel.page_table import (PageTable, first_touch_order,
                                      translate_traces)

__all__ = [
    "FirstTouchPolicy", "IdentityPolicy", "MCAwarePolicy",
    "PageAllocationPolicy", "PageTable", "PhysicalMemory",
    "SequentialPolicy", "first_touch_order", "translate_traces",
]
