"""Virtual-to-physical translation with pluggable allocation policies.

The simulator translates whole traces up front: virtual pages are
"faulted in" in (approximate) global first-touch order, each placed by
the configured :class:`~repro.osmodel.allocation.PageAllocationPolicy`,
and the resulting map is applied to every access in bulk.  First-touch
order across threads is reconstructed by merging each thread's first
occurrence index -- an arrival-order approximation that preserves what
the policies care about: *which core* touched a page first and roughly
*when* relative to other pages.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.osmodel.allocation import (PageAllocationPolicy, PhysicalMemory)


class PageTable:
    """Lazy vpn -> ppn map driven by an allocation policy."""

    def __init__(self, page_size: int, memory: PhysicalMemory,
                 policy: PageAllocationPolicy):
        if page_size < 1:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.memory = memory
        self.policy = policy
        self.entries: Dict[int, int] = {}

    def translate_page(self, vpn: int, core: int) -> int:
        """ppn for a vpn, allocating on first touch."""
        ppn = self.entries.get(vpn)
        if ppn is None:
            ppn = self.policy.place(self.memory, vpn, core)
            self.entries[vpn] = ppn
        return ppn

    def translate(self, vaddr: int, core: int) -> int:
        """Single-address convenience (tests, examples)."""
        vpn, offset = divmod(vaddr, self.page_size)
        return self.translate_page(vpn, core) * self.page_size + offset

    @property
    def num_pages(self) -> int:
        return len(self.entries)


def first_touch_order(traces: Sequence[np.ndarray], page_size: int,
                      thread_cores: Sequence[int], seed: int = 0
                      ) -> List[Tuple[int, int]]:
    """Global first-touch schedule: ``[(vpn, first_core), ...]`` in order.

    For each thread the first occurrence index of each virtual page is
    found vectorially; threads are then merged by position so that a page
    touched at position ``i`` by any thread precedes pages first touched
    at later positions.  Ties -- several threads reaching a page at the
    same loop position -- are broken by an explicit seeded RNG (one
    32-bit salt per thread drawn from ``random.Random(seed)``), modeling
    the race that decides real first-touch winners (a fixed thread-id
    tie-break would unrealistically funnel every contended page to
    thread 0) while keeping every run bit-reproducible for a fixed seed.
    """
    rng = random.Random(seed)
    salts = [rng.getrandbits(32) for _ in traces]
    columns = []  # per thread: (vpn, first_idx, race, tid, core) arrays
    for tid, trace in enumerate(traces):
        if len(trace) == 0:
            continue
        vpns = np.asarray(trace, dtype=np.int64) // page_size
        unique, first_idx = np.unique(vpns, return_index=True)
        race = _race_values(unique, salts[tid])
        columns.append((unique, first_idx.astype(np.int64), race,
                        np.full(len(unique), tid, dtype=np.int64),
                        np.full(len(unique), thread_cores[tid],
                                dtype=np.int64)))
    if not columns:
        return []
    vpn, idx, race, tid, core = (np.concatenate(parts)
                                 for parts in zip(*columns))
    # Winner per vpn: the lexicographically smallest (idx, race, tid)
    # key.  lexsort with vpn as the primary key groups each page's
    # contenders; the first row of each group is its winner.
    order = np.lexsort((core, tid, race, idx, vpn))
    svpn = vpn[order]
    lead = np.ones(len(svpn), dtype=bool)
    lead[1:] = svpn[1:] != svpn[:-1]
    winners = order[lead]
    # Global first-touch schedule: winners ordered by the same key.
    sched = np.lexsort((core[winners], tid[winners], race[winners],
                        idx[winners]))
    winners = winners[sched]
    return list(zip(vpn[winners].tolist(), core[winners].tolist()))


def _race_values(vpns: np.ndarray, salt: int) -> np.ndarray:
    """``((vpn * 2654435761) ^ salt) % 104729`` for every vpn, matching
    arbitrary-precision Python arithmetic exactly.

    The int64 fast path is exact while the product cannot overflow
    (every realistic trace: vpns are footprint-sized).  Beyond that the
    per-element Python loop preserves the historical values.
    """
    if len(vpns) == 0 or int(np.abs(vpns).max()) < (1 << 31):
        return ((vpns * 2654435761) ^ salt) % 104729
    return np.array([((int(v) * 2654435761) ^ salt) % 104729
                     for v in vpns.tolist()], dtype=np.int64)


def translate_traces(traces: Sequence[np.ndarray], page_table: PageTable,
                     thread_cores: Sequence[int],
                     seed: int = 0) -> List[np.ndarray]:
    """Translate every thread's virtual trace to physical addresses.

    Pages are faulted in global first-touch order (so order-sensitive
    policies behave as they would online), then each trace is mapped
    through the resulting table with a vectorized gather.  ``seed``
    drives the first-touch race tie-breaks (see
    :func:`first_touch_order`).
    """
    page = page_table.page_size
    for vpn, core in first_touch_order(traces, page, thread_cores, seed):
        page_table.translate_page(vpn, core)

    if not page_table.entries:
        return [np.asarray(t, dtype=np.int64).copy() for t in traces]
    mapped_vpns = np.fromiter(page_table.entries.keys(), dtype=np.int64,
                              count=len(page_table.entries))
    mapped_ppns = np.fromiter(page_table.entries.values(), dtype=np.int64,
                              count=len(page_table.entries))
    lookup = np.full(int(mapped_vpns.max()) + 1, -1, dtype=np.int64)
    lookup[mapped_vpns] = mapped_ppns
    out = []
    for trace in traces:
        v = np.asarray(trace, dtype=np.int64)
        vpns = v // page
        ppns = lookup[vpns]
        if np.any(ppns < 0):  # pragma: no cover - defensive
            raise RuntimeError("access to an unmapped page")
        out.append(ppns * page + v % page)
    return out
