"""Page-allocation policies (Section 5.3, "Page Interleaving" + Section 6.3).

Under page interleaving the memory-controller-select bits sit above the
page offset, so virtual-to-physical translation decides which MC owns a
page and the compiler needs OS help (Figure 12).  We model the physical
address space as ``pages_per_mc * num_mcs`` frames where frame ``ppn``
belongs to MC ``ppn % num_mcs`` (the hardware page interleaving), and
provide the policies the paper evaluates:

* :class:`SequentialPolicy` -- the default OS: frames handed out in
  first-touch order from a single free list, which decorrelates virtual
  pages from controllers (the baseline behaviour).
* :class:`MCAwarePolicy` -- the paper's madvise-style modified allocator:
  honor the compiler's desired-MC hint for each virtual page, falling
  back to the nearest controller with free frames when the desired one is
  full (so the approach "does not increase the number of page faults").
* :class:`FirstTouchPolicy` -- the OS-only baseline of Section 6.3 [20]:
  allocate a page from MC ``x`` when the first access comes from a node
  in cluster ``x``.
* :class:`IdentityPolicy` -- ppn = vpn; used for cache-line interleaving,
  where the MC-select bits are below the page offset and translation
  leaves them alone (Section 3).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.arch.clustering import L2ToMCMapping


class PhysicalMemory:
    """Frames grouped by owning MC: frame ``ppn`` belongs to
    ``ppn % num_mcs``.  Allocation is O(1) per frame.

    ``capacities`` (optional, one entry per MC) models uneven pools --
    a fault plan's page pressure removes frames from individual
    controllers, which is what forces the MC-aware policy onto its
    alternate-controller fallback path.
    """

    def __init__(self, num_mcs: int, pages_per_mc: int,
                 capacities: Optional[Sequence[int]] = None):
        if num_mcs < 1 or pages_per_mc < 1:
            raise ValueError("need at least one MC and one page")
        self.num_mcs = num_mcs
        self.pages_per_mc = pages_per_mc
        if capacities is None:
            self.capacities = [pages_per_mc] * num_mcs
        else:
            if len(capacities) != num_mcs:
                raise ValueError("need one capacity per MC")
            if any(c < 0 for c in capacities):
                raise ValueError("capacities must be non-negative")
            self.capacities = [int(c) for c in capacities]
            if sum(self.capacities) == 0:
                raise ValueError("no physical pages at all")
        self._next_in_mc = [0] * num_mcs   # frames handed out per MC
        self._sequential = 0               # cursor for sequential service
        self._limit = num_mcs * max(self.capacities)

    def free_in(self, mc: int) -> int:
        return self.capacities[mc] - self._next_in_mc[mc]

    @property
    def total_free(self) -> int:
        return sum(self.free_in(m) for m in range(self.num_mcs))

    def allocate_from(self, mc: int) -> Optional[int]:
        """A frame owned by ``mc``, or None when that MC's memory is full."""
        if not 0 <= mc < self.num_mcs:
            raise ValueError(f"MC {mc} out of range")
        if self.free_in(mc) == 0:
            return None
        ppn = self._next_in_mc[mc] * self.num_mcs + mc
        self._next_in_mc[mc] += 1
        return ppn

    def allocate_sequential(self) -> int:
        """The next frame in plain round-robin frame order (default OS)."""
        while self._sequential < self._limit:
            ppn = self._sequential
            self._sequential += 1
            mc = ppn % self.num_mcs
            idx = ppn // self.num_mcs
            if idx < self.capacities[mc] and idx >= self._next_in_mc[mc]:
                # Mark the frame used (sequential and per-MC cursors share
                # the same pool).
                self._next_in_mc[mc] = idx + 1
                return ppn
        raise MemoryError("physical memory exhausted")


class PageAllocationPolicy:
    """Strategy interface: pick a frame for a newly touched virtual page."""

    def place(self, memory: PhysicalMemory, vpn: int,
              first_core: int) -> int:
        raise NotImplementedError


class SequentialPolicy(PageAllocationPolicy):
    """Default OS behaviour: frames in first-touch order."""

    def place(self, memory: PhysicalMemory, vpn: int,
              first_core: int) -> int:
        return memory.allocate_sequential()


class IdentityPolicy(PageAllocationPolicy):
    """ppn = vpn: models translations that preserve the MC-select bits.

    Used for cache-line interleaving, where those bits are inside the
    page offset and the compiler can steer controllers from virtual
    addresses alone.
    """

    def place(self, memory: PhysicalMemory, vpn: int,
              first_core: int) -> int:
        return vpn


class MCAwarePolicy(PageAllocationPolicy):
    """The modified allocator of Section 5.3: honor compiler hints.

    ``hints`` maps virtual page numbers to desired hardware MC indices
    (produced by the layout pass).  Unhinted pages fall back to the
    default sequential behaviour.  When the desired MC is out of frames,
    the nearest alternate MC (by controller-node mesh distance) with free
    frames is used instead.
    """

    def __init__(self, hints: Dict[int, int], mapping: L2ToMCMapping):
        self.hints = hints
        self.mapping = mapping
        self.fallbacks = 0

    def _alternates(self, desired: int) -> List[int]:
        mesh = self.mapping.mesh
        nodes = self.mapping.mc_nodes
        order = sorted(range(len(nodes)),
                       key=lambda j: (mesh.distance(nodes[j],
                                                    nodes[desired]), j))
        return [j for j in order if j != desired]

    def place(self, memory: PhysicalMemory, vpn: int,
              first_core: int) -> int:
        desired = self.hints.get(vpn)
        if desired is None:
            return memory.allocate_sequential()
        ppn = memory.allocate_from(desired)
        if ppn is not None:
            return ppn
        self.fallbacks += 1
        for alternate in self._alternates(desired):
            ppn = memory.allocate_from(alternate)
            if ppn is not None:
                return ppn
        raise MemoryError("physical memory exhausted")


class FirstTouchPolicy(PageAllocationPolicy):
    """The OS-only first-touch baseline (Section 6.3).

    A page is allocated from MC ``x`` when its first access comes from a
    node in cluster ``x`` -- greedy, and wrong whenever later accesses
    come from other clusters (which the paper finds is the common case).
    With several MCs per cluster the least-loaded one is used; ties
    between equally loaded MCs are broken by an explicit seeded RNG
    (threaded from :class:`~repro.sim.run.RunSpec`), so runs are
    bit-reproducible for a fixed seed -- including fault-injection runs
    and the Figure 23 comparison.
    """

    def __init__(self, mapping: L2ToMCMapping, seed: int = 0):
        self.mapping = mapping
        self.seed = seed
        self._rng = random.Random(seed)

    def place(self, memory: PhysicalMemory, vpn: int,
              first_core: int) -> int:
        cluster = self.mapping.cluster_of_core(first_core)
        candidates = list(self.mapping.mcs_of_cluster(cluster))
        if len(candidates) > 1:
            # Seeded race model: the placement order among equally free
            # controllers depends on the RNG stream, not on list order.
            self._rng.shuffle(candidates)
        candidates.sort(key=lambda m: -memory.free_in(m))
        for mc in candidates:
            ppn = memory.allocate_from(mc)
            if ppn is not None:
                return ppn
        return memory.allocate_sequential()
