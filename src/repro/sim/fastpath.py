"""The hit-filtered fast event loop: bit-identical, miss-only heap.

The reference loop in :mod:`repro.sim.system` pushes *every* access of
every thread through the global heap, although L1 and L2 hits touch no
global state at all: with private L2s, one thread per node, no write
invalidations and no phase tracking, a hit's outcome (LRU movement,
counters, latency) depends only on the thread's own earlier accesses.
This module exploits that:

1. **Replay** each thread's stream once against its real L1/L2 cache
   objects (same LRU lists, same counters), classifying every access as
   L1 hit / L2 hit / L2 miss and recording, per miss, the L2 line and
   the line the fill evicted.
2. **Aggregate** the time each thread spends in the hits *between*
   consecutive misses.  When every latency in play is integer-valued
   (the common case -- ``effective_overlap == 0`` and no fractional
   fault factors), simulated times are integer-valued doubles, IEEE-754
   addition over them is exact and associative, and the per-access
   advance chain collapses into an int64 prefix sum that is
   bit-identical to the reference's sequential adds.  Otherwise a
   general mode replays the reference's exact per-access floating-point
   operation chain in a tight loop -- still far cheaper than a heap
   event per access.
3. **Simulate only the misses** on the global heap.  The miss
   subsequence pops in the same ``(time, tid)`` order as in the
   reference loop (events execute in global time order and hits of
   other threads mutate nothing shared), so links, banks, the directory
   and every float accumulator evolve through the identical sequence of
   operations -- the resulting :class:`~repro.sim.metrics.RunMetrics`
   is equal bit for bit, which ``tests/test_fastpath_equivalence.py``
   asserts across mappings, interleavings, fault plans, and validation/
   observability levels.

Network sends are inlined (route table + busy-until link updates on the
:class:`~repro.noc.network.Network`'s own state) when no fault model,
audit, or telemetry is attached; otherwise the regular ``send`` method
runs so detours, audits and telemetry stay bit-identical too.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.metrics import RunMetrics

from repro.cache.cache import set_indices as _set_indices_bulk


def eligible(sim, streams: Sequence) -> bool:
    """Whether the fast loop is exact for this simulator + streams.

    The per-thread replay requires that hits are thread-local: private
    L2s (a shared L2 routes L1 misses over the NoC), no write
    invalidations (a remote write could invalidate lines mid-stream),
    no per-access phase accounting (charged per heap event in the
    reference loop), and at most one active thread per node (two
    threads sharing caches interleave in global time order).  Anything
    else -- fault plans, the optimal scheme, audits, telemetry, either
    interleaving -- is supported exactly.
    """
    config = sim.config
    if config.shared_l2 or config.model_writes:
        return False
    if sim.directory is None:
        return False
    nodes = [s.node for s in streams if s.length]
    if len(nodes) != len(set(nodes)):
        return False
    if any(s.phases is not None for s in streams):
        return False
    return True


def _integer_times(sim) -> bool:
    """Whether every simulated timestamp stays an integer-valued double,
    making float addition exact and the hit-advance chain collapsible
    into an int64 prefix sum (see the module docstring)."""
    config = sim.config
    if sim._keep != 1.0:
        return False
    latencies = (config.l1_latency, config.l2_latency,
                 config.hop_latency, config.thread_stagger,
                 config.row_hit_cycles, config.row_miss_cycles,
                 config.channel_cycles)
    if any(not float(x).is_integer() for x in latencies):
        return False
    plan = sim._fault_plan
    if plan is not None and not plan.empty:
        for deg in plan.link_degradations:
            if not float(deg.factor).is_integer():
                return False
        for fault in plan.mc_faults:
            if fault.kind == "slow" \
                    and not float(fault.factor).is_integer():
                return False
            for edge in (fault.start, fault.end):
                if not (math.isinf(edge) or float(edge).is_integer()):
                    return False
    return True


def _set_indices(lines: List[int], arr: Optional[np.ndarray],
                 num_sets: int) -> List[int]:
    """Hashed set index per line address, in bulk (the shared helper
    next to the scalar hash in :mod:`repro.cache.cache`)."""
    return _set_indices_bulk(lines, num_sets, arr=arr)


class _ThreadRecord:
    """One thread's replayed miss schedule."""

    __slots__ = ("stream", "pos", "line2s", "evicted", "nmiss", "k",
                 "deltas", "tail", "cls")

    def __init__(self, stream):
        self.stream = stream
        self.pos: List[int] = []
        self.line2s: List[int] = []
        self.evicted: List[Optional[int]] = []
        self.nmiss = 0
        self.k = 0
        self.deltas: Optional[List[int]] = None  # exact mode only
        self.tail = 0
        self.cls: Optional[bytearray] = None     # general mode only


def _replay_thread(sim, stream, m: RunMetrics) -> _ThreadRecord:
    """Classify one thread's accesses against its real caches.

    Runs the same LRU list operations ``SetAssociativeCache`` performs
    (inlined -- this loop visits every access), so final cache state and
    hit/miss counters match the reference exactly.  Directory updates
    are deliberately *not* applied here: they read/write global state
    and are replayed in heap order by :func:`run_events`.
    """
    rec = _ThreadRecord(stream)
    node = stream.node
    l1 = sim.l1[node]
    l2 = sim.l2[node]
    l1_lines = stream.l1_lines
    l2_lines = stream.l2_lines
    n = stream.length
    idx1 = _set_indices(l1_lines, stream.np_l1, l1.num_sets)
    idx2 = _set_indices(l2_lines, stream.np_l2, l2.num_sets)
    sets1, ways1 = l1.sets, l1.ways
    sets2, ways2 = l2.sets, l2.ways
    cls = bytearray(n)
    pos_append = rec.pos.append
    line_append = rec.line2s.append
    evict_append = rec.evicted.append
    h1 = h2 = 0
    for i in range(n):
        a1 = l1_lines[i]
        w1 = sets1[idx1[i]]
        if a1 in w1:
            if w1[0] != a1:
                w1.remove(a1)
                w1.insert(0, a1)
            h1 += 1
            continue
        a2 = l2_lines[i]
        w2 = sets2[idx2[i]]
        if a2 in w2:
            if w2[0] != a2:
                w2.remove(a2)
                w2.insert(0, a2)
            h2 += 1
            cls[i] = 1
        else:
            cls[i] = 2
            pos_append(i)
            line_append(a2)
            w2.insert(0, a2)
            evict_append(w2.pop() if len(w2) > ways2 else None)
        w1.insert(0, a1)
        if len(w1) > ways1:
            w1.pop()
    l1.hits += h1
    l1.misses += n - h1
    l2.hits += h2
    l2.misses += len(rec.pos)
    m.total_accesses += n
    m.l1_hits += h1
    m.l2_hits += h2
    rec.nmiss = len(rec.pos)
    rec.cls = cls
    return rec


def _advance(t: float, gaps: List[int], cls: bytearray, lo: int, hi: int,
             l1_latency, l2_latency, keep: float) -> float:
    """General-mode timing: replicate the reference loop's per-access
    floating-point operation chain over hit accesses ``[lo, hi)``."""
    for i in range(lo, hi):
        ta = t + gaps[i]
        if cls[i] == 0:
            t = ta + l1_latency
        else:
            tb = ta + l1_latency
            issue = tb - l1_latency
            finish = tb + l2_latency
            t = issue + keep * (finish - issue)
    return t


def run_events(sim, streams: Sequence, m: RunMetrics) -> List[float]:
    """Replay all threads, then simulate only the misses on the heap.

    Mutates the simulator's caches, directory, network and controllers
    exactly as the reference loop would; returns per-thread finish
    times.  Callers must have checked :func:`eligible` first.
    """
    config = sim.config
    l1_latency = config.l1_latency
    l2_latency = config.l2_latency
    exact = _integer_times(sim)
    keep = sim._keep
    stagger = config.thread_stagger

    finish_times = [0.0] * len(streams)
    recs: List[Optional[_ThreadRecord]] = [None] * len(streams)
    heap = []
    for tid, stream in enumerate(streams):
        if not stream.length:
            continue
        rec = _replay_thread(sim, stream, m)
        recs[tid] = rec
        t0 = float(tid * stagger)
        cls = rec.cls
        n = stream.length
        if exact:
            gaps_arr = stream.np_gaps
            if gaps_arr is None:
                gaps_arr = np.asarray(stream.gaps, dtype=np.int64)
            c = np.frombuffer(cls, dtype=np.uint8)
            adv = gaps_arr + l1_latency + (c == 1) * l2_latency
            adv[c == 2] = 0
            cum = np.cumsum(adv)
            if rec.nmiss:
                marks = cum[rec.pos]
                rec.deltas = np.diff(marks).tolist()
                rec.tail = int(cum[-1] - marks[-1])
                heap.append((t0 + int(marks[0]), tid))
            else:
                finish_times[tid] = t0 + int(cum[-1])
            rec.cls = None  # timing fully folded into deltas
        else:
            gaps = stream.gaps
            if rec.nmiss:
                heap.append((_advance(t0, gaps, cls, 0, rec.pos[0],
                                      l1_latency, l2_latency, keep), tid))
            else:
                finish_times[tid] = _advance(t0, gaps, cls, 0, n,
                                             l1_latency, l2_latency, keep)
    heapq.heapify(heap)
    if not heap:
        return finish_times

    # -- locals for the miss loop --------------------------------------
    directory = sim.directory
    find_sharer = directory.find_sharer
    add_sharer = directory.add_sharer
    remove_sharer = directory.remove_sharer
    controllers = sim.controllers
    mc_nodes = sim.mc_nodes
    nearest = sim._nearest_mc
    optimal = sim.optimal
    mc_faults = sim._mc_faults
    route_mc = sim._route_mc
    control_flits = config.control_flits
    data_flits = config.data_flits
    # Imported here (not at module top) to avoid a circular import:
    # repro.sim.system pulls this module in lazily from run().
    from repro.sim.system import DIRECTORY_LATENCY

    net = sim.network
    inline = (net.faults is None and net.audit is None
              and net._telemetry is None)
    if inline:
        # Inlined Network.send over the network's own route table and
        # busy-until state: same operations in the same order, minus
        # the per-message attribute lookups and fault/audit/telemetry
        # branches (all statically absent here).
        routes = net._routes
        mesh_route = net.mesh.route
        lf_control = net.link_free[net.VNET_CONTROL]
        lf_data = net.link_free[net.VNET_DATA]
        stats = net.stats
        messages = stats.messages
        total_hops = stats.total_hops
        flit_hops = stats.flit_hops
        wait_cycles = stats.wait_cycles
        hop_latency = config.hop_latency
        tail_control = min(control_flits, config.critical_word_flits)
        tail_data = min(data_flits, config.critical_word_flits)

        def send_control(src, dst, depart):
            nonlocal messages, total_hops, flit_hops, wait_cycles
            messages += 1
            if src == dst:
                return depart, 0
            t = depart
            links = routes.get((src, dst))
            if links is None:
                links = routes[(src, dst)] = mesh_route(src, dst)
            for link in links:
                free_at = lf_control[link]
                if free_at > t:
                    wait_cycles += free_at - t
                    t = free_at
                lf_control[link] = t + control_flits
                t += hop_latency
            hops = len(links)
            total_hops += hops
            flit_hops += hops * control_flits
            return t + tail_control, hops

        def send_data(src, dst, depart):
            nonlocal messages, total_hops, flit_hops, wait_cycles
            messages += 1
            if src == dst:
                return depart, 0
            t = depart
            links = routes.get((src, dst))
            if links is None:
                links = routes[(src, dst)] = mesh_route(src, dst)
            for link in links:
                free_at = lf_data[link]
                if free_at > t:
                    wait_cycles += free_at - t
                    t = free_at
                lf_data[link] = t + data_flits
                t += hop_latency
            hops = len(links)
            total_hops += hops
            flit_hops += hops * data_flits
            return t + tail_data, hops
    else:
        net_send = net.send

        def send_control(src, dst, depart):
            return net_send(src, dst, control_flits, depart, vnet=0)

        def send_data(src, dst, depart):
            return net_send(src, dst, data_flits, depart)

    onchip_hops = m.onchip_hops
    offchip_hops = m.offchip_hops
    mc_node_requests = m.mc_node_requests
    onchip_net_sum = m.onchip_net_sum
    offchip_net_sum = m.offchip_net_sum
    offchip_mem_sum = m.offchip_mem_sum
    offchip_queue_sum = m.offchip_queue_sum
    onchip_remote = m.onchip_remote
    offchip = m.offchip
    heappop = heapq.heappop
    heappush = heapq.heappush

    # -- the miss-only event loop --------------------------------------
    # Each handler is the reference _step_private from the L2-miss
    # branch on, operation for operation (the accumulator op order
    # matters for float bit-identity).
    while heap:
        t0, tid = heappop(heap)
        rec = recs[tid]
        stream = rec.stream
        k = rec.k
        i = rec.pos[k]
        node = stream.node
        t = t0 + stream.gaps[i]
        t += l1_latency
        issue = t - l1_latency
        t += l2_latency
        line2 = rec.line2s[k]

        mc = nearest[node] if optimal else stream.mcs[i]
        if mc_faults is not None:
            mc = route_mc(mc, t, m)
        mc_node = mc_nodes[mc]
        t1, h1 = send_control(node, mc_node, t)
        t1 += DIRECTORY_LATENCY

        owner = find_sharer(line2, node)
        if owner is not None:
            t2, h2 = send_control(mc_node, owner, t1)
            t2 += l2_latency
            t3, h3 = send_data(owner, node, t2)
            onchip_remote += 1
            net_cycles = (t1 - DIRECTORY_LATENCY - t) \
                + (t2 - l2_latency - t1) + (t3 - t2)
            onchip_net_sum += net_cycles
            onchip_hops[h1 + h2 + h3] += 1
            finish = t3
        else:
            finish_mc, wait, _ = controllers[mc].service(
                stream.banks[i], stream.rows[i], t1)
            t3, h3 = send_data(mc_node, node, finish_mc)
            offchip += 1
            offchip_net_sum += (t1 - DIRECTORY_LATENCY - t) \
                + (t3 - finish_mc)
            offchip_mem_sum += finish_mc - t1
            offchip_queue_sum += wait
            offchip_hops[h1 + h3] += 1
            mc_node_requests[mc, node] += 1
            finish = t3

        evicted = rec.evicted[k]
        if evicted is not None:
            remove_sharer(evicted, node)
        add_sharer(line2, node)
        ret = issue + keep * (finish - issue)

        k += 1
        rec.k = k
        if k < rec.nmiss:
            if rec.deltas is not None:
                heappush(heap, (ret + rec.deltas[k - 1], tid))
            else:
                heappush(heap, (_advance(ret, stream.gaps, rec.cls,
                                         i + 1, rec.pos[k],
                                         l1_latency, l2_latency, keep),
                                tid))
        else:
            if rec.deltas is not None:
                finish_times[tid] = ret + rec.tail
            else:
                finish_times[tid] = _advance(ret, stream.gaps, rec.cls,
                                             i + 1, stream.length,
                                             l1_latency, l2_latency,
                                             keep)

    m.onchip_net_sum = onchip_net_sum
    m.offchip_net_sum = offchip_net_sum
    m.offchip_mem_sum = offchip_mem_sum
    m.offchip_queue_sum = offchip_queue_sum
    m.onchip_remote = onchip_remote
    m.offchip = offchip
    if inline:
        stats.messages = messages
        stats.total_hops = total_hops
        stats.flit_hops = flit_hops
        stats.wait_cycles = wait_cycles
    return finish_times
