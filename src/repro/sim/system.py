"""The full-system simulator: cores, caches, NoC, directories, MCs.

Models the two organizations of Figure 2:

* **Private L2s** (Figure 2a): an L1 miss probes the local L2 (same
  node, no network).  An L2 miss sends a request over the NoC to the
  directory cached at the MC owning the address (path 1); the directory
  either forwards to a sharing L2 (cache-to-cache transfer -- an
  *on-chip* access) or schedules the off-chip access (path 2) and the
  response returns over the NoC (path 3).

* **Shared SNUCA L2** (Figure 2b): an L1 miss travels to the line's home
  bank (path 1).  A home-bank hit returns data (path 5) -- an *on-chip*
  access.  A miss goes home-bank -> MC (path 2), through the memory
  system (path 3), back to the home bank (path 4) and on to the
  requester (path 5); the off-chip network latency is paths 2 + 4,
  matching the paper's cost decomposition.

Cores are in-order and blocking with one outstanding miss (the simulated
two-issue SPARC hides little memory latency); each thread is an
independent agent with its own clock, so multiple threads per core model
Figure 24's configurations, sharing their node's caches and injecting
into the same network.  A global heap interleaves threads by time, so
contention for links, banks, and the channel is resolved in global
request order.

The *optimal scheme* of Section 2 (Figure 4) is the ``optimal`` flag:
every L2 miss travels to the **nearest** controller and is served at
row-hit latency with no bank contention ("high locality and high
memory-level parallelism").
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.cache.cache import SetAssociativeCache
from repro.cache.directory import Directory
from repro.errors import SimulationError
from repro.faults.models import ControllerFaultModel, NetworkFaultModel
from repro.faults.plan import FaultPlan
from repro.memsys.address import AddressMap
from repro.memsys.controller import MemoryController
from repro.noc.network import Network
from repro.obs.tracer import obs_span
from repro.sim.metrics import RunMetrics

# Cycles the directory / home-bank controller spends deciding.
DIRECTORY_LATENCY = 2


class ThreadStream:
    """One thread's precomputed access stream (all plain Python lists --
    the hot loop avoids NumPy scalar overhead).

    ``np_l1``/``np_l2``/``np_gaps`` optionally carry the same data as
    int64 arrays.  :func:`build_streams` has the arrays in hand anyway,
    and the fast engine (:mod:`repro.sim.fastpath`) consumes them
    vectorized; the reference event loop never touches them.
    """

    __slots__ = ("node", "l1_lines", "l2_lines", "gaps", "mcs", "banks",
                 "rows", "homes", "writes", "phases", "length",
                 "np_l1", "np_l2", "np_gaps")

    def __init__(self, node: int, l1_lines: List[int], l2_lines: List[int],
                 gaps: List[int], mcs: List[int], banks: List[int],
                 rows: List[int], homes: Optional[List[int]],
                 writes: Optional[List[bool]] = None,
                 phases: Optional[List[str]] = None,
                 np_l1: Optional[np.ndarray] = None,
                 np_l2: Optional[np.ndarray] = None,
                 np_gaps: Optional[np.ndarray] = None):
        self.node = node
        self.l1_lines = l1_lines
        self.l2_lines = l2_lines
        self.gaps = gaps
        self.mcs = mcs
        self.banks = banks
        self.rows = rows
        self.homes = homes
        self.writes = writes if writes is not None \
            else [False] * len(l1_lines)
        self.phases = phases
        self.length = len(l1_lines)
        self.np_l1 = np_l1
        self.np_l2 = np_l2
        self.np_gaps = np_gaps


def build_streams(config: MachineConfig, thread_nodes: Sequence[int],
                  vtraces: Sequence[np.ndarray],
                  ptraces: Sequence[np.ndarray],
                  gaps: Sequence[np.ndarray],
                  writes: Optional[Sequence[np.ndarray]] = None,
                  segments: Optional[Sequence[tuple]] = None
                  ) -> List[ThreadStream]:
    """Precompute per-access fields for every thread, vectorized.

    ``thread_nodes[t]`` is the mesh node thread ``t`` is pinned to.
    ``writes`` (optional per-thread bool arrays) feed the coherence
    model when ``config.model_writes`` is set.  ``segments`` (optional
    per-thread ``(nest, start, end)`` tuples) label each access with its
    nest when ``config.track_phases`` is set.
    """
    amap = AddressMap(config)
    streams = []
    for tid, (vtrace, ptrace, gap) in enumerate(zip(vtraces, ptraces, gaps)):
        node = thread_nodes[tid]
        v = np.asarray(vtrace, dtype=np.int64)
        p = np.asarray(ptrace, dtype=np.int64)
        homes = None
        if config.shared_l2:
            homes = amap.home_bank_of(v, config.num_cores).tolist()
        wr = None
        if writes is not None and config.model_writes:
            wr = np.asarray(writes[tid], dtype=bool).tolist()
        phases = None
        if segments is not None and config.track_phases:
            phases = [""] * len(v)
            for name, start, end in segments[tid]:
                for idx in range(start, end):
                    phases[idx] = name
        np_l1 = v // config.l1_line
        np_l2 = v // config.l2_line
        np_gaps = np.asarray(gap, dtype=np.int64)
        streams.append(ThreadStream(
            node=node,
            l1_lines=np_l1.tolist(),
            l2_lines=np_l2.tolist(),
            gaps=np_gaps.tolist(),
            mcs=amap.mc_of(p).tolist(),
            banks=amap.bank_of(p).tolist(),
            rows=amap.row_of(p).tolist(),
            homes=homes,
            writes=wr,
            phases=phases,
            np_l1=np_l1,
            np_l2=np_l2,
            np_gaps=np_gaps))
    return streams


class SystemSimulator:
    """Runs a set of thread streams to completion and reports metrics."""

    def __init__(self, config: MachineConfig, mapping: L2ToMCMapping,
                 optimal: bool = False,
                 miss_overlap: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 network_audit=None, telemetry=None):
        self.config = config
        self.mapping = mapping
        self.optimal = optimal
        # Optional repro.obs registry (obs=full): the NoC and the MCs
        # publish into it inline; caches and aggregates flush at the
        # end of run().  None (obs off) keeps every hot path untouched.
        self.telemetry = telemetry
        if miss_overlap is None:
            miss_overlap = config.miss_overlap
        self.mesh = mapping.mesh
        # Kept for the fast engine's exact-integer-time eligibility test
        # (fractional degradation factors force the general timing mode).
        self._fault_plan = fault_plan
        net_faults: Optional[NetworkFaultModel] = None
        self._mc_faults: Optional[ControllerFaultModel] = None
        if fault_plan is not None and not fault_plan.empty:
            if fault_plan.link_faults or fault_plan.link_degradations:
                net_faults = NetworkFaultModel(self.mesh, fault_plan)
            if fault_plan.mc_faults or fault_plan.bank_faults:
                self._mc_faults = ControllerFaultModel(
                    fault_plan, len(mapping.mc_nodes),
                    config.banks_per_mc)
        self.network = Network(self.mesh, config, faults=net_faults,
                               audit=network_audit, telemetry=telemetry)
        self.mc_nodes = mapping.mc_nodes
        self.controllers = [MemoryController(config, node, optimal=optimal,
                                             faults=self._mc_faults,
                                             mc_index=j,
                                             telemetry=telemetry)
                            for j, node in enumerate(self.mc_nodes)]
        self._failover_order = self._build_failover_order()
        self.l1 = [SetAssociativeCache(config.l1_size, config.l1_line,
                                       config.l1_ways)
                   for _ in range(config.num_cores)]
        if config.shared_l2:
            self.l2 = [SetAssociativeCache(config.l2_size, config.l2_line,
                                           config.l2_ways)
                       for _ in range(config.num_cores)]
            self.directory = None
        else:
            self.l2 = [SetAssociativeCache(config.l2_size, config.l2_line,
                                           config.l2_ways)
                       for _ in range(config.num_cores)]
            self.directory = Directory()
        # fraction of a non-L1-hit latency actually charged to the core
        self._keep = 1.0 - miss_overlap
        # nearest MC per node, for the optimal scheme
        self._nearest_mc = [
            min(range(len(self.mc_nodes)),
                key=lambda j: (self.mesh.distance(node, self.mc_nodes[j]), j))
            for node in range(config.num_cores)]

    # ------------------------------------------------------------------
    def _build_failover_order(self) -> List[List[int]]:
        """Per controller, the alternates tried when it is offline.

        Clustering-derived: controllers sharing a cluster with the
        failed one come first (they serve the same cores, so the paper's
        locality structure survives), then the rest by mesh distance
        between controller nodes, ties by hardware index.
        """
        mapping = self.mapping
        num = len(self.mc_nodes)
        cluster_mates: List[set] = [set() for _ in range(num)]
        for cluster in mapping.clusters:
            for j in cluster.mc_indices:
                if j < num:
                    cluster_mates[j].update(
                        k for k in cluster.mc_indices if k != j)
        order = []
        for j in range(num):
            others = [k for k in range(num) if k != j]
            others.sort(key=lambda k: (
                k not in cluster_mates[j],
                self.mesh.distance(self.mc_nodes[j], self.mc_nodes[k]),
                k))
            order.append(others)
        return order

    def _route_mc(self, mc: int, t: float, m: RunMetrics) -> int:
        """Graceful degradation: divert a request whose controller is
        offline at ``t`` to the nearest live alternate (counted as a
        failover); with no live alternate the request stalls at its own
        controller until the window ends."""
        faults = self._mc_faults
        if faults is None or not faults.offline(mc, t):
            return mc
        for alt in self._failover_order[mc]:
            if not faults.offline(alt, t):
                m.mc_failovers += 1
                return alt
        if faults.next_online(mc, t) == math.inf:
            raise SimulationError(
                "every memory controller is offline with no recovery "
                "window; the machine cannot make progress")
        m.mc_offline_waits += 1
        return mc

    # ------------------------------------------------------------------
    def run(self, streams: Sequence[ThreadStream],
            transform_overhead: float = 0.0,
            name: str = "", engine: str = "fast") -> RunMetrics:
        """Simulate all threads to completion.

        ``engine`` selects the event loop: ``"fast"`` (default) uses the
        hit-filtered loop of :mod:`repro.sim.fastpath` when the run is
        eligible -- bit-identical metrics, only L2 misses enter the
        global heap -- and falls back to the reference loop otherwise;
        ``"reference"`` always runs the original per-access loop.
        """
        if engine not in ("fast", "reference"):
            raise ValueError(f"unknown engine {engine!r}; "
                             f"engines: fast, reference")
        m = RunMetrics(name=name)
        m.mc_node_requests = np.zeros(
            (len(self.controllers), self.config.num_cores), dtype=np.int64)

        events_span = obs_span("sim.events", cat="sim",
                               threads=len(streams))
        events_span.__enter__()
        use_fast = False
        if engine == "fast":
            from repro.sim import fastpath
            use_fast = fastpath.eligible(self, streams)
        if use_fast:
            finish_times = fastpath.run_events(self, streams, m)
        else:
            finish_times = self._run_reference(streams, m)
        events_span.add(accesses=m.total_accesses).__exit__()

        m.thread_finish = [f * (1.0 + transform_overhead)
                           for f in finish_times]
        m.exec_time = max(finish_times, default=0.0) \
            * (1.0 + transform_overhead)
        m.mc_requests = [c.stats.requests for c in self.controllers]
        m.mc_row_hits = [c.stats.row_hits for c in self.controllers]
        m.mc_queue_wait = [c.stats.queue_wait_total
                           for c in self.controllers]
        m.mc_busy_elapsed = [c.stats.busy_elapsed
                             for c in self.controllers]
        m.net_wait_cycles = self.network.stats.wait_cycles
        m.link_detours = self.network.stats.detoured
        m.detour_extra_hops = self.network.stats.detour_extra_hops
        m.bank_remaps = sum(c.stats.bank_remaps for c in self.controllers)
        if self.telemetry is not None:
            self._publish_telemetry(m)
        return m

    def _run_reference(self, streams: Sequence[ThreadStream],
                       m: RunMetrics) -> List[float]:
        """The original event loop: every access is a heap event."""
        stagger = self.config.thread_stagger
        heap = [(float(tid * stagger), tid)
                for tid, s in enumerate(streams) if s.length]
        heapq.heapify(heap)
        positions = [0] * len(streams)
        finish_times = [0.0] * len(streams)
        step = (self._step_shared if self.config.shared_l2
                else self._step_private)

        while heap:
            t0, tid = heapq.heappop(heap)
            stream = streams[tid]
            i = positions[tid]
            t = step(stream, i, t0, m)
            if stream.phases is not None:
                name = stream.phases[i]
                m.phase_cycles[name] = m.phase_cycles.get(name, 0.0) \
                    + (t - t0)
                m.phase_accesses[name] = \
                    m.phase_accesses.get(name, 0) + 1
            positions[tid] = i + 1
            finish_times[tid] = t
            if i + 1 < stream.length:
                heapq.heappush(heap, (t, tid))
        return finish_times

    def _publish_telemetry(self, m: RunMetrics) -> None:
        """End-of-run flush into the obs=full registry: per-link NoC
        occupancy, per-node cache totals, access-class counters, and
        the graceful-degradation event counts."""
        registry = self.telemetry
        self.network.publish_telemetry()
        for node, (l1, l2) in enumerate(zip(self.l1, self.l2)):
            registry.counter(f"cache.l1.{node}.hits").inc(l1.hits)
            registry.counter(f"cache.l1.{node}.misses").inc(l1.misses)
            registry.counter(f"cache.l2.{node}.hits").inc(l2.hits)
            registry.counter(f"cache.l2.{node}.misses").inc(l2.misses)
        registry.counter("sim.accesses").inc(m.total_accesses)
        registry.counter("sim.l1_hits").inc(m.l1_hits)
        registry.counter("sim.l2_hits").inc(m.l2_hits)
        registry.counter("sim.onchip_remote").inc(m.onchip_remote)
        registry.counter("sim.offchip").inc(m.offchip)
        registry.gauge("sim.exec_time").set(m.exec_time)
        for name, value in (("faults.mc_failovers", m.mc_failovers),
                            ("faults.mc_offline_waits",
                             m.mc_offline_waits),
                            ("faults.link_detours", m.link_detours),
                            ("faults.bank_remaps", m.bank_remaps)):
            if value:
                registry.counter(name).inc(value)

    # ------------------------------------------------------------------
    def _step_private(self, s: ThreadStream, i: int, t: float,
                      m: RunMetrics) -> float:
        cfg = self.config
        m.total_accesses += 1
        t += s.gaps[i]
        node = s.node
        is_write = cfg.model_writes and s.writes[i]
        line2 = s.l2_lines[i]

        if self.l1[node].access(s.l1_lines[i]):
            m.l1_hits += 1
            t += cfg.l1_latency
            if is_write:
                t = self._upgrade_if_shared(line2, node, t, m)
            return t

        t += cfg.l1_latency
        issue = t - cfg.l1_latency
        if self.l2[node].access(line2):
            m.l2_hits += 1
            self._fill_l1(node, s.l1_lines[i])
            finish = t + cfg.l2_latency
            if is_write:
                finish = self._upgrade_if_shared(line2, node, finish, m)
            return issue + self._keep * (finish - issue)
        t += cfg.l2_latency

        # L2 miss: consult the directory at the owning MC (path 1).
        mc = self._nearest_mc[node] if self.optimal else s.mcs[i]
        if self._mc_faults is not None:
            mc = self._route_mc(mc, t, m)
        mc_node = self.mc_nodes[mc]
        t1, h1 = self.network.send(node, mc_node, cfg.control_flits, t,
                                   vnet=0)
        t1 += DIRECTORY_LATENCY

        owner = self.directory.find_sharer(line2, node)
        if owner is not None:
            # On-chip: forward to the sharer, cache-to-cache transfer.
            t2, h2 = self.network.send(mc_node, owner, cfg.control_flits,
                                       t1, vnet=0)
            t2 += cfg.l2_latency
            t3, h3 = self.network.send(owner, node, cfg.data_flits, t2)
            m.onchip_remote += 1
            net = (t1 - DIRECTORY_LATENCY - t) + (t2 - cfg.l2_latency - t1) \
                + (t3 - t2)
            m.onchip_net_sum += net
            m.onchip_hops[h1 + h2 + h3] += 1
            finish = t3
            if is_write:
                finish = self._invalidate_sharers(line2, node, mc_node,
                                                  finish, m)
        else:
            # Off-chip: schedule at the MC (path 2), respond (path 3).
            finish_mc, wait, _ = self.controllers[mc].service(
                s.banks[i], s.rows[i], t1)
            t3, h3 = self.network.send(mc_node, node, cfg.data_flits,
                                       finish_mc)
            m.offchip += 1
            m.offchip_net_sum += (t1 - DIRECTORY_LATENCY - t) \
                + (t3 - finish_mc)
            m.offchip_mem_sum += finish_mc - t1
            m.offchip_queue_sum += wait
            m.offchip_hops[h1 + h3] += 1
            m.mc_node_requests[mc, node] += 1
            finish = t3

        self._fill_l2(node, line2)
        self._fill_l1(node, s.l1_lines[i])
        self.directory.add_sharer(line2, node)
        return issue + self._keep * (finish - issue)

    def _upgrade_if_shared(self, line2: int, node: int, t: float,
                           m: RunMetrics) -> float:
        """Write hit on a possibly-shared line: consult the directory
        and invalidate other sharers before the write proceeds."""
        if self.directory.find_sharer(line2, node) is None:
            return t
        cfg = self.config
        mc = self._nearest_mc[node] if self.optimal \
            else self._dir_mc_of_line(line2)
        mc_node = self.mc_nodes[mc]
        t1, _ = self.network.send(node, mc_node, cfg.control_flits, t,
                                  vnet=0)
        t1 += DIRECTORY_LATENCY
        t1 = self._invalidate_sharers(line2, node, mc_node, t1, m)
        t2, _ = self.network.send(mc_node, node, cfg.control_flits, t1,
                                  vnet=0)
        return t2

    def _dir_mc_of_line(self, line2: int) -> int:
        """Directory home for a line (cache-line interleave of line
        addresses over controllers)."""
        return line2 % len(self.controllers)

    def _invalidate_sharers(self, line2: int, requester: int,
                            mc_node: int, t: float,
                            m: RunMetrics) -> float:
        """Write coherence: the directory invalidates every other
        sharer (parallel control messages + acks); stale L1/L2 copies
        are dropped.  Returns the time the last ack arrives."""
        cfg = self.config
        latest = t
        ratio = cfg.l2_line // cfg.l1_line
        for sharer in self.directory.sharers_of(line2):
            if sharer == requester:
                continue
            t_inv, _ = self.network.send(mc_node, sharer,
                                         cfg.control_flits, t, vnet=0)
            t_ack, _ = self.network.send(sharer, mc_node,
                                         cfg.control_flits, t_inv,
                                         vnet=0)
            latest = max(latest, t_ack)
            self.l2[sharer].invalidate(line2)
            for sub in range(ratio):
                self.l1[sharer].invalidate(line2 * ratio + sub)
            self.directory.remove_sharer(line2, sharer)
            m.invalidations += 1
        return latest

    def _fill_l2(self, node: int, line2: int) -> None:
        evicted = self.l2[node].fill(line2)
        if evicted is not None and self.directory is not None:
            self.directory.remove_sharer(evicted, node)

    def _fill_l1(self, node: int, line1: int) -> None:
        self.l1[node].fill(line1)

    # ------------------------------------------------------------------
    def _step_shared(self, s: ThreadStream, i: int, t: float,
                     m: RunMetrics) -> float:
        cfg = self.config
        m.total_accesses += 1
        t += s.gaps[i]
        node = s.node

        if self.l1[node].access(s.l1_lines[i]):
            m.l1_hits += 1
            return t + cfg.l1_latency
        t += cfg.l1_latency

        issue = t - cfg.l1_latency
        home = s.homes[i]
        line2 = s.l2_lines[i]
        # Path 1: L1 -> home bank.
        t1, h1 = self.network.send(node, home, cfg.control_flits, t,
                                   vnet=0)
        t1 += cfg.l2_latency

        if self.l2[home].access(line2):
            # Path 5: home bank -> L1.  An on-chip access.
            t5, h5 = self.network.send(home, node, cfg.data_flits, t1)
            if home == node:
                m.l2_hits += 1
            else:
                m.onchip_remote += 1
                m.onchip_net_sum += (t1 - cfg.l2_latency - t) + (t5 - t1)
                m.onchip_hops[h1 + h5] += 1
            self._fill_l1(node, s.l1_lines[i])
            return issue + self._keep * (t5 - issue)

        # Path 2: home bank -> MC.
        mc = self._nearest_mc[home] if self.optimal else s.mcs[i]
        if self._mc_faults is not None:
            mc = self._route_mc(mc, t1, m)
        mc_node = self.mc_nodes[mc]
        t2, h2 = self.network.send(home, mc_node, cfg.control_flits, t1,
                                   vnet=0)
        t2 += DIRECTORY_LATENCY
        finish_mc, wait, _ = self.controllers[mc].service(
            s.banks[i], s.rows[i], t2)
        # Path 4: MC -> home bank.
        t4, h4 = self.network.send(mc_node, home, cfg.data_flits, finish_mc)
        self.l2[home].fill(line2)
        # Path 5: home bank -> L1.
        t5, h5 = self.network.send(home, node, cfg.data_flits, t4)
        self._fill_l1(node, s.l1_lines[i])

        m.offchip += 1
        # The paper's off-chip network cost is paths 2 and 4.
        m.offchip_net_sum += (t2 - DIRECTORY_LATENCY - t1) + (t4 - finish_mc)
        m.offchip_mem_sum += finish_mc - t2
        m.offchip_queue_sum += wait
        m.offchip_hops[h2 + h4] += 1
        m.mc_node_requests[mc, home] += 1
        return issue + self._keep * (t5 - issue)
