"""Compile/trace memoization across runs and sweep points.

A sweep grid re-derives identical front-half artifacts over and over:
every ``optimal`` pair and every (seed, fault-plan, page-policy) axis
shares its program transformation and generated traces, and baseline
runs share them across the whole mapping axis (original layouts never
depend on the mapping).  This module caches the two front-half stages
behind content-hash keys built with the same token machinery as
:meth:`repro.sim.run.RunSpec.key`:

* **compile** -- the layout transformation (or the original layouts).
  Keyed by the program token alone for baseline runs; optimized runs
  add the mapping token, the full machine configuration and the
  ``localize_offchip`` flag.
* **trace** -- address-space placement plus per-thread trace
  generation.  Keyed by the compile key and the config fields the
  placement/traces actually depend on (:data:`TRACE_CONFIG_FIELDS`);
  sweep points that differ only in, say, ``hop_latency`` or
  ``banks_per_mc`` share one trace set.

Per-run state (page tables, physical memory, the simulator itself) is
never cached, and OS translation is not either -- it depends on the
seed and policy.  Cached trace arrays are marked read-only so an
accidental downstream mutation raises instead of corrupting a future
run.  Entries live in a small process-global LRU
(:class:`ArtifactCache`); worker processes each hold their own.

Results are bit-identical with the cache on or off (the cached values
*are* the values the stages would recompute), which
``tests/test_memo.py`` asserts alongside the invalidation semantics.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import asdict
from typing import Dict, Optional, Tuple

from repro.obs.tracer import obs_span

#: Configuration fields that address-space placement and trace
#: generation read; anything else may differ between two runs sharing
#: one cached trace set.  (Alignment: page_size, num_mcs, the
#: interleave unit derived from interleaving/l2_line/page_size, plus
#: shared-L2 home-bank striding; thread count: mesh dims x
#: threads_per_core.)
TRACE_CONFIG_FIELDS = ("mesh_width", "mesh_height", "threads_per_core",
                      "shared_l2", "page_size", "num_mcs",
                      "interleaving", "l2_line")


class ArtifactCache:
    """A small LRU of pipeline artifacts with hit/miss counters.

    Thread-safe: the hardened harness drives timed runs through worker
    threads (and the parallel executor's serial fallback shares one
    process), so lookups, insertions, and the LRU reordering all happen
    under one lock.  The cached *values* are shared across threads too
    -- that is safe because every artifact is treated as read-only
    (trace arrays are literally write-protected).
    """

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


#: The process-global cache `run_simulation` uses.
cache = ArtifactCache()

_enabled = True
_configure_lock = threading.Lock()


def enabled() -> bool:
    return _enabled


def configure(enabled: Optional[bool] = None,
              capacity: Optional[int] = None) -> None:
    """Adjust the global memo: ``configure(enabled=False)`` bypasses it
    (benches measuring cold-start costs), ``capacity=N`` resizes the
    LRU.  The cache is cleared whenever either knob changes.

    Serialized under a lock so two threads reconfiguring concurrently
    cannot interleave the flag flip, the resize, and the clear into an
    inconsistent state (e.g. a stale oversized cache with the new
    capacity)."""
    global _enabled
    with _configure_lock:
        if enabled is not None:
            _enabled = enabled
        if capacity is not None:
            cache.capacity = capacity
        cache.clear()


def adopt(entries: Dict[str, object]) -> int:
    """Pre-load externally produced artifacts (the shared-memory plane
    attaching in a pool worker; see :mod:`repro.sim.shm`).

    Grows the LRU capacity to hold every adopted entry plus the normal
    working set, so adopted artifacts are not immediately evicted by
    the first few per-point misses.  No-op while the memo is disabled
    -- a worker asked to bypass the cache must also bypass the plane.
    Returns the number of entries adopted.
    """
    if not _enabled or not entries:
        return 0
    with _configure_lock:
        needed = len(entries) + cache.capacity
        if cache.capacity < needed:
            cache.capacity = needed
    for key, value in entries.items():
        cache.put(key, value)
    return len(entries)


def _digest(payload: Dict[str, object]) -> str:
    return hashlib.sha1(
        json.dumps(payload, sort_keys=True, default=str)
        .encode("utf-8")).hexdigest()


def compile_key(spec) -> str:
    """Content identity of the compile stage for ``spec``.

    Baseline layouts depend on the program alone; the transformation
    additionally reads the mapping and (conservatively) the whole
    machine configuration.
    """
    from repro.sim.run import _mapping_token, _program_token
    if spec.optimized:
        payload: Dict[str, object] = {
            "kind": "optimized",
            "program": _program_token(spec.program),
            "mapping": _mapping_token(spec.resolved_mapping()),
            "config": asdict(spec.config),
            "localize_offchip": spec.localize_offchip,
        }
    else:
        payload = {"kind": "original",
                   "program": _program_token(spec.program)}
    return _digest(payload)


def trace_key(spec) -> str:
    """Content identity of placement + trace generation for ``spec``."""
    config = spec.config
    return _digest({
        "compile": compile_key(spec),
        "config": {name: getattr(config, name)
                   for name in TRACE_CONFIG_FIELDS},
    })


def compiled(spec) -> Tuple[Optional[object], Dict[str, object], bool]:
    """The compile stage, memoized.

    Returns ``(transformation, layouts, any_transformed)``; the
    transformation is ``None`` for baseline runs.  A cached
    :class:`~repro.core.pipeline.TransformationResult` is shared across
    results -- treat it as read-only.
    """
    from repro.core.pipeline import LayoutTransformer, original_layouts
    if not spec.optimized:
        return None, original_layouts(spec.program), False
    key = None
    if _enabled:
        key = "compile:" + compile_key(spec)
        hit = cache.get(key)
        if hit is not None:
            with obs_span("compile.transform", cat="compile",
                          memo="hit"):
                return hit
    with obs_span("compile.transform", cat="compile"):
        transformer = LayoutTransformer(
            spec.config, spec.resolved_mapping(),
            localize_offchip=spec.localize_offchip)
        transformation = transformer.run(spec.program)
    value = (transformation, transformation.layouts,
             transformation.any_transformed)
    if key is not None:
        cache.put(key, value)
    return value


def placed_traces(spec, layouts):
    """Address-space placement + trace generation, memoized.

    Returns ``(space, bases, traces)``.  Cached trace arrays are marked
    read-only; every downstream consumer derives fresh arrays from
    them.
    """
    from repro.program.address_space import AddressSpace
    from repro.program.trace import generate_traces
    config = spec.config
    num_threads = config.num_cores * config.threads_per_core
    key = None
    if _enabled:
        key = "trace:" + trace_key(spec)
        hit = cache.get(key)
        if hit is not None:
            space, bases, traces = hit
            with obs_span("os.place", cat="os", arrays=len(layouts),
                          memo="hit"):
                pass
            with obs_span("trace.generate", cat="trace",
                          threads=num_threads, memo="hit") as span:
                span.add(accesses=sum(len(t.vaddrs) for t in traces))
            return space, bases, traces
    with obs_span("os.place", cat="os", arrays=len(layouts)):
        space = AddressSpace(config)
        bases = space.place_all(layouts)
    with obs_span("trace.generate", cat="trace",
                  threads=num_threads) as span:
        traces = generate_traces(spec.program, layouts, bases,
                                 num_threads)
        span.add(accesses=sum(len(t.vaddrs) for t in traces))
    if key is not None:
        for trace in traces:
            trace.vaddrs.setflags(write=False)
            trace.gaps.setflags(write=False)
            trace.writes.setflags(write=False)
        cache.put(key, (space, bases, traces))
    return space, bases, traces
