"""Multiprogrammed workloads and weighted speedup (Section 6.4).

Several multithreaded applications co-run on the same manycore: each
owns a rectangular sub-region of the mesh (its threads pinned there) but
all share the NoC and the memory controllers -- exactly the interference
the paper quantifies in Figure 25.  Each application is compiled with a
*partial* L2-to-MC mapping over its region (the compiler "does not do
anything specific for multiprogrammed workloads"; it simply localizes
each application to the controllers nearest its region).

Performance is reported as **weighted speedup** [21]:
``WS = sum_i T_alone_i / T_shared_i`` -- each application's slowdown
relative to running alone on its region, summed.  The paper reports the
*improvement* of the optimized layouts' WS over the original layouts'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.clustering import L2ToMCMapping, partial_grid_mapping
from repro.arch.config import MachineConfig
from repro.core.pipeline import LayoutTransformer, original_layouts
from repro.obs.data import OBS_LEVELS, ObsData
from repro.obs.telemetry import TelemetryRegistry
from repro.obs.tracer import Tracer
from repro.program.address_space import AddressSpace
from repro.program.ir import Program
from repro.program.trace import generate_traces
from repro.sim.metrics import RunMetrics
from repro.sim.system import SystemSimulator, build_streams


@dataclass
class AppPlacement:
    """One co-running application with its region and compiled traces."""

    program: Program
    mapping: L2ToMCMapping
    thread_nodes: List[int]
    vtraces: List[np.ndarray]
    gaps: List[np.ndarray]


def split_regions(config: MachineConfig, count: int
                  ) -> List[Tuple[int, int, int, int]]:
    """Carve the mesh into ``count`` equal rectangles (x0, y0, w, h)."""
    w, h = config.mesh_width, config.mesh_height
    if count == 1:
        return [(0, 0, w, h)]
    if count == 2 and w % 2 == 0:
        return [(0, 0, w // 2, h), (w // 2, 0, w // 2, h)]
    if count == 4 and w % 2 == 0 and h % 2 == 0:
        return [(0, 0, w // 2, h // 2), (w // 2, 0, w // 2, h // 2),
                (0, h // 2, w // 2, h // 2),
                (w // 2, h // 2, w // 2, h // 2)]
    raise ValueError(f"cannot split {w}x{h} into {count} regions")


def _compile_app(program: Program, config: MachineConfig,
                 mapping: L2ToMCMapping, space: AddressSpace,
                 optimized: bool, app_index: int) -> AppPlacement:
    num_threads = mapping.num_threads * config.threads_per_core
    if optimized:
        transformer = LayoutTransformer(config, mapping)
        layouts = transformer.run(program).layouts
    else:
        layouts = original_layouts(program)
    # Namespace array names per app so the shared address space does not
    # collide when two apps use the same model.
    prefixed = {f"app{app_index}:{name}": layout
                for name, layout in layouts.items()}
    bases_prefixed = space.place_all(prefixed)
    bases = {name.split(":", 1)[1]: base
             for name, base in bases_prefixed.items()}
    traces = generate_traces(program, layouts, bases, num_threads)
    cores = mapping.num_threads
    thread_nodes = [mapping.core_order[t % cores]
                    for t in range(num_threads)]
    return AppPlacement(program=program, mapping=mapping,
                        thread_nodes=thread_nodes,
                        vtraces=[t.vaddrs for t in traces],
                        gaps=[t.gaps for t in traces])


def _simulate(config: MachineConfig, full_mapping: L2ToMCMapping,
              apps: Sequence[AppPlacement],
              overheads: Sequence[float],
              telemetry: Optional[TelemetryRegistry] = None
              ) -> List[float]:
    """Co-run all apps; returns each app's completion time."""
    thread_nodes: List[int] = []
    vtraces: List[np.ndarray] = []
    gaps: List[np.ndarray] = []
    spans: List[Tuple[int, int]] = []
    for app in apps:
        start = len(thread_nodes)
        thread_nodes.extend(app.thread_nodes)
        vtraces.extend(app.vtraces)
        gaps.extend(app.gaps)
        spans.append((start, len(thread_nodes)))
    # Multiprogrammed runs use cache-line interleaving (identity V2P).
    streams = build_streams(config, thread_nodes, vtraces, vtraces, gaps)
    simulator = SystemSimulator(config, full_mapping,
                                telemetry=telemetry)
    metrics = simulator.run(streams)
    times = []
    for (lo, hi), overhead in zip(spans, overheads):
        finish = max(metrics.thread_finish[lo:hi], default=0.0)
        times.append(finish * (1.0 + overhead))
    return times


def _observed_simulate(label: str, obs: str, config: MachineConfig,
                       full_mapping: L2ToMCMapping,
                       apps: Sequence[AppPlacement],
                       overheads: Sequence[float],
                       collected: Dict[str, ObsData]) -> List[float]:
    """One co-run under its own tracer/registry: runs observed back to
    back each get an isolated bundle (spans and telemetry can never
    bleed between the alone/shared or original/optimized runs)."""
    if obs == "off":
        return _simulate(config, full_mapping, apps, overheads)
    tracer = Tracer(label=label)
    telemetry = TelemetryRegistry() if obs == "full" else None
    with tracer.activate():
        with tracer.span("multiprogram.simulate", cat="sim",
                         apps=len(apps)):
            times = _simulate(config, full_mapping, apps, overheads,
                              telemetry=telemetry)
    collected[label] = ObsData(
        level=obs, label=label, spans=tracer.spans(),
        telemetry=telemetry,
        meta={"mesh": (config.mesh_width, config.mesh_height),
              "apps": [app.program.name for app in apps],
              "exec_time": max(times, default=0.0)})
    return times


@dataclass
class WeightedSpeedupResult:
    """Weighted speedups of the original and optimized co-runs."""

    workload: Tuple[str, ...]
    alone_original: List[float]
    alone_optimized: List[float]
    shared_original: List[float]
    shared_optimized: List[float]
    # One isolated ObsData per constituent co-run (keys like
    # "shared/original", "alone/0.swim/optimized"), populated when
    # run_multiprogram() was called with obs != "off".
    obs: Optional[Dict[str, ObsData]] = None

    @property
    def ws_original(self) -> float:
        return sum(a / s for a, s in zip(self.alone_original,
                                         self.shared_original))

    @property
    def ws_optimized(self) -> float:
        return sum(a / s for a, s in zip(self.alone_optimized,
                                         self.shared_optimized))

    @property
    def improvement(self) -> float:
        """Relative weighted-speedup gain of the optimized layouts."""
        if self.ws_original == 0:
            return 0.0
        return self.ws_optimized / self.ws_original - 1.0


def run_multiprogram(programs: Sequence[Program], config: MachineConfig,
                     clusters_per_app: int = 2,
                     obs: str = "off") -> WeightedSpeedupResult:
    """Co-run ``programs`` (2 or 4) and compare layouts via weighted
    speedup.  ``T_alone`` runs each app by itself on its own region (the
    standard weighted-speedup baseline).

    ``obs`` observes every constituent co-run (each under its own
    tracer and registry -- see ``result.obs``)."""
    if obs not in OBS_LEVELS:
        raise ValueError(f"unknown observability level {obs!r}; "
                         f"levels: {', '.join(OBS_LEVELS)}")
    regions = split_regions(config, len(programs))
    mesh = config.mesh()
    mc_nodes = config.mc_nodes(mesh)
    full_mapping = config.default_mapping(mesh)

    def placements(optimized: bool) -> Tuple[List[AppPlacement],
                                             List[float]]:
        space = AddressSpace(config)
        apps = []
        overheads = []
        for index, (program, (x0, y0, w, h)) in enumerate(
                zip(programs, regions)):
            mapping = partial_grid_mapping(
                mesh, mc_nodes, x0, y0, w, h, clusters_per_app,
                name=f"{program.name}@({x0},{y0})")
            apps.append(_compile_app(program, config, mapping, space,
                                     optimized, index))
            overheads.append(config.transform_overhead if optimized
                             else 0.0)
        return apps, overheads

    base_apps, base_over = placements(False)
    opt_apps, opt_over = placements(True)

    collected: Dict[str, ObsData] = {}
    alone_original = [
        _observed_simulate(f"alone/{i}.{app.program.name}/original",
                           obs, config, full_mapping, [app], [over],
                           collected)[0]
        for i, (app, over) in enumerate(zip(base_apps, base_over))]
    alone_optimized = [
        _observed_simulate(f"alone/{i}.{app.program.name}/optimized",
                           obs, config, full_mapping, [app], [over],
                           collected)[0]
        for i, (app, over) in enumerate(zip(opt_apps, opt_over))]
    shared_original = _observed_simulate(
        "shared/original", obs, config, full_mapping, base_apps,
        base_over, collected)
    shared_optimized = _observed_simulate(
        "shared/optimized", obs, config, full_mapping, opt_apps,
        opt_over, collected)

    return WeightedSpeedupResult(
        workload=tuple(p.name for p in programs),
        alone_original=alone_original,
        alone_optimized=alone_optimized,
        shared_original=shared_original,
        shared_optimized=shared_optimized,
        obs=collected or None)
