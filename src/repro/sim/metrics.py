"""Run metrics: the quantities every figure of the evaluation reports.

The paper's four headline metrics per run (Figures 4, 14, 16, 22):

1. network latency of **on-chip** accesses (L2-miss requests served by
   another cache, or remote-home-bank hits under shared L2),
2. network latency of **off-chip** accesses (request + response paths
   between the issuing node and the memory controller),
3. **memory latency** of off-chip accesses (queue wait + bank service),
4. **execution time** (the slowest thread, plus the transformation
   overhead for optimized runs).

Plus the supporting data: the off-chip fraction (Figure 3), per-(MC,
node) off-chip request counts (Figure 13), hop histograms for the CDF of
links traversed (Figure 15), and bank-queue occupancy (Figure 18).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class RunMetrics:
    """Everything measured in one simulation run."""

    name: str = ""
    exec_time: float = 0.0

    total_accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0          # local L2 (private) or home-bank hit (shared)
    onchip_remote: int = 0    # served by another on-chip cache
    offchip: int = 0

    onchip_net_sum: float = 0.0
    offchip_net_sum: float = 0.0
    offchip_mem_sum: float = 0.0
    offchip_queue_sum: float = 0.0

    onchip_hops: Counter = field(default_factory=Counter)
    offchip_hops: Counter = field(default_factory=Counter)

    # mc_node_requests[mc, node]: off-chip requests issued from ``node``
    # (the L2 that issued them) to controller ``mc`` -- Figure 13's map.
    mc_node_requests: Optional[np.ndarray] = None

    mc_requests: List[int] = field(default_factory=list)
    mc_row_hits: List[int] = field(default_factory=list)
    mc_queue_wait: List[float] = field(default_factory=list)
    # per-MC active window (first request arrival to last finish); the
    # denominator for the undiluted occupancy of mostly-idle controllers
    mc_busy_elapsed: List[float] = field(default_factory=list)

    net_wait_cycles: float = 0.0
    page_fallbacks: int = 0
    invalidations: int = 0
    # fault/degradation accounting (nonzero only under a FaultPlan)
    mc_failovers: int = 0       # requests diverted to a live alternate MC
    mc_offline_waits: int = 0   # requests that stalled for an offline MC
    link_detours: int = 0       # messages rerouted around dead links
    detour_extra_hops: int = 0  # extra links traversed by those detours
    bank_remaps: int = 0        # requests redirected off dead banks
    # invariant-sanitizer accounting (nonzero only when RunSpec.validate
    # is not "off"): how many checkers ran and how many violations they
    # recorded before the run either passed or raised ValidationError
    validation_checks: int = 0
    validation_violations: int = 0
    # per-nest accounting, populated when config.track_phases is set
    phase_cycles: Dict[str, float] = field(default_factory=dict)
    phase_accesses: Dict[str, int] = field(default_factory=dict)
    thread_finish: List[float] = field(default_factory=list)

    # -- derived ------------------------------------------------------------
    @property
    def fault_events(self) -> int:
        """Total graceful-degradation events: every time the run kept
        going by taking a detour, failover, stall or bank remap."""
        return (self.mc_failovers + self.mc_offline_waits
                + self.link_detours + self.bank_remaps
                + self.page_fallbacks)

    @property
    def offchip_fraction(self) -> float:
        """Share of total data accesses that go off-chip (Figure 3)."""
        return self.offchip / self.total_accesses \
            if self.total_accesses else 0.0

    @property
    def avg_onchip_net_latency(self) -> float:
        served = self.onchip_remote
        return self.onchip_net_sum / served if served else 0.0

    @property
    def avg_offchip_net_latency(self) -> float:
        return self.offchip_net_sum / self.offchip if self.offchip else 0.0

    @property
    def avg_offchip_mem_latency(self) -> float:
        return self.offchip_mem_sum / self.offchip if self.offchip else 0.0

    @property
    def avg_offchip_queue_wait(self) -> float:
        return self.offchip_queue_sum / self.offchip if self.offchip else 0.0

    @property
    def row_hit_rate(self) -> float:
        total = sum(self.mc_requests)
        return sum(self.mc_row_hits) / total if total else 0.0

    def bank_queue_occupancy(self) -> float:
        """Mean waiting requests across controllers (Figure 18's metric),
        by Little's law over the run's span.

        Dilutes controllers that sat idle for most of the run; see
        :meth:`bank_queue_occupancy_busy` for the undiluted view.
        """
        if self.exec_time <= 0:
            return 0.0
        return sum(self.mc_queue_wait) / self.exec_time

    def bank_queue_occupancy_busy(self) -> float:
        """Mean waiting requests over the controllers' own busy windows
        (first arrival to last finish, per MC) -- the occupancy a hot
        controller actually experienced, undiluted by run-wide idle
        time.  Falls back to :meth:`bank_queue_occupancy` when busy
        windows were not recorded (older serialized results)."""
        busy = sum(self.mc_busy_elapsed)
        if busy <= 0:
            return self.bank_queue_occupancy()
        return sum(self.mc_queue_wait) / busy

    def hop_cdf(self, kind: str = "offchip") -> Dict[int, float]:
        """CDF of links traversed per request (Figure 15).

        Returns ``{hops: fraction of requests using <= hops links}``.
        """
        counts = self.offchip_hops if kind == "offchip" else self.onchip_hops
        total = sum(counts.values())
        if total == 0:
            return {}
        cdf = {}
        running = 0
        for hops in sorted(counts):
            running += counts[hops]
            cdf[hops] = running / total
        return cdf


@dataclass(frozen=True)
class Comparison:
    """Baseline vs. optimized: the percentage reductions of Figure 14."""

    base: RunMetrics
    opt: RunMetrics

    @staticmethod
    def _reduction(before: float, after: float) -> float:
        if before <= 0:
            return 0.0
        return (before - after) / before

    @property
    def onchip_net_reduction(self) -> float:
        return self._reduction(self.base.avg_onchip_net_latency,
                               self.opt.avg_onchip_net_latency)

    @property
    def offchip_net_reduction(self) -> float:
        return self._reduction(self.base.avg_offchip_net_latency,
                               self.opt.avg_offchip_net_latency)

    @property
    def offchip_mem_reduction(self) -> float:
        return self._reduction(self.base.avg_offchip_mem_latency,
                               self.opt.avg_offchip_mem_latency)

    @property
    def exec_time_reduction(self) -> float:
        return self._reduction(self.base.exec_time, self.opt.exec_time)

    def as_row(self) -> Dict[str, float]:
        """The four bars of Figures 4/14/16/22, as fractions."""
        return {
            "onchip_net": self.onchip_net_reduction,
            "offchip_net": self.offchip_net_reduction,
            "offchip_mem": self.offchip_mem_reduction,
            "exec_time": self.exec_time_reduction,
        }

    def row(self, precision: int = 4) -> Dict[str, float]:
        """The four reductions rounded for result rows/CSV export --
        the single rounding rule every sweep serializer shares."""
        return {k: round(v, precision) for k, v in self.as_row().items()}
