"""Full-system simulation: the experiment runner and metrics."""

from repro.sim.metrics import Comparison, RunMetrics
from repro.sim.multiprogram import (WeightedSpeedupResult, run_multiprogram,
                                    split_regions)
from repro.sim.run import (RunResult, RunSpec, run_optimal_pair, run_pair,
                           run_simulation)
from repro.sim.sweep import Sweep, SweepPoint, best_point, to_csv
from repro.sim.system import SystemSimulator, ThreadStream, build_streams

__all__ = [
    "Comparison", "RunMetrics", "RunResult", "RunSpec", "Sweep",
    "SweepPoint", "SystemSimulator", "best_point", "to_csv",
    "ThreadStream", "WeightedSpeedupResult", "build_streams",
    "run_multiprogram", "run_optimal_pair", "run_pair", "run_simulation",
    "split_regions",
]
