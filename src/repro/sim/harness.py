"""Hardened experiment harness: timeouts, retries, checkpoints, partial
results.

A long sweep must survive single-run failures: a pathological
configuration that never converges (timeout), a transiently overloaded
machine (retry with exponential backoff), or the process being killed
halfway (JSON checkpoint + resume).  This module wraps
:func:`repro.sim.run.run_simulation` and the sweep machinery with
exactly those guards and aggregates whatever completed, so one bad
grid point costs one row, not the night's sweep.

* :func:`run_hardened` -- one spec under a per-run timeout and a
  bounded retry policy (only errors flagged ``transient`` in the
  :mod:`repro.errors` taxonomy are retried).
* :class:`HardenedSweep` -- a cartesian sweep whose completed points
  stream into a JSON checkpoint after every run; re-running with the
  same checkpoint path skips them, so a killed sweep resumes where it
  died and reproduces the uninterrupted sweep's rows bit-for-bit.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.errors import ReproError, SimulationTimeout
from repro.faults.plan import FaultPlan
from repro.program.ir import Program
from repro.sim.metrics import Comparison
from repro.sim.run import RunResult, RunSpec, run_simulation
from repro.sim.sweep import Sweep, resolve_mapping


@dataclass(frozen=True)
class HarnessConfig:
    """Retry/timeout policy for one hardened run.

    ``timeout`` is wall-clock seconds per attempt (``None`` disables
    it).  Transient failures -- anything raising a
    :class:`~repro.errors.ReproError` with ``transient=True``, which
    includes timeouts -- are retried up to ``max_retries`` times with
    exponential backoff (``backoff_base * backoff_factor**attempt``
    seconds).  Deterministic failures are never retried: the same
    inputs would fail the same way.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * (self.backoff_factor ** attempt)


@dataclass
class RunOutcome:
    """What happened to one hardened run: a result or a diagnostic."""

    label: str
    result: Optional[RunResult] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    attempts: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


def _attempt(spec: RunSpec, timeout: Optional[float]) -> RunResult:
    if timeout is None:
        return run_simulation(spec)
    # The worker thread cannot be killed; on timeout it is abandoned
    # (daemonic executor threads die with the process).  That trades a
    # little memory for never blocking the sweep on one stuck run.
    executor = ThreadPoolExecutor(max_workers=1)
    try:
        future = executor.submit(run_simulation, spec)
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            future.cancel()
            raise SimulationTimeout(
                f"run {spec.label()!r} exceeded {timeout:g}s")
    finally:
        executor.shutdown(wait=False)


def run_hardened(spec: RunSpec,
                 harness: Optional[HarnessConfig] = None) -> RunOutcome:
    """Execute one spec under the harness's timeout/retry policy.

    Never raises for run failures: the outcome carries either the
    result or the final error (kind + message), plus attempt count.
    """
    harness = harness or HarnessConfig()
    outcome = RunOutcome(label=spec.label())
    started = time.monotonic()
    attempt = 0
    while True:
        outcome.attempts = attempt + 1
        try:
            outcome.result = _attempt(spec, harness.timeout)
            break
        except ReproError as err:
            outcome.error = str(err)
            outcome.error_kind = err.kind
            if not (err.transient and attempt < harness.max_retries):
                break
            harness.sleep(harness.backoff(attempt))
        except Exception as exc:  # deterministic failure: no retry
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.error_kind = "unexpected"
            break
        attempt += 1
    outcome.elapsed = time.monotonic() - started
    if outcome.ok:
        outcome.error = None
        outcome.error_kind = None
    return outcome


# ---------------------------------------------------------------------------
# Checkpointed sweeps


def _settings_key(settings: Dict[str, object]) -> str:
    """Canonical, JSON-stable identity of one grid point."""
    return json.dumps(sorted((k, v) for k, v in settings.items()),
                      default=str)


def _atomic_write(path: Path, payload: Dict[str, object]) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name, suffix=".tmp")
    try:
        # No sort_keys: row dicts must round-trip in insertion order so
        # a resumed sweep's CSV has the same columns as a fresh one
        # (the points list is already sorted deterministically).
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@dataclass
class SweepReport:
    """Aggregated outcome of a hardened sweep: every completed row,
    every failure, and how much came from the checkpoint."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    failures: List[Dict[str, object]] = field(default_factory=list)
    resumed: int = 0

    @property
    def completed(self) -> int:
        return len(self.rows)

    def to_csv(self) -> str:
        if not self.rows:
            return ""
        import csv
        import io
        fieldnames = list(self.rows[0].keys())
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()


class HardenedSweep:
    """A cartesian sweep that checkpoints, retries, and never aborts.

    The axes are those of :class:`repro.sim.sweep.Sweep` (plus
    ``mapping``); every grid point runs a baseline/optimized pair under
    :func:`run_hardened`.  After each completed point the row is
    appended to the JSON checkpoint (atomic rename, so a kill can lose
    at most the in-flight point); constructing a sweep with an existing
    checkpoint resumes it.  A failed point is recorded under
    ``failures`` and the sweep moves on -- partial results beat no
    results.
    """

    def __init__(self, program: Program,
                 base_config: Optional[MachineConfig] = None,
                 harness: Optional[HarnessConfig] = None,
                 checkpoint: Optional[str] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 seed: int = 0):
        self.program = program
        self.base_config = base_config or \
            MachineConfig.scaled_default().with_(interleaving="cache_line")
        self.harness = harness or HarnessConfig()
        self.checkpoint = Path(checkpoint) if checkpoint else None
        self.fault_plan = fault_plan
        self.seed = seed
        self._done: Dict[str, Dict[str, object]] = {}
        if self.checkpoint is not None and self.checkpoint.exists():
            payload = json.loads(self.checkpoint.read_text())
            if payload.get("program") not in ("", self.program.name):
                raise ValueError(
                    f"checkpoint {self.checkpoint} belongs to program "
                    f"{payload.get('program')!r}, not "
                    f"{self.program.name!r}")
            for entry in payload.get("points", []):
                self._done[entry["key"]] = entry["row"]

    def _save(self) -> None:
        if self.checkpoint is None:
            return
        payload = {
            "program": self.program.name,
            "seed": self.seed,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan else None),
            "points": [{"key": key, "row": row}
                       for key, row in sorted(self._done.items())],
        }
        _atomic_write(self.checkpoint, payload)

    def _run_point(self, settings: Dict[str, object]
                   ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        config_kw = {k: v for k, v in settings.items()
                     if k in Sweep.CONFIG_AXES}
        config = self.base_config.with_(**config_kw)
        mapping = resolve_mapping(config,
                                  str(settings.get("mapping", "M1")))
        outcomes = []
        for optimized in (False, True):
            outcome = run_hardened(
                RunSpec(program=self.program, config=config,
                        mapping=mapping, optimized=optimized,
                        fault_plan=self.fault_plan, seed=self.seed),
                self.harness)
            if not outcome.ok:
                return None, (f"{outcome.label}: [{outcome.error_kind}] "
                              f"{outcome.error} "
                              f"(after {outcome.attempts} attempts)")
            outcomes.append(outcome.result.metrics)
        comparison = Comparison(outcomes[0], outcomes[1])
        row: Dict[str, object] = dict(sorted(settings.items()))
        row.update({k: round(v, 4)
                    for k, v in comparison.as_row().items()})
        return row, None

    def run(self, max_points: Optional[int] = None,
            **axes: Iterable) -> SweepReport:
        """Run the cartesian product of the axes, resuming from the
        checkpoint.  ``max_points`` bounds the number of *newly
        simulated* points (smoke runs; also how the resume tests model
        a killed sweep) -- remaining points are simply left for the
        next invocation."""
        for name in axes:
            if name not in Sweep.CONFIG_AXES and name != "mapping":
                raise ValueError(
                    f"unknown sweep axis {name!r}; known axes: "
                    f"{', '.join(Sweep.CONFIG_AXES)}, mapping")
        names = sorted(axes)
        report = SweepReport()
        fresh = 0
        for combo in itertools.product(*(list(axes[n]) for n in names)):
            settings = dict(zip(names, combo))
            key = _settings_key(settings)
            if key in self._done:
                report.rows.append(dict(self._done[key]))
                report.resumed += 1
                continue
            if max_points is not None and fresh >= max_points:
                continue
            row, error = self._run_point(settings)
            fresh += 1
            if error is not None:
                report.failures.append(
                    {**settings, "error": error})
                continue
            self._done[key] = row
            report.rows.append(dict(row))
            self._save()
        return report
