"""Hardened experiment harness: timeouts, retries, checkpoints, partial
results.

A long sweep must survive single-run failures: a pathological
configuration that never converges (timeout), a transiently overloaded
machine (retry with exponential backoff), or the process being killed
halfway (JSON checkpoint + resume).  This module wraps
:func:`repro.sim.run.run_simulation` and the sweep machinery with
exactly those guards and aggregates whatever completed, so one bad
grid point costs one row, not the night's sweep.

* :func:`run_hardened` -- one spec under a per-run timeout and a
  bounded retry policy (only errors flagged ``transient`` in the
  :mod:`repro.errors` taxonomy are retried).
* :class:`HardenedSweep` -- a cartesian sweep whose completed points
  stream into a JSON checkpoint after every run; re-running with the
  same checkpoint path skips them, so a killed sweep resumes where it
  died and reproduces the uninterrupted sweep's rows bit-for-bit.
"""

from __future__ import annotations

import json
import random
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.errors import ReproError, SimulationTimeout
from repro.faults.plan import FaultPlan
from repro.obs.data import ObsData
from repro.obs.tracer import obs_instant, obs_span
from repro.program.ir import Program
from repro.sim.executor import (PointTask, execute_points, grid_settings,
                                point_key, point_specs, validate_axes)
from repro.sim.run import RunResult, RunSpec, run_simulation
from repro.sim.serialize import comparison_row, rows_to_csv
from repro.store import ROW_KIND, atomic_write_json
from repro.store import base as store_backends

#: Checkpoint schema version.  Version 2 keys entries by the canonical
#: :meth:`RunSpec.key`-derived point key (shared with sweep
#: memoization); version-1 checkpoints used an ad-hoc settings JSON and
#: are not resumed (their points simply re-run).
CHECKPOINT_VERSION = 2

#: Schema version for sweep rows persisted in the result store (kind
#: ``"row"``); drifted payloads read as misses, so the point re-runs.
ROW_FORMAT = 1


@dataclass(frozen=True)
class HarnessConfig:
    """Retry/timeout policy for one hardened run.

    ``timeout`` is wall-clock seconds per attempt (``None`` disables
    it).  Transient failures -- anything raising a
    :class:`~repro.errors.ReproError` with ``transient=True``, which
    includes timeouts -- are retried up to ``max_retries`` times with
    exponential backoff (``backoff_base * backoff_factor**attempt``
    seconds).  Deterministic failures are never retried: the same
    inputs would fail the same way.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: Fractional jitter on every backoff: the wait is scaled by a
    #: uniform draw from ``[1, 1 + backoff_jitter]``.  Parallel workers
    #: that fail together (one overloaded machine, one fault window)
    #: would otherwise retry in lockstep and re-overload the machine in
    #: synchronized waves.  Kept below the backoff factor's growth so
    #: successive waits still lengthen strictly.
    backoff_jitter: float = 0.25
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, attempt: int) -> float:
        span = self.backoff_base * (self.backoff_factor ** attempt)
        if self.backoff_jitter <= 0:
            return span
        return span * (1.0 + self.backoff_jitter * random.random())


@dataclass
class RunOutcome:
    """What happened to one hardened run: a result or a diagnostic."""

    label: str
    result: Optional[RunResult] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    attempts: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


class AbandonedThreadWarning(UserWarning):
    """Too many timed-out runs have left their worker threads alive;
    the process is leaking capacity."""


#: Live abandoned threads past this count trip one
#: :class:`AbandonedThreadWarning` (re-armed once the count drops back
#: below by finished stragglers).
ABANDONED_THREAD_WARN_THRESHOLD = 8

_abandoned_lock = threading.Lock()
_abandoned_threads: List[threading.Thread] = []
_abandoned_total = 0
_abandoned_warned = False


def _note_abandoned(executor: ThreadPoolExecutor) -> None:
    """Account for the worker thread a timed-out run left behind.

    The thread cannot be killed, but it can be *counted*: a gauge of
    still-alive strays and a monotonic total, so a sweep quietly
    drowning in stuck runs shows up in ``/metrics`` and (past the
    threshold) as a warning instead of as unexplained memory growth.
    """
    global _abandoned_total, _abandoned_warned
    strays = [t for t in getattr(executor, "_threads", ()) or ()
              if t.is_alive()]
    with _abandoned_lock:
        _abandoned_total += 1
        _abandoned_threads.extend(strays)
        _abandoned_threads[:] = [t for t in _abandoned_threads
                                 if t.is_alive()]
        live = len(_abandoned_threads)
        should_warn = (live >= ABANDONED_THREAD_WARN_THRESHOLD
                       and not _abandoned_warned)
        if should_warn:
            _abandoned_warned = True
        elif live < ABANDONED_THREAD_WARN_THRESHOLD:
            _abandoned_warned = False
    obs_instant("harness.thread_abandoned", cat="harness",
                live=live, total=_abandoned_total)
    if should_warn:
        warnings.warn(
            f"{live} timed-out simulation threads are still running "
            f"(threshold {ABANDONED_THREAD_WARN_THRESHOLD}); each holds "
            f"its run's memory until it finishes -- consider a longer "
            f"timeout or a smaller workload scale",
            AbandonedThreadWarning, stacklevel=3)


def abandoned_threads() -> Dict[str, int]:
    """``{"live": ..., "total": ...}`` abandoned-thread accounting for
    this process (the observability export reads this)."""
    with _abandoned_lock:
        _abandoned_threads[:] = [t for t in _abandoned_threads
                                 if t.is_alive()]
        return {"live": len(_abandoned_threads),
                "total": _abandoned_total}


def reset_abandoned_threads() -> None:
    """Forget accounting (tests)."""
    global _abandoned_total, _abandoned_warned
    with _abandoned_lock:
        _abandoned_threads.clear()
        _abandoned_total = 0
        _abandoned_warned = False


def _attempt(spec: RunSpec, timeout: Optional[float]) -> RunResult:
    if timeout is None:
        return run_simulation(spec)
    # The worker thread cannot be killed; on timeout it is abandoned
    # (daemonic executor threads die with the process).  That trades a
    # little memory for never blocking the sweep on one stuck run.
    executor = ThreadPoolExecutor(max_workers=1)
    try:
        future = executor.submit(run_simulation, spec)
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            future.cancel()
            _note_abandoned(executor)
            raise SimulationTimeout(
                f"run {spec.label()!r} exceeded {timeout:g}s")
    finally:
        executor.shutdown(wait=False)


def run_hardened(spec: RunSpec,
                 harness: Optional[HarnessConfig] = None) -> RunOutcome:
    """Execute one spec under the harness's timeout/retry policy.

    Never raises for run failures: the outcome carries either the
    result or the final error (kind + message), plus attempt count.
    """
    harness = harness or HarnessConfig()
    outcome = RunOutcome(label=spec.label())
    started = time.monotonic()
    attempt = 0
    while True:
        outcome.attempts = attempt + 1
        try:
            with obs_span("harness.attempt", cat="harness",
                          label=outcome.label, attempt=attempt + 1):
                outcome.result = _attempt(spec, harness.timeout)
            break
        except ReproError as err:
            outcome.error = str(err)
            outcome.error_kind = err.kind
            if not (err.transient and attempt < harness.max_retries):
                break
            obs_instant("harness.retry", cat="harness",
                        label=outcome.label, attempt=attempt + 1,
                        kind=err.kind)
            harness.sleep(harness.backoff(attempt))
        except Exception as exc:  # deterministic failure: no retry
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.error_kind = "unexpected"
            break
        attempt += 1
    outcome.elapsed = time.monotonic() - started
    if outcome.ok:
        outcome.error = None
        outcome.error_kind = None
    return outcome


# ---------------------------------------------------------------------------
# Checkpointed sweeps


def _atomic_write(path: Path, payload: Dict[str, object]) -> None:
    # One tested write-then-rename implementation for the whole repo:
    # the store's atomic writer, which also fsyncs the file and its
    # directory so a checkpoint survives power loss, not just SIGKILL.
    # (No sort_keys: row dicts must round-trip in insertion order so a
    # resumed sweep's CSV has the same columns as a fresh one.)
    atomic_write_json(path, payload)


class CheckpointCorruptWarning(UserWarning):
    """A sweep checkpoint failed to parse and was quarantined; the
    affected points simply re-run (or resume from the result store)."""


@dataclass
class SweepReport:
    """Aggregated outcome of a hardened sweep: every completed row,
    every failure, and how much came from the checkpoint."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    failures: List[Dict[str, object]] = field(default_factory=list)
    resumed: int = 0
    #: Populated by the plain-sweep path of :func:`repro.api.sweep`.
    points: List[object] = field(default_factory=list)
    #: Merged :class:`~repro.obs.data.ObsData` over every freshly
    #: simulated run, when the sweep requested ``obs != "off"``.
    obs: Optional[ObsData] = None
    #: Persistent-store traffic (zero without a store): run-level
    #: record hits/misses summed across every point, including hits
    #: that happened inside pool workers.
    store_hits: int = 0
    store_misses: int = 0

    @property
    def completed(self) -> int:
        return len(self.rows)

    def to_csv(self) -> str:
        return rows_to_csv(self.rows)


class HardenedSweep:
    """A cartesian sweep that checkpoints, retries, and never aborts.

    The axes are those of :class:`repro.sim.sweep.Sweep` (plus
    ``mapping``); every grid point runs a baseline/optimized pair under
    :func:`run_hardened`.  Completed rows stream into the JSON
    checkpoint (atomic rename); constructing a sweep with an existing
    checkpoint resumes it.  Checkpoint entries are keyed by the
    canonical :meth:`RunSpec.key`-derived point key -- the same
    identity :class:`~repro.sim.sweep.Sweep` memoizes under -- so a
    resumed point is exactly one whose simulation inputs are
    unchanged.  A failed point is recorded under ``failures`` and the
    sweep moves on -- partial results beat no results.

    ``workers`` > 1 fans grid points out to a work-stealing process
    pool (see :mod:`repro.sim.executor`): workers pull points as they
    finish, and the checkpoint is rewritten every few completions (two
    per worker -- the same cadence the former wave loop had), so a kill
    loses at most that many in-flight points (serially: at most the one
    in-flight point, exactly as before).  Results are bit-identical to
    a serial run.  In parallel mode the harness's ``sleep`` callback
    must be picklable (the default, :func:`time.sleep`, is).
    ``batch``/``shm`` forward to
    :func:`~repro.sim.executor.execute_points` (batch size override and
    shared-artifact-plane switch).
    """

    def __init__(self, program: Program,
                 base_config: Optional[MachineConfig] = None,
                 harness: Optional[HarnessConfig] = None,
                 checkpoint: Optional[str] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 seed: int = 0,
                 workers: int = 1,
                 validate: str = "off",
                 obs: str = "off",
                 engine: str = "fast",
                 store: Optional[str] = None,
                 batch: Optional[int] = None,
                 shm: Optional[bool] = None):
        self.program = program
        self.base_config = base_config or \
            MachineConfig.scaled_default().with_(interleaving="cache_line")
        self.harness = harness or HarnessConfig()
        self.checkpoint = Path(checkpoint) if checkpoint else None
        self.fault_plan = fault_plan
        self.seed = seed
        self.workers = workers
        self.batch = batch
        self.shm = shm
        self.validate = validate
        self.obs = obs
        # Not part of the point key or the checkpoint: engines are
        # bit-identical, so resumed rows are engine-agnostic.
        self.engine = engine
        # Like ``engine``, the store is operational context, not
        # identity: rows resume from it by the same canonical point key
        # the checkpoint uses, and results are bit-identical either way.
        self.store = store
        self._store = store_backends.resolve(store)
        self._done: Dict[str, Dict[str, object]] = {}
        if self.checkpoint is not None and self.checkpoint.exists():
            payload = self._load_checkpoint()
            if payload is None:
                return
            if payload.get("program") not in ("", self.program.name):
                raise ValueError(
                    f"checkpoint {self.checkpoint} belongs to program "
                    f"{payload.get('program')!r}, not "
                    f"{self.program.name!r}")
            if payload.get("version") == CHECKPOINT_VERSION:
                try:
                    for entry in payload.get("points", []):
                        self._done[entry["key"]] = entry["row"]
                except (KeyError, TypeError) as err:
                    self._done = {}
                    self._quarantine_checkpoint(err)

    def _load_checkpoint(self) -> Optional[Dict[str, object]]:
        """Parse the checkpoint, quarantining it on corruption.

        A checkpoint that fails to parse -- truncated by a crash that
        beat the atomic writer (e.g. a pre-rename temp file restored by
        hand), flipped bits, or plain garbage -- is renamed aside with a
        :class:`CheckpointCorruptWarning` and the sweep starts fresh;
        the points re-run (or resume from the result store).  A
        checkpoint that parses but belongs to a *different program* is
        still a hard :class:`ValueError`: that is a caller mistake, not
        damage.
        """
        try:
            payload = json.loads(self.checkpoint.read_text())
            if not isinstance(payload, dict):
                raise ValueError("checkpoint root is not a JSON object")
        except (OSError, ValueError) as err:
            self._quarantine_checkpoint(err)
            return None
        return payload

    def _quarantine_checkpoint(self, err: BaseException) -> None:
        aside = self.checkpoint.with_name(self.checkpoint.name
                                          + ".corrupt")
        try:
            self.checkpoint.replace(aside)
            moved = str(aside)
        except OSError:
            try:
                self.checkpoint.unlink()
            except OSError:
                pass
            moved = "<removed>"
        obs_instant("harness.checkpoint_corrupt", cat="harness",
                    checkpoint=str(self.checkpoint), error=str(err))
        warnings.warn(
            f"checkpoint {self.checkpoint} is corrupt ({err}); "
            f"quarantined to {moved} and starting fresh",
            CheckpointCorruptWarning, stacklevel=3)

    def _save(self) -> None:
        if self.checkpoint is None:
            return
        payload = {
            "version": CHECKPOINT_VERSION,
            "program": self.program.name,
            "seed": self.seed,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan else None),
            "points": [{"key": key, "row": row}
                       for key, row in sorted(self._done.items())],
        }
        _atomic_write(self.checkpoint, payload)

    def _key(self, settings: Dict[str, object]) -> str:
        return point_key(point_specs(self.program, self.base_config,
                                     settings, self.fault_plan,
                                     self.seed))

    def _store_row(self, key: str,
                   report: "SweepReport") -> Optional[Dict[str, object]]:
        """A completed row for ``key`` from the result store, if any --
        the cross-process resume channel beside the checkpoint.
        Validated sweeps skip it: their points must actually audit a
        simulation, not replay a row."""
        if self._store is None or self.validate != "off":
            return None
        payload = self._store.get(key, ROW_KIND)
        # Rows travel as [key, value] pairs: the store canonicalizes
        # record bytes with sorted JSON keys, but CSV column order is
        # the row dict's insertion order, which must survive the round
        # trip.
        try:
            if payload is None or payload["format"] != ROW_FORMAT:
                raise KeyError("format")
            row = {str(k): v for k, v in payload["row"]}
        except (KeyError, TypeError, ValueError):
            report.store_misses += 1
            return None
        report.store_hits += 1
        return row

    def _store_put_row(self, key: str, row: Dict[str, object]) -> None:
        if self._store is not None:
            self._store.put(key,
                            {"format": ROW_FORMAT,
                             "row": [[k, v] for k, v in row.items()]},
                            ROW_KIND)

    def run(self, max_points: Optional[int] = None,
            progress: Optional[Callable[[int, int, int, int], None]]
            = None,
            **axes: Iterable) -> SweepReport:
        """Run the cartesian product of the axes, resuming from the
        checkpoint.  ``max_points`` bounds the number of *newly
        simulated* points (smoke runs; also how the resume tests model
        a killed sweep) -- remaining points are simply left for the
        next invocation.

        ``progress`` (optional) is called at every checkpoint flush
        with ``(flush_index, points_done, points_failed, total_fresh)``
        -- the hook behind ``repro-cli sweep --progress``.
        """
        validate_axes(axes)
        report = SweepReport()
        pending: List[Tuple[str, Dict[str, object]]] = []
        slots: Dict[str, List[int]] = {}
        fresh = 0
        for settings in grid_settings(axes):
            key = self._key(settings)
            if key not in self._done:
                row = self._store_row(key, report)
                if row is not None:
                    self._done[key] = row
            if key in self._done:
                report.rows.append(dict(self._done[key]))
                report.resumed += 1
                continue
            if key in slots:       # equivalent grid point: simulate once
                slots[key].append(len(report.rows))
                report.rows.append(settings)
                continue
            if max_points is not None and fresh >= max_points:
                continue
            fresh += 1
            slots[key] = [len(report.rows)]
            report.rows.append(settings)
            pending.append((key, settings))

        # Work-stealing execution with streaming checkpoints: one
        # execute_points call covers the whole grid (so the pool and
        # the shared artifact plane are built once), and the parent
        # records each outcome as it arrives, rewriting the
        # checkpoint every ``checkpoint_every`` completions (the
        # former wave size), which bounds both checkpoint-write
        # frequency and the work a kill can lose.
        obs_parts: List[object] = []
        completed = 0
        processed = 0
        flushes = 0
        checkpoint_every = max(1, self.workers) * 2

        def record(outcome) -> None:
            nonlocal completed, processed, flushes
            key, settings = pending[processed]
            processed += 1
            obs_parts.extend(outcome.obs)
            report.store_hits += outcome.store_hits
            report.store_misses += outcome.store_misses
            if not outcome.ok:
                report.failures.append(
                    {**settings, "error": outcome.error})
            else:
                completed += 1
                self._done[key] = outcome.row
                self._store_put_row(key, outcome.row)
                for slot in slots[key]:
                    # Each slot keeps its own axis values; the metrics
                    # come from the one shared simulation.
                    report.rows[slot] = comparison_row(
                        report.rows[slot], outcome.comparison)
            if processed % checkpoint_every == 0:
                self._save()
                if progress is not None:
                    progress(flushes, completed,
                             len(report.failures), len(pending))
                flushes += 1

        if pending:
            extra: Dict[str, object] = {}
            if self.batch is not None:
                extra["batch"] = self.batch
            if self.shm is not None:
                extra["shm"] = self.shm
            try:
                execute_points(
                    [PointTask(program=self.program,
                               base_config=self.base_config,
                               settings=tuple(sorted(settings.items())),
                               fault_plan=self.fault_plan,
                               seed=self.seed,
                               validate=self.validate, obs=self.obs,
                               engine=self.engine, store=self.store,
                               hardened=True, harness=self.harness)
                     for _, settings in pending],
                    workers=self.workers, progress=record, **extra)
            finally:
                # Even a sweep aborted by an exhausted retry budget
                # keeps every point that streamed in before the loss.
                if processed % checkpoint_every != 0:
                    self._save()
            if processed % checkpoint_every != 0 and progress is not None:
                progress(flushes, completed,
                         len(report.failures), len(pending))
        if obs_parts:
            report.obs = ObsData.merged(
                obs_parts, label=f"{self.program.name}/sweep")
        # Drop placeholders for failed (or max_points-skipped) points.
        report.rows = [row for row in report.rows
                       if not (isinstance(row, dict)
                               and "exec_time" not in row)]
        return report
