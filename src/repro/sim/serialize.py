"""Canonical result serialization: one row schema, one CSV writer,
one point identity.

Before this module existed, :mod:`repro.sim.sweep` and
:mod:`repro.sim.harness` each built their own result rows, their own
CSV writers, and their own grid-point keys -- three chances for the
schemas to drift apart.  Everything that turns a simulated comparison
into a row, a CSV file, or a cache/checkpoint identity now goes through
here, so a :class:`~repro.sim.sweep.Sweep`, a
:class:`~repro.sim.harness.HardenedSweep`, and the parallel executor
all emit byte-identical artifacts for the same experiments.

* :func:`comparison_row` -- axis settings + the four paper metrics, in
  the canonical column order (sorted axes first, then the metrics).
* :func:`rows_to_csv` -- the single CSV writer.
* :func:`point_key` -- the identity of one grid point, derived from the
  canonical :meth:`repro.sim.run.RunSpec.key` of its baseline and
  optimized runs; used for sweep memoization, checkpoint entries, and
  result-row identity alike.
"""

from __future__ import annotations

import csv
import hashlib
import io
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.sim.metrics import Comparison
from repro.sim.run import RunSpec

#: Decimal places kept for the reported metric reductions.  Shared by
#: every row producer so resumed/parallel sweeps reproduce serial CSV
#: output byte for byte.
ROW_PRECISION = 4


def comparison_row(settings: Mapping[str, object],
                   comparison: Comparison,
                   precision: int = ROW_PRECISION) -> Dict[str, object]:
    """The canonical result row: sorted axis settings, then the four
    metric reductions of Figures 4/14/16/22 (rounded)."""
    row: Dict[str, object] = dict(sorted(settings.items()))
    row.update(comparison.row(precision))
    return row


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render result rows as CSV text.

    The header comes from the first row; every producer builds rows via
    :func:`comparison_row`, so the column order is identical no matter
    which harness emitted them.
    """
    if not rows:
        return ""
    fieldnames = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def point_key(specs: Iterable[RunSpec]) -> str:
    """Canonical identity of one grid point (a group of related runs,
    typically the baseline/optimized pair).

    Built from each run's :meth:`~repro.sim.run.RunSpec.key`, so any
    input that changes the simulation -- configuration, mapping, fault
    plan, seed, page policy -- changes the key, and nothing else does.
    The result is short and filename-safe (checkpoint entries use it
    verbatim).
    """
    keys = [spec.key() for spec in specs]
    if not keys:
        raise ValueError("point_key needs at least one spec")
    digest = hashlib.sha1("|".join(keys).encode("utf-8")).hexdigest()
    head = keys[0].rsplit("-", 2)[0]  # the program label
    return f"{head}-{digest[:20]}"
