"""Parameter sweeps: grids of configurations with cached runs.

The paper's evaluation is a family of sweeps (interleavings, mappings,
placements, controller counts, mesh sizes, thread counts).  This module
provides the reusable machinery the benchmark harness is built on, as a
public API: declare axes, get every combination simulated (with
memoization across overlapping sweeps), and export the results as rows
or CSV.
"""

from __future__ import annotations

import csv
import io
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.arch.clustering import (balanced_mapping, grid_mapping,
                                   mapping_m1, mapping_m2)
from repro.arch.config import MachineConfig
from repro.program.ir import Program
from repro.sim.metrics import Comparison, RunMetrics
from repro.sim.run import RunSpec, run_simulation


MAPPING_PRESETS = ("M1", "M2", "voronoi")


def resolve_mapping(config: MachineConfig, name: str = "M1"):
    """Mapping presets by name, handling non-corner placements and
    non-default controller counts (shared with the CLI and benches).

    Raises ``ValueError`` for unknown preset names -- a typo like
    ``m3`` must not silently run the M1 experiment.
    """
    if name not in MAPPING_PRESETS:
        raise ValueError(
            f"unknown mapping preset {name!r}; valid presets: "
            f"{', '.join(MAPPING_PRESETS)}")
    mesh = config.mesh()
    nodes = config.mc_nodes(mesh)
    if name == "M2":
        return mapping_m2(mesh, nodes)
    if name == "voronoi" or config.mc_placement != "P1":
        return balanced_mapping(mesh, nodes, name="M1")
    if config.num_mcs != 4:
        return grid_mapping(mesh, nodes, config.num_mcs, name="M1")
    return mapping_m1(mesh, nodes)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the axis values plus its comparison."""

    settings: Tuple[Tuple[str, object], ...]
    comparison: Comparison

    def value(self, axis: str):
        return dict(self.settings)[axis]

    def row(self) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.settings)
        out.update({k: round(v, 4)
                    for k, v in self.comparison.as_row().items()})
        return out


class Sweep:
    """A cartesian sweep over configuration axes for one program.

    Axes are named keyword lists; recognized names map onto
    :class:`MachineConfig` fields (plus ``mapping``).  Every point runs
    a baseline/optimized pair; pairs are memoized so overlapping sweeps
    (or repeated axes values) cost nothing extra.
    """

    CONFIG_AXES = ("interleaving", "shared_l2", "mc_placement",
                   "num_mcs", "mesh_width", "mesh_height",
                   "threads_per_core", "banks_per_mc", "model_writes")

    def __init__(self, program: Program,
                 base_config: Optional[MachineConfig] = None):
        self.program = program
        self.base_config = base_config or \
            MachineConfig.scaled_default().with_(
                interleaving="cache_line")
        self._cache: Dict[tuple, Comparison] = {}

    def _point(self, settings: Dict[str, object]) -> Comparison:
        key = tuple(sorted(settings.items()))
        if key not in self._cache:
            config_kw = {k: v for k, v in settings.items()
                         if k in self.CONFIG_AXES}
            config = self.base_config.with_(**config_kw)
            mapping = resolve_mapping(config,
                                      str(settings.get("mapping", "M1")))
            base = run_simulation(RunSpec(
                program=self.program, config=config, mapping=mapping,
                optimized=False))
            opt = run_simulation(RunSpec(
                program=self.program, config=config, mapping=mapping,
                optimized=True))
            self._cache[key] = Comparison(base.metrics, opt.metrics)
        return self._cache[key]

    def run(self, **axes: Iterable) -> List[SweepPoint]:
        """Run the cartesian product of the given axes."""
        for name in axes:
            if name not in self.CONFIG_AXES and name != "mapping":
                raise ValueError(f"unknown sweep axis {name!r}")
        names = sorted(axes)
        points = []
        for combo in itertools.product(*(list(axes[n]) for n in names)):
            settings = dict(zip(names, combo))
            comparison = self._point(settings)
            points.append(SweepPoint(tuple(sorted(settings.items())),
                                     comparison))
        return points


def to_csv(points: List[SweepPoint]) -> str:
    """Render sweep points as CSV text (axes + the four reductions)."""
    if not points:
        return ""
    fieldnames = list(points[0].row().keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for point in points:
        writer.writerow(point.row())
    return buffer.getvalue()


def best_point(points: List[SweepPoint],
               metric: str = "exec_time") -> SweepPoint:
    """The point with the largest reduction on ``metric``."""
    if not points:
        raise ValueError("empty sweep")
    return max(points, key=lambda p: p.comparison.as_row()[metric])
