"""Parameter sweeps: grids of configurations with cached runs.

The paper's evaluation is a family of sweeps (interleavings, mappings,
placements, controller counts, mesh sizes, thread counts).  This module
provides the reusable machinery the benchmark harness is built on, as a
public API: declare axes, get every combination simulated (with
memoization across overlapping sweeps), and export the results as rows
or CSV.

Execution is delegated to the parallel engine in
:mod:`repro.sim.executor`: construct the sweep with ``workers=N`` to
fan grid points out to a process pool (``workers=1``, the default,
runs everything in-process).  Results are bit-identical either way;
memoization and the hardened harness's checkpoints share one canonical
key (:meth:`repro.sim.run.RunSpec.key`), and CSV export goes through
the shared serializer (:mod:`repro.sim.serialize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.faults.plan import FaultPlan
from repro.obs.data import ObsData
# Re-exported for backward compatibility: these historically lived here.
from repro.sim.executor import (CONFIG_AXES, MAPPING_PRESETS, PointTask,
                                execute_points, grid_settings, point_key,
                                point_specs, resolve_mapping, validate_axes)
from repro.program.ir import Program
from repro.sim.metrics import Comparison
from repro.sim.serialize import comparison_row, rows_to_csv

__all__ = ["MAPPING_PRESETS", "Sweep", "SweepPoint", "best_point",
           "resolve_mapping", "to_csv"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the axis values plus its comparison."""

    settings: Tuple[Tuple[str, object], ...]
    comparison: Comparison

    def value(self, axis: str):
        return dict(self.settings)[axis]

    def row(self) -> Dict[str, object]:
        return comparison_row(dict(self.settings), self.comparison)


class Sweep:
    """A cartesian sweep over configuration axes for one program.

    Axes are named keyword lists; recognized names map onto
    :class:`MachineConfig` fields (plus ``mapping``).  Every point runs
    a baseline/optimized pair; pairs are memoized under the canonical
    :meth:`RunSpec.key`-derived point key, so overlapping sweeps (or
    repeated axis values) cost nothing extra.

    ``workers`` > 1 executes uncached points on a process pool; the
    memoization cache is filled from the workers' results, so a
    follow-up sweep over a superset of the axes only simulates the new
    points.  An optional ``fault_plan``/``seed`` applies to every
    point, matching :class:`repro.sim.harness.HardenedSweep`.
    """

    CONFIG_AXES = CONFIG_AXES

    def __init__(self, program: Program,
                 base_config: Optional[MachineConfig] = None,
                 workers: int = 1,
                 fault_plan: Optional[FaultPlan] = None,
                 seed: int = 0,
                 validate: str = "off",
                 obs: str = "off",
                 engine: str = "fast",
                 store: Optional[str] = None,
                 batch: Optional[int] = None,
                 shm: Optional[bool] = None):
        self.program = program
        self.base_config = base_config or \
            MachineConfig.scaled_default().with_(
                interleaving="cache_line")
        self.workers = workers
        #: Work-stealing batch-size override and shared-artifact-plane
        #: switch, forwarded to the executor only when set (``None``
        #: keeps the executor defaults *and* keeps minimal-signature
        #: test doubles working).
        self.batch = batch
        self.shm = shm
        self.fault_plan = fault_plan
        self.seed = seed
        self.validate = validate
        self.obs = obs
        # Engine is deliberately absent from the point key: the fast
        # and reference loops are bit-identical, so cached comparisons
        # are engine-agnostic.  The store rides along the same way:
        # operational context, not identity.
        self.engine = engine
        self.store = store
        self._cache: Dict[str, Comparison] = {}
        self._obs_parts: List[ObsData] = []
        #: Persistent-store record traffic summed over every executed
        #: point (zero when no store is configured).
        self.store_hits = 0
        self.store_misses = 0

    def _key(self, settings: Dict[str, object]) -> str:
        return point_key(point_specs(self.program, self.base_config,
                                     settings, self.fault_plan,
                                     self.seed))

    def _task(self, settings: Dict[str, object]) -> PointTask:
        return PointTask(program=self.program,
                         base_config=self.base_config,
                         settings=tuple(sorted(settings.items())),
                         fault_plan=self.fault_plan, seed=self.seed,
                         validate=self.validate, obs=self.obs,
                         engine=self.engine, store=self.store)

    def run(self, progress: Optional[Callable] = None,
            **axes: Iterable) -> List[SweepPoint]:
        """Run the cartesian product of the given axes.

        ``progress`` (optional) receives each freshly simulated
        :class:`~repro.sim.executor.PointOutcome` as it completes.
        """
        validate_axes(axes)
        grid = grid_settings(axes)
        keys = [self._key(settings) for settings in grid]
        pending = []  # first occurrence of each uncached key, in order
        claimed = set()
        for settings, key in zip(grid, keys):
            if key not in self._cache and key not in claimed:
                claimed.add(key)
                pending.append((key, settings))
        # Optional knobs are only forwarded when set, so test doubles
        # that stand in for execute_points keep their minimal signature.
        extra = {"progress": progress} if progress is not None else {}
        if self.batch is not None:
            extra["batch"] = self.batch
        if self.shm is not None:
            extra["shm"] = self.shm
        outcomes = execute_points([self._task(s) for _, s in pending],
                                  workers=self.workers, **extra)
        for (key, _), outcome in zip(pending, outcomes):
            self._cache[key] = outcome.comparison
            self._obs_parts.extend(outcome.obs)
            self.store_hits += outcome.store_hits
            self.store_misses += outcome.store_misses
        return [SweepPoint(tuple(sorted(settings.items())),
                           self._cache[key])
                for settings, key in zip(grid, keys)]

    def collected_obs(self) -> Optional[ObsData]:
        """Everything the sweep's runs observed so far, merged into one
        bundle (``None`` when nothing was observed)."""
        if not self._obs_parts:
            return None
        return ObsData.merged(self._obs_parts,
                              label=f"{self.program.name}/sweep")


def to_csv(points: List[SweepPoint]) -> str:
    """Render sweep points as CSV text (axes + the four reductions)."""
    return rows_to_csv([point.row() for point in points])


def best_point(points: List[SweepPoint],
               metric: str = "exec_time") -> SweepPoint:
    """The point with the largest reduction on ``metric``."""
    if not points:
        raise ValueError("empty sweep")
    return max(points, key=lambda p: p.comparison.as_row()[metric])
