"""Parallel sweep execution engine: fan grid points out to workers.

The paper's evaluation is a large family of sweeps (interleaving x
mapping x placement x MC-count x mesh x threads); serially, every grid
point pays the full baseline+optimized simulation cost in one process.
This module is the shared engine underneath :class:`repro.sim.sweep.Sweep`,
:class:`repro.sim.harness.HardenedSweep`, and the ``repro-cli sweep
--workers N`` flag: it turns a list of grid points into
:class:`PointTask` work items and executes them on a
:class:`~concurrent.futures.ProcessPoolExecutor` with chunked
scheduling.

Determinism is free by construction: a grid point is a pure function of
``(program, base configuration, settings, fault plan, seed)`` -- every
stochastic component (trace jitter, first-touch races, fault drawing)
is seeded from the task itself, never from process-global state -- and
results are collected in submission order.  A parallel sweep is
therefore bit-identical to a serial one, which the test suite asserts
down to CSV bytes.  With ``workers=1`` (or a single task) no pool is
created at all: everything runs in-process, so debuggers, monkeypatched
test doubles, and coverage tools keep working.

This module also owns the one canonical translation from sweep
*settings* to :class:`~repro.sim.run.RunSpec` pairs
(:func:`point_specs`) and the axis vocabulary (:data:`CONFIG_AXES`),
which the sweep front-ends re-export.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import random
import signal
import time
import warnings
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.arch.clustering import (balanced_mapping, grid_mapping,
                                   mapping_m1, mapping_m2)
from repro.arch.config import MachineConfig
from repro.errors import WorkerLostError
from repro.faults.plan import FaultPlan
from repro.obs.tracer import obs_instant
from repro.program.ir import Program
from repro.sim import memo
from repro.sim import shm as shm_plane
from repro.sim.metrics import Comparison
from repro.sim.run import RunSpec, run_simulation
from repro.sim.serialize import comparison_row, point_key
from repro.store import base as store_backends

#: Sweep axes that map onto :class:`MachineConfig` fields.  ``mapping``
#: rides alongside as the one non-config axis.
CONFIG_AXES = ("interleaving", "shared_l2", "mc_placement",
               "num_mcs", "mesh_width", "mesh_height",
               "threads_per_core", "banks_per_mc", "model_writes")

MAPPING_PRESETS = ("M1", "M2", "voronoi")


def resolve_mapping(config: MachineConfig, name: str = "M1"):
    """Mapping presets by name, handling non-corner placements and
    non-default controller counts (shared by the sweeps, the CLI and
    the benches).

    Raises ``ValueError`` for unknown preset names -- a typo like
    ``m3`` must not silently run the M1 experiment.
    """
    if name not in MAPPING_PRESETS:
        raise ValueError(
            f"unknown mapping preset {name!r}; valid presets: "
            f"{', '.join(MAPPING_PRESETS)}")
    mesh = config.mesh()
    nodes = config.mc_nodes(mesh)
    if name == "M2":
        return mapping_m2(mesh, nodes)
    if name == "voronoi" or config.mc_placement != "P1":
        return balanced_mapping(mesh, nodes, name="M1")
    if config.num_mcs != 4:
        return grid_mapping(mesh, nodes, config.num_mcs, name="M1")
    return mapping_m1(mesh, nodes)


def validate_axes(axes: Mapping[str, Iterable]) -> None:
    """Reject unknown axis names with a diagnostic listing the known
    ones -- shared by every sweep front-end."""
    for name in axes:
        if name not in CONFIG_AXES and name != "mapping":
            raise ValueError(
                f"unknown sweep axis {name!r}; known axes: "
                f"{', '.join(CONFIG_AXES)}, mapping")


def grid_settings(axes: Mapping[str, Iterable]) -> List[Dict[str, object]]:
    """The cartesian product of the axes as per-point settings dicts,
    in the canonical (sorted-axis, row-major) order every sweep uses."""
    names = sorted(axes)
    return [dict(zip(names, combo))
            for combo in itertools.product(*(list(axes[n])
                                             for n in names))]


def point_specs(program: Program, base_config: MachineConfig,
                settings: Mapping[str, object],
                fault_plan: Optional[FaultPlan] = None,
                seed: int = 0,
                validate: str = "off",
                obs: str = "off",
                engine: str = "fast",
                store: Optional[str] = None) -> Tuple[RunSpec, RunSpec]:
    """The baseline/optimized :class:`RunSpec` pair for one grid point.

    This is the single source of truth for what a sweep point *means*;
    :class:`~repro.sim.sweep.Sweep` and
    :class:`~repro.sim.harness.HardenedSweep` both build their runs --
    and their cache/checkpoint keys -- from it.
    """
    config_kw = {k: v for k, v in settings.items() if k in CONFIG_AXES}
    config = base_config.with_(**config_kw)
    mapping = resolve_mapping(config, str(settings.get("mapping", "M1")))
    specs = tuple(
        RunSpec(program=program, config=config, mapping=mapping,
                optimized=optimized, fault_plan=fault_plan, seed=seed,
                validate=validate, obs=obs, engine=engine, store=store)
        for optimized in (False, True))
    return specs[0], specs[1]


@dataclass(frozen=True)
class PointTask:
    """One grid point, fully specified and picklable.

    ``hardened`` routes the runs through
    :func:`repro.sim.harness.run_hardened` (timeout/retry policy from
    ``harness``); otherwise failures propagate as exceptions.
    """

    program: Program
    base_config: MachineConfig
    settings: Tuple[Tuple[str, object], ...]
    fault_plan: Optional[FaultPlan] = None
    seed: int = 0
    validate: str = "off"
    obs: str = "off"
    # Event-loop engine for both runs ("fast" or "reference"); not part
    # of the point key -- the engines are bit-identical by contract.
    engine: str = "fast"
    # Persistent result store directory (repro.store); like the engine
    # it names where results live, not what they are, so it is not part
    # of the point key.  Each worker process opens its own handle on
    # the shared directory.
    store: Optional[str] = None
    hardened: bool = False
    harness: Optional[object] = None  # HarnessConfig; typed loosely to
    # keep this module import-cycle-free with repro.sim.harness


@dataclass
class PointOutcome:
    """What one grid point produced: a result row or a diagnostic."""

    settings: Dict[str, object]
    key: str
    row: Optional[Dict[str, object]] = None
    comparison: Optional[Comparison] = None
    error: Optional[str] = None
    # Per-run ObsData bundles (baseline then optimized) when the task
    # requested obs != "off"; picklable, so they survive the pool.
    obs: List[object] = field(default_factory=list)
    # Result-store traffic this point generated (0/0 without a store);
    # summed by the sweeps so a parent process can report hits that
    # happened inside pool workers.
    store_hits: int = 0
    store_misses: int = 0

    @property
    def ok(self) -> bool:
        return self.row is not None


def _chaos_maybe_die() -> None:
    """Fault-injection seam for the chaos harness (tests/test_chaos.py).

    When ``REPRO_CHAOS_DIR`` names a directory containing a
    ``kill-worker`` token, the first pool worker to claim the token
    (an atomic rename, so exactly one claimant wins) SIGKILLs itself --
    a *real* dead worker, not a mock, which the supervision layer must
    then recover from.  Never fires in the parent process, and costs
    one ``os.environ`` lookup when the variable is unset.
    """
    root = os.environ.get("REPRO_CHAOS_DIR")
    if not root or multiprocessing.parent_process() is None:
        return
    token = os.path.join(root, "kill-worker")
    try:
        os.rename(token, token + ".consumed")
    except OSError:
        return
    os.kill(os.getpid(), signal.SIGKILL)


def run_point(task: PointTask) -> PointOutcome:
    """Execute one grid point (baseline + optimized) in this process.

    This is the worker function the process pool invokes; it is also
    the in-process fallback, so serial and parallel sweeps share every
    line of per-point logic.
    """
    _chaos_maybe_die()
    settings = dict(task.settings)
    base_spec, opt_spec = point_specs(task.program, task.base_config,
                                      settings, task.fault_plan,
                                      task.seed, task.validate, task.obs,
                                      task.engine, task.store)
    key = point_key((base_spec, opt_spec))
    store = store_backends.resolve(task.store)
    stats_before = store.stats.snapshot() if store is not None else None
    obs_parts: List[object] = []
    if task.hardened:
        from repro.sim.harness import run_hardened
        metrics = []
        for spec in (base_spec, opt_spec):
            outcome = run_hardened(spec, task.harness)
            if not outcome.ok:
                return PointOutcome(
                    settings=settings, key=key,
                    error=(f"{outcome.label}: [{outcome.error_kind}] "
                           f"{outcome.error} "
                           f"(after {outcome.attempts} attempts)"))
            metrics.append(outcome.result.metrics)
            if outcome.result.obs is not None:
                obs_parts.append(outcome.result.obs)
        comparison = Comparison(metrics[0], metrics[1])
    else:
        base = run_simulation(base_spec)
        opt = run_simulation(opt_spec)
        comparison = Comparison(base.metrics, opt.metrics)
        obs_parts = [r.obs for r in (base, opt) if r.obs is not None]
    outcome = PointOutcome(settings=settings, key=key,
                           row=comparison_row(settings, comparison),
                           comparison=comparison, obs=obs_parts)
    if stats_before is not None:
        after = store.stats.snapshot()
        outcome.store_hits = after["hits"] - stats_before["hits"]
        # A point re-simulated because its record was absent *or*
        # quarantined as corrupt: either way the store did not serve
        # it.  The store's own books keep the two distinct.
        outcome.store_misses = (
            (after["misses"] - stats_before["misses"])
            + (after["corrupt"] - stats_before["corrupt"]))
    return outcome


def default_workers() -> int:
    """The CLI default: one worker per available CPU."""
    return os.cpu_count() or 1


def default_batch_size(num_tasks: int, workers: int) -> int:
    """Points per :class:`PointBatch`: 1 while the grid is small
    relative to the pool (maximum steal granularity -- a long-tail
    point never drags neighbours along), growing on large grids to
    amortize pickle/IPC overhead.  Capped at 8 so a lost batch keeps a
    small blast radius and the tail stays balanced."""
    if num_tasks <= 0 or workers <= 1 or num_tasks <= workers * 4:
        return 1
    return min(8, max(1, num_tasks // (workers * 8)))


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the parent reacts when pool workers die or hang.

    A worker that disappears (OOM-killed, segfaulted, ``kill -9``)
    breaks the pool; the supervisor rebuilds it and re-enqueues every
    point the crash took down, up to ``retry_budget`` re-enqueues per
    point, sleeping a jittered exponential backoff between rebuilds
    (the jitter keeps several supervising processes sharing a machine
    from herding their restarts).  ``task_timeout`` arms the hang
    detector: if no point completes for that many seconds, the pool is
    presumed wedged, its workers are killed, and the in-flight points
    are re-enqueued on the same budget.  Only when a point's budget is
    exhausted does the sweep fail, loudly, with
    :class:`~repro.errors.WorkerLostError` -- silent partial loss is
    the one outcome the supervisor exists to prevent.
    """

    retry_budget: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    task_timeout: Optional[float] = None
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, restart: int, rng: random.Random) -> float:
        span = self.backoff_base * (self.backoff_factor ** restart)
        return span * (1.0 + self.backoff_jitter * rng.random())


#: Process-wide supervision counters (tests and the CLI summary read
#: them; reset with :func:`reset_supervision_stats`).
_SUPERVISION = {"worker_restarts": 0, "points_reenqueued": 0,
                "hangs_detected": 0}


def supervision_stats() -> Dict[str, int]:
    return dict(_SUPERVISION)


def reset_supervision_stats() -> None:
    for key in _SUPERVISION:
        _SUPERVISION[key] = 0


def _kill_pool_workers(pool) -> None:
    """Forcibly stop a wedged pool's workers (terminate, then kill) so
    shutdown cannot block on a hung task."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except OSError:
            pass
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except OSError:
            pass


#: Process-wide work-stealing counters: batches/points handed to pool
#: workers and points re-enqueued after a worker loss (reset with
#: :func:`reset_steal_stats`).
_STEAL = {"batches": 0, "tasks": 0, "requeued": 0}


def steal_stats() -> Dict[str, int]:
    return dict(_STEAL)


def reset_steal_stats() -> None:
    for key in _STEAL:
        _STEAL[key] = 0


@dataclass(frozen=True)
class PointBatch:
    """A stolen unit of work: a few submission-order-indexed items.

    Batching amortizes pickle/IPC overhead on large grids of tiny
    points; ``indices`` let the parent slot results (and charge retry
    budgets) back to the right submission positions.
    """

    indices: Tuple[int, ...]
    items: Tuple[object, ...]


@dataclass
class _BatchResult:
    """What a worker sends back: per-item results in batch order, plus
    the worker's drained shared-memory attach counters (the parent
    cannot observe worker-side stats any other way)."""

    results: List[object]
    shm: Dict[str, int]


def _pool_init(manifest=None) -> None:
    """Pool-worker initializer: attach the shared artifact plane (when
    one was published) into this worker's memo cache.  Attachment is an
    optimization -- any failure leaves the worker recomputing, which is
    bit-identical, so errors are swallowed."""
    if manifest is not None:
        try:
            shm_plane.attach_into_memo(manifest)
        except Exception:
            pass


def _run_point_batch(batch: PointBatch) -> _BatchResult:
    """Execute one batch of :class:`PointTask` in a pool worker.

    ``run_point`` is resolved through the module global at call time so
    test doubles that monkeypatch ``executor.run_point`` (inherited via
    fork) stay effective under batching.
    """
    results = [run_point(task) for task in batch.items]
    return _BatchResult(results, shm_plane.drain_worker_stats())


def _run_spec_batch(batch: PointBatch) -> _BatchResult:
    """Execute one batch of bare :class:`RunSpec` (the search frontier
    re-simulation path); returns each run's metrics."""
    results = [run_simulation(spec).metrics for spec in batch.items]
    return _BatchResult(results, shm_plane.drain_worker_stats())


def _execute_scheduled(items: Sequence[object],
                       runner: Callable[[PointBatch], _BatchResult],
                       workers: int,
                       policy: SupervisionPolicy,
                       batch_size: int,
                       manifest,
                       on_result: Optional[Callable] = None,
                       describe: Callable[[object], str] = repr
                       ) -> List[object]:
    """The supervised work-stealing scheduler.

    Items are cut into :class:`PointBatch` units and fed to a
    :class:`ProcessPoolExecutor` with *bounded* in-flight submission
    (two batches per worker): workers steal the next batch as they
    finish, so a long-tail item never idles the rest of the pool, and a
    crash's blast radius is capped at the in-flight window.  Results
    land by submission index, so the output order -- and therefore CSV
    bytes -- is identical to the serial loop.

    Supervision semantics match the former wave loop: a dead or hung
    worker re-enqueues the in-flight items on a fresh pool (each
    charged one attempt), batches still queued re-enqueue for free, and
    only an item exceeding ``policy.retry_budget`` attempts raises
    :class:`WorkerLostError`.
    """
    results: List[Optional[object]] = [None] * len(items)
    attempts = [0] * len(items)
    pending = list(range(len(items)))
    reported = 0
    restarts = 0
    rng = random.Random()  # jitter shapes wall-clock only, never results

    def flush() -> None:
        nonlocal reported
        if on_result is None:
            return
        while reported < len(results) and results[reported] is not None:
            on_result(results[reported])
            reported += 1

    while pending:
        queue = deque(
            PointBatch(indices=tuple(pending[lo:lo + batch_size]),
                       items=tuple(items[j]
                                   for j in pending[lo:lo + batch_size]))
            for lo in range(0, len(pending), batch_size))
        round_workers = max(1, min(workers, len(pending)))
        cap = round_workers * 2  # bounded steal window
        pool = ProcessPoolExecutor(max_workers=round_workers,
                                   initializer=_pool_init,
                                   initargs=(manifest,))
        in_flight: Dict[object, Tuple[int, ...]] = {}
        lost: List[int] = []
        hung = False
        broken = False
        try:
            def submit_ready() -> None:
                nonlocal broken
                while queue and len(in_flight) < cap and not broken:
                    batch = queue.popleft()
                    for j in batch.indices:
                        attempts[j] += 1
                    try:
                        future = pool.submit(runner, batch)
                    except (BrokenProcessPool, RuntimeError):
                        # The pool died while we were submitting; this
                        # batch was charged and is lost, the rest of
                        # the queue re-enqueues for free.
                        lost.extend(batch.indices)
                        broken = True
                        return
                    in_flight[future] = batch.indices
                    _STEAL["batches"] += 1
                    _STEAL["tasks"] += len(batch.indices)

            submit_ready()
            while in_flight:
                done, _ = wait(set(in_flight),
                               timeout=policy.task_timeout,
                               return_when=FIRST_COMPLETED)
                if not done:
                    hung = True  # nothing finished within the window
                    break
                for future in done:
                    indices = in_flight.pop(future)
                    try:
                        batch_result = future.result()
                    except BrokenProcessPool:
                        lost.extend(indices)
                        broken = True
                        continue
                    shm_plane.absorb_worker_stats(batch_result.shm)
                    for j, value in zip(indices, batch_result.results):
                        results[j] = value
                flush()
                submit_ready()
            if hung:
                lost.extend(j for indices in in_flight.values()
                            for j in indices)
        finally:
            if hung:
                _kill_pool_workers(pool)
            pool.shutdown(wait=not hung, cancel_futures=True)

        leftover = [j for batch in queue for j in batch.indices]
        pending = []
        if not lost and not leftover:
            break
        if lost:
            exhausted = [j for j in lost
                         if attempts[j] > policy.retry_budget]
            if exhausted:
                raise WorkerLostError(
                    f"{len(exhausted)} grid point(s) lost to "
                    f"{'hung' if hung else 'dead'} workers after "
                    f"{policy.retry_budget} re-enqueue(s) each; first "
                    f"lost {describe(items[exhausted[0]])}")
            restarts += 1
            _SUPERVISION["worker_restarts"] += 1
            _SUPERVISION["points_reenqueued"] += len(lost)
            _STEAL["requeued"] += len(lost)
            if hung:
                _SUPERVISION["hangs_detected"] += 1
            obs_instant("executor.worker_lost", cat="executor",
                        points=len(lost), restart=restarts, hung=hung)
            policy.sleep(policy.backoff(restarts - 1, rng))
        pending = sorted(set(lost) | set(leftover))

    flush()
    return results  # type: ignore[return-value]


def _publish_plane(specs: Sequence[RunSpec],
                   shm: Optional[bool]):
    """Publish the shared artifact plane for ``specs`` when profitable.

    ``shm=None`` means *auto*: publish iff the memo is enabled (a
    disabled memo means workers would not adopt anyway) and at least
    one spec actually reaches the compile/trace pipeline (analytic
    runs never do).  Returns the plane or ``None``.
    """
    if shm is None:
        shm = memo.enabled()
    if not shm:
        return None
    eligible = [spec for spec in specs if spec.engine != "analytic"]
    if not eligible:
        return None
    return shm_plane.ArtifactPlane.publish(eligible)


def execute_points(tasks: Sequence[PointTask],
                   workers: Optional[int] = None,
                   chunksize: Optional[int] = None,
                   progress: Optional[Callable[[PointOutcome], None]]
                   = None,
                   supervision: Optional[SupervisionPolicy] = None,
                   batch: Optional[int] = None,
                   shm: Optional[bool] = None,
                   plane: Optional[object] = None
                   ) -> List[PointOutcome]:
    """Run grid points, preserving submission order.

    ``workers`` defaults to :func:`default_workers` (one per CPU) --
    omitting it fans out.  With ``workers=1`` (or one task) everything
    runs in-process -- no pool, no pickling, no subprocesses -- which
    is both the graceful fallback and the debuggable path, and the
    results are bit-identical either way.  Worker processes inherit
    nothing stochastic: all seeding travels inside each task, so the
    fan-out is bit-identical to the serial loop.

    The parallel path publishes the grid's shared compile/trace
    artifacts into shared memory once (:mod:`repro.sim.shm`) and
    schedules :class:`PointBatch` units onto the pool with work
    stealing (:func:`_execute_scheduled`), supervised per
    :class:`SupervisionPolicy`: a worker death or hang re-enqueues the
    lost points on a fresh pool instead of aborting the sweep, and only
    an exhausted retry budget raises.

    ``batch`` overrides :func:`default_batch_size`; ``shm`` forces the
    artifact plane on/off (``None`` = auto: on iff the memo is
    enabled); ``plane`` injects a pre-published
    :class:`~repro.sim.shm.ArtifactPlane` (the caller keeps ownership
    -- the chaos tests use this to hand workers a corrupted plane).
    ``chunksize`` is deprecated and ignored: batching supersedes it.

    ``progress`` (optional) is called in the *parent* process with each
    outcome as it is collected, in submission order -- the hook behind
    ``repro-cli sweep --progress``.  It never rides into workers, so it
    need not be picklable.
    """
    global _CHUNKSIZE_WARNED
    tasks = list(tasks)
    if chunksize is not None and not _CHUNKSIZE_WARNED:
        warnings.warn(
            "execute_points(chunksize=...) is deprecated and ignored; "
            "scheduling is work-stealing with batches sized by "
            "default_batch_size (override with batch=)",
            DeprecationWarning, stacklevel=2)
        _CHUNKSIZE_WARNED = True
    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), len(tasks) or 1))
    if workers == 1:
        outcomes_serial: List[PointOutcome] = []
        for task in tasks:
            outcome = run_point(task)
            outcomes_serial.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes_serial

    policy = supervision or SupervisionPolicy()
    batch_size = max(1, int(batch)) if batch else \
        default_batch_size(len(tasks), workers)
    own_plane = None
    if plane is None:
        specs: List[RunSpec] = []
        for task in tasks:
            base_spec, opt_spec = point_specs(
                task.program, task.base_config, dict(task.settings),
                task.fault_plan, task.seed, task.validate, task.obs,
                task.engine, task.store)
            specs.extend((base_spec, opt_spec))
        own_plane = _publish_plane(specs, shm)
        plane = own_plane
    manifest = plane.manifest() if plane is not None else None
    try:
        return _execute_scheduled(
            tasks, _run_point_batch, workers, policy, batch_size,
            manifest, on_result=progress,
            describe=lambda t: f"settings: {dict(t.settings)}")
    finally:
        if own_plane is not None:
            own_plane.close()


_CHUNKSIZE_WARNED = False


def execute_runs(specs: Sequence[RunSpec],
                 workers: Optional[int] = None,
                 shm: Optional[bool] = None,
                 batch: Optional[int] = None) -> List[object]:
    """Run bare :class:`RunSpec` items, returning each run's metrics in
    submission order -- the engine under the search frontier
    re-simulation.  ``workers=None``/1 runs serially in-process;
    otherwise the same shared-artifact plane, work stealing and
    supervision as :func:`execute_points` apply, and results are
    bit-identical either way."""
    specs = list(specs)
    workers = max(1, min(int(workers or 1), len(specs) or 1))
    if workers == 1:
        return [run_simulation(spec).metrics for spec in specs]
    policy = SupervisionPolicy()
    batch_size = max(1, int(batch)) if batch else \
        default_batch_size(len(specs), workers)
    own_plane = _publish_plane(specs, shm)
    manifest = own_plane.manifest() if own_plane is not None else None
    try:
        return _execute_scheduled(
            specs, _run_spec_batch, workers, policy, batch_size,
            manifest,
            describe=lambda s: f"spec: {s.key()}")
    finally:
        if own_plane is not None:
            own_plane.close()
