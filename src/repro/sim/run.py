"""High-level experiment runner: program + configuration -> metrics.

This is the public entry point the examples and benchmarks use.  A
:class:`RunSpec` names everything one simulated execution needs -- the
application model, the machine, the L2-to-MC mapping, whether the layout
pass runs, which page-allocation policy the OS uses, and whether the
idealized *optimal scheme* is simulated instead.  :func:`run_simulation`
performs the whole flow:

1. run (or skip) the layout transformation pass,
2. place arrays in the virtual address space,
3. generate per-thread traces,
4. translate to physical addresses under the chosen OS policy,
5. simulate, and return :class:`~repro.sim.metrics.RunMetrics`.

Page-allocation policies are resolved from the configuration: cache-line
interleaving keeps the MC-select bits below the page offset, so
translation is identity; page interleaving uses the default sequential
allocator for baselines, the MC-aware allocator (with the layout pass's
hints) for optimized runs, and the first-touch policy for the Section
6.3 comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import CACHE_LINE_INTERLEAVING, MachineConfig
from repro.core.pipeline import TransformationResult
from repro.faults.plan import FaultPlan
from repro.obs.data import OBS_LEVELS, ObsData
from repro.obs.telemetry import TelemetryRegistry
from repro.obs.tracer import Tracer, current_tracer, obs_instant, obs_span
from repro.osmodel.allocation import (FirstTouchPolicy, IdentityPolicy,
                                      MCAwarePolicy, PhysicalMemory,
                                      SequentialPolicy)
from repro.osmodel.page_table import PageTable, translate_traces
from repro.program.ir import Program
from repro.sim import memo
from repro.sim.metrics import Comparison, RunMetrics
from repro.store import base as store_backends
from repro.store import records as store_records
from repro.sim.system import SystemSimulator, build_streams
from repro.validate import (NetworkAudit, RunAudit, VALIDATE_LEVELS,
                            validate_run)

PAGE_POLICIES = ("auto", "default", "mc_aware", "first_touch")
#: The two bit-identical event-loop engines; everything in
#: tests/test_fastpath_equivalence.py quantifies over exactly these.
EXACT_ENGINES = ("fast", "reference")
#: Full ``engine=`` vocabulary.  ``analytic`` is the closed-form
#: estimator (repro.search.analytic): deliberately NOT bit-exact,
#: distinct key, store bypassed -- see docs/search.md.
ENGINES = EXACT_ENGINES + ("analytic",)


def _program_token(program: Program) -> Dict[str, object]:
    """Structural identity of a program model: everything that changes
    the generated traces, without hashing raw index data element-wise
    (a cheap checksum stands in for indexed streams)."""
    nests = []
    for nest in program.nests:
        refs = []
        for ref in nest.refs:
            if hasattr(ref, "access"):
                refs.append(("affine", ref.array.name, ref.access,
                             ref.offset, ref.is_write))
            else:
                checksum = int(sum(int(np.asarray(d, dtype=np.int64).sum())
                                   for d in ref.index_data))
                refs.append(("indexed", ref.array.name, ref.num_points,
                             checksum, ref.is_write))
        nests.append((nest.name, nest.bounds, nest.parallel_dim,
                      nest.repeat, nest.work_per_iteration, refs))
    return {
        "name": program.name,
        "arrays": [(a.name, a.dims, a.element_size)
                   for a in program.arrays],
        "nests": nests,
        "mlp_demand": program.mlp_demand,
    }


def _mapping_token(mapping: L2ToMCMapping) -> Dict[str, object]:
    """Structural identity of an L2-to-MC mapping (the name alone is
    not enough: custom mappings all default to ``"custom"``)."""
    return {
        "name": mapping.name,
        "mc_nodes": list(mapping.mc_nodes),
        "clusters": [(list(c.cores), list(c.mc_indices))
                     for c in mapping.clusters],
    }


@dataclass
class RunSpec:
    """One simulated execution, fully specified."""

    program: Program
    config: MachineConfig
    mapping: Optional[L2ToMCMapping] = None
    optimized: bool = False
    page_policy: str = "auto"
    optimal: bool = False
    localize_offchip: bool = True
    pages_per_mc: Optional[int] = None
    name: str = ""
    # Robustness knobs: an optional fault plan degrades the simulated
    # fabric, and the seed drives every stochastic tie-break (first-touch
    # races) so any run -- healthy or faulted -- is bit-reproducible.
    fault_plan: Optional[FaultPlan] = None
    seed: int = 0
    # Invariant-sanitizer level (repro.validate): "off" costs nothing,
    # "metrics" checks the RunMetrics accounting identities, "strict"
    # audits every layer (compiler/OS/NoC/memsys/metrics).  An audit
    # knob, not a simulation input: it is deliberately excluded from
    # key(), so validated and unvalidated runs share cache identity.
    validate: str = "off"
    # Observability level (repro.obs): "off" costs nothing, "spans"
    # traces wall-clock phases, "full" additionally collects hardware
    # telemetry (per-link flit occupancy, per-MC queue series).  Like
    # ``validate``, an observation knob excluded from key().
    obs: str = "off"
    # Event-loop engine: "fast" (default) runs the hit-filtered loop of
    # repro.sim.fastpath whenever the run is eligible (silently falling
    # back to the reference loop otherwise), "reference" always runs
    # the original per-access loop.  The two are bit-identical -- the
    # equivalence suite proves it -- so like ``validate``/``obs`` the
    # engine is excluded from key(): both engines share cache identity.
    # "analytic" (repro.search.analytic) *estimates* the metrics from
    # miss profiles + a queue model instead of simulating; estimates
    # are not bit-identical, so analytic runs get a distinct key()
    # marker and never touch the persistent result store.
    engine: str = "fast"
    # Persistent result store (repro.store): a directory path makes the
    # run consult the crash-safe content-addressed store before
    # simulating and persist its metrics after -- a warm hit replays
    # bit-identical RunMetrics with zero simulation work.  Where the
    # results live, not what they are: excluded from key(), and results
    # are bit-identical with the store on or off.
    store: Optional[str] = None

    def __post_init__(self) -> None:
        if self.page_policy not in PAGE_POLICIES:
            raise ValueError(f"unknown page policy {self.page_policy!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"engines: {', '.join(ENGINES)}")
        if self.validate not in VALIDATE_LEVELS:
            raise ValueError(f"unknown validation level "
                             f"{self.validate!r}; levels: "
                             f"{', '.join(VALIDATE_LEVELS)}")
        if self.obs not in OBS_LEVELS:
            raise ValueError(f"unknown observability level "
                             f"{self.obs!r}; levels: "
                             f"{', '.join(OBS_LEVELS)}")

    def resolved_mapping(self) -> L2ToMCMapping:
        return self.mapping or self.config.default_mapping()

    def label(self) -> str:
        if self.name:
            return self.name
        kind = "optimal" if self.optimal else (
            "optimized" if self.optimized else "original")
        return f"{self.program.name}/{kind}"

    def key(self) -> str:
        """Canonical cache identity of this run.

        Covers every input that changes the simulation: the program's
        structure, the full machine configuration, the resolved mapping,
        the run flags, the fault plan and the seed.  The one identity
        used for sweep memoization, harness checkpoint entries, and
        result-row identity -- so a memoized sweep, a resumed
        checkpoint, and a parallel worker all agree on what "the same
        run" means.  Short and filename-safe.
        """
        payload = {
            "program": _program_token(self.program),
            "config": asdict(self.config),
            "mapping": _mapping_token(self.resolved_mapping()),
            "optimized": self.optimized,
            "optimal": self.optimal,
            "page_policy": self.page_policy,
            "localize_offchip": self.localize_offchip,
            "pages_per_mc": self.pages_per_mc,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan is not None else None),
            "seed": self.seed,
        }
        if self.engine == "analytic":
            # Estimates are not interchangeable with simulated results:
            # give them a distinct identity so an analytic screen can
            # never be replayed where a bit-exact run is expected.
            # fast/reference keys stay byte-identical to each other.
            payload["engine"] = "analytic"
        digest = hashlib.sha1(
            json.dumps(payload, sort_keys=True, default=str)
            .encode("utf-8")).hexdigest()
        kind = "optimal" if self.optimal else (
            "optimized" if self.optimized else "original")
        safe_name = "".join(c if c.isalnum() or c in "._" else "_"
                            for c in self.program.name)
        return f"{safe_name}-{kind}-{digest[:16]}"


@dataclass
class RunResult:
    """Metrics plus the artifacts a bench may want to inspect."""

    spec: RunSpec
    metrics: RunMetrics
    transformation: Optional[TransformationResult] = None
    page_fallbacks: int = 0
    # The RunAudit assembled when spec.validate != "off" (None otherwise);
    # kept on the result so tests and the doctor can re-check artifacts.
    audit: Optional[RunAudit] = None
    # The observability bundle when spec.obs != "off" (None otherwise):
    # phase spans, telemetry registry (full level), and exporter metadata.
    obs: Optional[ObsData] = None


def _make_policy(spec: RunSpec, mapping: L2ToMCMapping,
                 hints: Dict[int, int]):
    config = spec.config
    if config.interleaving == CACHE_LINE_INTERLEAVING:
        return IdentityPolicy()
    policy = spec.page_policy
    if policy == "auto":
        policy = "mc_aware" if spec.optimized else "default"
    if policy == "default":
        return SequentialPolicy()
    if policy == "first_touch":
        return FirstTouchPolicy(mapping, seed=spec.seed)
    return MCAwarePolicy(hints, mapping)


def _fault_windows(plan: FaultPlan) -> List[Dict[str, object]]:
    """The plan's activation windows as plain dicts, for trace export
    (Chrome fault-lane events) and the per-run ``ObsData.meta``."""
    windows: List[Dict[str, object]] = []
    for fault in plan.link_faults:
        windows.append({"kind": "link_dead",
                        "what": f"link {fault.a}-{fault.b}",
                        "start": fault.start, "end": fault.end})
    for deg in plan.link_degradations:
        windows.append({"kind": "link_degraded",
                        "what": f"link {deg.a}-{deg.b} x{deg.factor:g}",
                        "start": deg.start, "end": deg.end})
    for fault in plan.mc_faults:
        what = f"mc {fault.mc} {fault.kind}"
        if fault.kind == "slow":
            what += f" x{fault.factor:g}"
        windows.append({"kind": f"mc_{fault.kind}", "what": what,
                        "start": fault.start, "end": fault.end})
    for fault in plan.bank_faults:
        windows.append({"kind": "bank_dead",
                        "what": f"mc {fault.mc} bank {fault.bank}",
                        "start": 0.0, "end": None})
    return windows


def _store_fetch(spec: RunSpec, store, obs: Optional[ObsData]
                 ) -> Optional[RunResult]:
    """Replay ``spec`` from the result store, or ``None`` on a miss.

    Validated runs never read the store: a replayed record carries only
    metrics, and ``validate != "off"`` needs the run's artifacts to
    audit.  Corruption inside the store is already a quarantined miss
    by the time it gets here; stats deltas (hits, misses, quarantines,
    degradations) land in the run's telemetry as ``store.*`` counters.
    """
    if store is None or spec.validate != "off":
        return None
    before = store.stats.snapshot()
    with obs_span("store.get", cat="store", backend=store.description) \
            as span:
        result = store_records.load_result(store, spec)
        span.add(hit=result is not None)
    if obs is not None and obs.telemetry is not None:
        store_backends.publish_stats(obs.telemetry, before,
                                     store.stats.snapshot())
    if result is not None:
        result.obs = obs
    return result


def _store_save(spec: RunSpec, store, result: RunResult,
                obs: Optional[ObsData]) -> None:
    """Persist a freshly simulated run; never raises (the degradation
    ladder inside the store absorbs environmental failure)."""
    if store is None:
        return
    before = store.stats.snapshot()
    with obs_span("store.put", cat="store", backend=store.description):
        store_records.store_result(store, spec, result)
    if obs is not None and obs.telemetry is not None:
        store_backends.publish_stats(obs.telemetry, before,
                                     store.stats.snapshot())


def run_simulation(spec: RunSpec) -> RunResult:
    """Execute one :class:`RunSpec` end to end.

    With ``spec.store`` set, the persistent result store is consulted
    first: a warm hit replays bit-identical metrics without touching
    the simulator (zero simulation spans), a miss simulates and then
    persists.  With ``spec.obs != "off"`` the run is observed: a fresh
    per-run :class:`~repro.obs.tracer.Tracer` is activated for the
    duration (so concurrently observed runs never interleave spans),
    the bundle is attached as ``result.obs``, and -- when a tracer was
    already active in this context (e.g. the CLI profiling a whole
    sweep) -- the finished spans are also absorbed into it.

    ``engine="analytic"`` short-circuits to the estimator
    (:func:`repro.search.analytic.analytic_run`) before the store is
    even resolved: estimates are never persisted or replayed.
    """
    if spec.engine == "analytic":
        from repro.search.analytic import analytic_run
        return analytic_run(spec)
    store = store_backends.resolve(spec.store)
    if spec.obs == "off":
        result = _store_fetch(spec, store, None)
        if result is not None:
            return result
        result = _execute(spec, None)
        _store_save(spec, store, result, None)
        return result
    obs = ObsData(level=spec.obs, label=spec.label(),
                  telemetry=(TelemetryRegistry()
                             if spec.obs == "full" else None))
    tracer = Tracer(label=spec.label())
    outer = current_tracer()
    with tracer.activate():
        with tracer.span("run", cat="run", key=spec.key()):
            result = _store_fetch(spec, store, obs)
            if result is None:
                result = _execute(spec, obs)
                _store_save(spec, store, result, obs)
    obs.spans = tracer.spans()
    result.obs = obs
    if outer is not None:
        outer.absorb(obs.spans)
    return result


def _execute(spec: RunSpec, obs: Optional[ObsData]) -> RunResult:
    """The simulation flow proper, instrumented with phase spans."""
    config = spec.config
    mapping = spec.resolved_mapping()
    num_threads = config.num_cores * config.threads_per_core
    telemetry = obs.telemetry if obs is not None else None

    # Compile and trace artifacts are memoized across runs sharing the
    # same content identity (repro.sim.memo): an optimal pair, a seed or
    # fault-plan axis, and every baseline across a mapping axis reuse
    # the transformation/placement/traces instead of recomputing them.
    transformation, layouts, transformed = memo.compiled(spec)
    space, bases, traces = memo.placed_traces(spec, layouts)
    vtraces = [t.vaddrs for t in traces]
    gaps = [t.gaps for t in traces]

    hints = space.desired_mc_hints(layouts) if transformed else {}
    policy = _make_policy(spec, mapping, hints)
    pages_per_mc = spec.pages_per_mc
    if pages_per_mc is None:
        total_pages = -(-space.footprint_bytes // config.page_size)
        pages_per_mc = max(16, 4 * (total_pages // config.num_mcs + 1))
    capacities = None
    if spec.fault_plan is not None and spec.fault_plan.page_pressure:
        capacities = [pages_per_mc] * config.num_mcs
        for pressure in spec.fault_plan.page_pressure:
            if not 0 <= pressure.mc < config.num_mcs:
                raise ValueError(f"page pressure on unknown MC "
                                 f"{pressure.mc}")
            capacities[pressure.mc] = int(
                round(pages_per_mc * (1.0 - pressure.fraction)))
    memory = PhysicalMemory(config.num_mcs, pages_per_mc,
                            capacities=capacities)
    table = PageTable(config.page_size, memory, policy)

    cores = mapping.num_threads
    thread_cores = [mapping.core_order[t % cores]
                    for t in range(num_threads)]
    if isinstance(policy, IdentityPolicy):
        ptraces = vtraces  # ppn == vpn: skip the table walk entirely
    else:
        with obs_span("os.translate", cat="os"):
            ptraces = translate_traces(vtraces, table, thread_cores,
                                       seed=spec.seed)

    with obs_span("sim.build_streams", cat="sim"):
        streams = build_streams(config, thread_cores, vtraces, ptraces,
                                gaps,
                                writes=[t.writes for t in traces],
                                segments=[t.segments for t in traces])
    network_audit = (NetworkAudit(mapping.mesh)
                     if spec.validate == "strict" else None)
    simulator = SystemSimulator(
        config, mapping, optimal=spec.optimal,
        miss_overlap=config.effective_overlap(spec.program.mlp_demand),
        fault_plan=spec.fault_plan, network_audit=network_audit,
        telemetry=telemetry)
    if obs is not None and spec.fault_plan is not None \
            and not spec.fault_plan.empty:
        windows = _fault_windows(spec.fault_plan)
        obs.meta["fault_windows"] = windows
        for window in windows:
            obs_instant("fault.activate", cat="fault", **window)
    overhead = config.transform_overhead if transformed else 0.0
    with obs_span("sim.system", cat="sim", engine=spec.engine):
        metrics = simulator.run(streams, transform_overhead=overhead,
                                name=spec.label(), engine=spec.engine)
    metrics.page_fallbacks = getattr(policy, "fallbacks", 0)
    if obs is not None:
        obs.meta["mesh"] = (mapping.mesh.width, mapping.mesh.height)
        obs.meta["exec_time"] = metrics.exec_time
        if telemetry is not None:
            telemetry.counter("os.page_fallbacks").inc(
                metrics.page_fallbacks)

    audit: Optional[RunAudit] = None
    if spec.validate != "off":
        with obs_span("validate", cat="validate", level=spec.validate):
            audit = RunAudit(
                spec=spec, config=config, mapping=mapping,
                transformation=transformation, layouts=dict(layouts),
                page_table=table, memory=memory, policy=policy,
                metrics=metrics, network_audit=network_audit, obs=obs)
            report = validate_run(audit, spec.validate)
            metrics.validation_checks = report.checks_run
            metrics.validation_violations = len(report.violations)
            report.raise_if_failed(label=spec.label())

    return RunResult(spec=spec, metrics=metrics,
                     transformation=transformation,
                     page_fallbacks=metrics.page_fallbacks,
                     audit=audit, obs=obs)


def run_pair(program: Program, config: MachineConfig,
             mapping: Optional[L2ToMCMapping] = None,
             page_policy: str = "auto",
             localize_offchip: bool = True) -> Tuple[RunResult, RunResult,
                                                     Comparison]:
    """Baseline vs. optimized under one configuration -- the comparison
    every per-application bar of Figures 14/16/17/19-22 reports."""
    base = run_simulation(RunSpec(program=program, config=config,
                                  mapping=mapping, optimized=False,
                                  page_policy=page_policy))
    opt = run_simulation(RunSpec(program=program, config=config,
                                 mapping=mapping, optimized=True,
                                 page_policy=page_policy,
                                 localize_offchip=localize_offchip))
    return base, opt, Comparison(base.metrics, opt.metrics)


def run_optimal_pair(program: Program, config: MachineConfig,
                     mapping: Optional[L2ToMCMapping] = None
                     ) -> Tuple[RunResult, RunResult, Comparison]:
    """Baseline vs. the idealized optimal scheme (Figure 4)."""
    base = run_simulation(RunSpec(program=program, config=config,
                                  mapping=mapping, optimized=False))
    opt = run_simulation(RunSpec(program=program, config=config,
                                 mapping=mapping, optimized=False,
                                 optimal=True))
    return base, opt, Comparison(base.metrics, opt.metrics)
