"""Shared read-only artifact plane for parallel sweeps.

A sweep grid shares most of its front-half work: every baseline run of
a mapping axis uses one compiled program and one trace set, and every
point of a seed/fault-plan axis shares both.  The in-process memo
(:mod:`repro.sim.memo`) already deduplicates that work *within* a
process -- but a process pool multiplies it again: every worker used to
recompile and regenerate traces for itself, so an N-worker sweep paid
the front half up to N times.

This module publishes the memo's artifacts once, from the parent, into
POSIX shared memory (:mod:`multiprocessing.shared_memory`) and lets
pool workers *attach* instead of recompute:

* :meth:`ArtifactPlane.publish` computes each shareable artifact once
  (through the memo, so the parent's own cache warms too), packs it
  into one segment per artifact -- trace arrays as raw bytes, the
  pickled remainder alongside -- and records everything in a picklable
  :class:`Manifest` keyed by the memo's own content-hash keys.
* :func:`attach_into_memo` runs in each pool worker (the executor's
  initializer): it maps the segments, verifies each entry's SHA-256
  checksum, reconstructs trace arrays as **zero-copy read-only NumPy
  views** over the shared buffer, and adopts the values into the
  worker's memo cache.  A corrupt entry (flipped bits, truncation) is
  counted and skipped -- the worker recomputes that artifact locally,
  so results stay bit-identical no matter what happened to the bytes.

Lifecycle is refcounted and crash-safe: the plane unlinks its segments
on :meth:`~ArtifactPlane.close` (guarded by an acquire/release count
for callers that share one plane across pool rebuilds), a
``weakref.finalize`` hook covers abandoned planes at interpreter exit,
and a *janitor* sidecar file names every segment so that
:func:`reap_stale` can unlink leftovers from a SIGKILLed parent on the
next run.  Attaching workers never unlink: under fork the whole family
shares one ``resource_tracker`` whose registration is owned by the
publisher, so a chaos SIGKILL of a worker cannot tear the segments out
from under its siblings (see :func:`attach_segment`).

Everything here is optional plumbing: with the plane disabled
(``--no-shm``, or ``memo.configure(enabled=False)``) workers simply
recompute, and results are bit-identical either way.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import tempfile
import warnings
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.tracer import obs_instant, obs_span
from repro.sim import memo

__all__ = ["ArtifactPlane", "Manifest", "attach_into_memo",
           "attach_segment", "drain_worker_stats", "reap_stale",
           "reset_shm_stats", "shm_stats"]

#: Segment names start with this; the chaos tests (and the janitor)
#: recognize leaked ``/dev/shm`` entries by it.
SEGMENT_PREFIX = "repro_shm_"

#: Array payloads are aligned to this many bytes inside a segment so
#: int64 views are always well-aligned.
_ALIGN = 16

#: Publish only artifacts that at least this many runs share.  An
#: artifact used once gains nothing from the plane (the one worker that
#: needs it computes it exactly once either way), so publishing it
#: would just serialize work into the parent.
MIN_SHARED_RUNS = 2


class SharedPlaneWarning(UserWarning):
    """The artifact plane degraded (a segment could not be published or
    attached); the sweep continues on local recomputation."""


# ---------------------------------------------------------------------------
# Process-wide counters (style of executor.supervision_stats)

#: Parent-process counters; worker-side attach counts travel back to
#: the parent inside batch results and are folded in by the executor.
_SHM = {"published": 0, "bytes": 0, "attached": 0, "attached_bytes": 0,
        "corrupt": 0, "unlinked": 0, "reaped": 0}


def shm_stats() -> Dict[str, int]:
    """Process-wide shared-artifact counters: segments ``published``
    and their payload ``bytes``, worker ``attached`` entries (and
    ``attached_bytes``) as reported back through batch results,
    checksum-``corrupt`` entries skipped, segments ``unlinked`` on
    close, and stale segments ``reaped`` by the janitor."""
    return dict(_SHM)


def reset_shm_stats() -> None:
    for key in _SHM:
        _SHM[key] = 0


def absorb_worker_stats(stats: Optional[Dict[str, int]]) -> None:
    """Fold a worker's attach counters (travelling inside a batch
    result) into the parent's process-wide stats."""
    if not stats:
        return
    _SHM["attached"] += int(stats.get("attached", 0))
    _SHM["attached_bytes"] += int(stats.get("attached_bytes", 0))
    _SHM["corrupt"] += int(stats.get("corrupt", 0))


#: Worker-side counters, drained into each batch result so the parent
#: can aggregate attach activity it cannot observe directly.
_WORKER = {"attached": 0, "attached_bytes": 0, "corrupt": 0}


def drain_worker_stats() -> Dict[str, int]:
    """Return and reset this process's attach counters (called by the
    executor's batch runner inside pool workers)."""
    out = {k: v for k, v in _WORKER.items() if v}
    for key in _WORKER:
        _WORKER[key] = 0
    return out


# ---------------------------------------------------------------------------
# Manifest

@dataclass(frozen=True)
class ArrayRef:
    """One NumPy array inside a segment: byte offset, shape, dtype."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class EntryRef:
    """One published memo entry.

    ``key`` is the memo cache key (``compile:<hash>`` /
    ``trace:<hash>``); ``meta_len`` bytes of pickle at offset 0 carry
    the non-array remainder of the value; ``arrays`` (trace entries
    only: vaddrs/gaps/writes per thread, in thread order) are raw
    buffers reconstructed as read-only views.  ``digest`` is the
    SHA-256 of the first ``size`` payload bytes -- attachment verifies
    it, so a damaged segment degrades to recomputation instead of
    corrupting results.
    """

    key: str
    kind: str  # "compile" | "trace"
    segment: str
    size: int
    digest: str
    meta_len: int
    arrays: Tuple[ArrayRef, ...] = ()


@dataclass(frozen=True)
class Manifest:
    """Everything a worker needs to attach: entry table plus the
    publisher's identity (for diagnostics)."""

    entries: Tuple[EntryRef, ...]
    owner_pid: int

    @property
    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries)


# ---------------------------------------------------------------------------
# Janitor: crash-safe cleanup of leaked segments

def _janitor_dir() -> Path:
    root = os.environ.get("REPRO_SHM_JANITOR_DIR")
    if root:
        return Path(root)
    return Path(tempfile.gettempdir()) / "repro-shm-janitor"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # someone else's live process
    except OSError:
        return False
    return True


def _sidecar_write(token: str, segments: Sequence[str]) -> Optional[Path]:
    directory = _janitor_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{os.getpid()}-{token}.json"
        path.write_text(json.dumps({"pid": os.getpid(),
                                    "segments": list(segments)}))
        return path
    except OSError:
        return None  # janitorless operation is only less crash-safe


def _unlink_segment(name: str) -> bool:
    """Best-effort unlink of a named segment; True if it existed."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:
        return False
    try:
        seg.close()
        seg.unlink()
    except (FileNotFoundError, OSError):
        pass
    return True


def reap_stale() -> int:
    """Unlink segments whose publishing process died without cleaning
    up (SIGKILL, power loss).  Reads every janitor sidecar, skips live
    owners, unlinks the named segments of dead ones, and removes the
    sidecar.  Called on every publish; safe (and cheap) to call any
    time.  Returns the number of segments reaped."""
    directory = _janitor_dir()
    if not directory.is_dir():
        return 0
    reaped = 0
    for sidecar in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(sidecar.read_text())
            pid = int(payload["pid"])
            segments = [str(s) for s in payload.get("segments", ())]
        except (OSError, ValueError, KeyError, TypeError):
            try:
                sidecar.unlink()
            except OSError:
                pass
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        for name in segments:
            if _unlink_segment(name):
                reaped += 1
        try:
            sidecar.unlink()
        except OSError:
            pass
    if reaped:
        _SHM["reaped"] += reaped
        obs_instant("shm.reaped", cat="shm", segments=reaped)
    return reaped


# ---------------------------------------------------------------------------
# Attach plumbing

def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership.

    Python registers every ``SharedMemory`` -- attached or created --
    with the ``resource_tracker``.  Under the fork start method every
    process in the family shares the parent's tracker, whose per-name
    cache is a *set*: re-registration from an attaching worker is
    idempotent, the single entry is removed by the owner's ``unlink``,
    and a leftover entry (owner SIGKILLed before unlinking) makes the
    tracker unlink the segment at shutdown -- a welcome backstop for
    the janitor.  So no unregister gymnastics here: sending one from an
    attacher would strip the owner's registration instead.

    Raises ``FileNotFoundError`` when the segment does not exist.
    """
    return shared_memory.SharedMemory(name=name)


#: Segments this process has attached (kept open for the lifetime of
#: the views that alias their buffers).
_ATTACHED_SEGMENTS: List[shared_memory.SharedMemory] = []
_ATTACH_CLEANUP_REGISTERED = False


def _close_attached() -> None:
    """Worker atexit: drop cache references and close attachments.

    Closing a segment with live buffer exports raises ``BufferError``;
    clearing the memo cache first releases the canonical references,
    and any stragglers are simply left for process teardown (the OS
    closes the mapping either way -- this hook exists to keep clean
    exits quiet, not to guarantee anything)."""
    try:
        memo.cache.clear()
    except Exception:
        pass
    for seg in _ATTACHED_SEGMENTS:
        try:
            seg.close()
        except BufferError:
            pass
        except OSError:
            pass
    _ATTACHED_SEGMENTS.clear()


def _view(seg: shared_memory.SharedMemory, ref: ArrayRef) -> np.ndarray:
    count = 1
    for dim in ref.shape:
        count *= dim
    array = np.frombuffer(seg.buf, dtype=np.dtype(ref.dtype),
                          count=count, offset=ref.offset)
    array = array.reshape(ref.shape)
    array.flags.writeable = False
    return array


def _rebuild_trace_value(seg: shared_memory.SharedMemory,
                         entry: EntryRef):
    """Reconstruct a ``(space, bases, traces)`` memo value with every
    trace array a zero-copy view over the shared buffer."""
    from repro.program.trace import ThreadTrace
    space, bases, segments_per_thread = pickle.loads(
        bytes(seg.buf[:entry.meta_len]))
    if len(entry.arrays) != 3 * len(segments_per_thread):
        raise ValueError("trace entry array table does not match its "
                         "thread count")
    traces = []
    for t, segs in enumerate(segments_per_thread):
        vaddrs, gaps, writes = (entry.arrays[3 * t],
                                entry.arrays[3 * t + 1],
                                entry.arrays[3 * t + 2])
        traces.append(ThreadTrace(vaddrs=_view(seg, vaddrs),
                                  gaps=_view(seg, gaps),
                                  writes=_view(seg, writes),
                                  segments=segs))
    return space, bases, traces


def attach_into_memo(manifest: Manifest) -> int:
    """Attach every manifest entry and adopt it into this process's
    memo cache (the pool-worker initializer).  Checksum-verified:
    corrupt entries are counted and skipped, never adopted.  Returns
    the number of entries adopted."""
    global _ATTACH_CLEANUP_REGISTERED
    adopted: Dict[str, object] = {}
    attached_bytes = 0
    for entry in manifest.entries:
        try:
            seg = attach_segment(entry.segment)
        except (FileNotFoundError, OSError):
            _WORKER["corrupt"] += 1
            continue
        payload = bytes(seg.buf[:entry.size])
        if hashlib.sha256(payload).hexdigest() != entry.digest:
            _WORKER["corrupt"] += 1
            seg.close()
            continue
        try:
            if entry.kind == "compile":
                value = pickle.loads(payload[:entry.meta_len])
                seg.close()  # value fully copied out; drop the mapping
            else:
                value = _rebuild_trace_value(seg, entry)
                _ATTACHED_SEGMENTS.append(seg)  # views alias the buffer
        except Exception:
            _WORKER["corrupt"] += 1
            try:
                seg.close()
            except BufferError:
                _ATTACHED_SEGMENTS.append(seg)
            continue
        adopted[entry.key] = value
        attached_bytes += entry.size
    count = memo.adopt(adopted) if adopted else 0
    if count:
        _WORKER["attached"] += count
        _WORKER["attached_bytes"] += attached_bytes
    if _ATTACHED_SEGMENTS and not _ATTACH_CLEANUP_REGISTERED:
        atexit.register(_close_attached)
        _ATTACH_CLEANUP_REGISTERED = True
    return count


# ---------------------------------------------------------------------------
# Publishing

def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack_entry(key: str, kind: str, meta_blob: bytes,
                arrays: Sequence[np.ndarray]) -> Tuple[bytes, EntryRef,
                                                       List[ArrayRef]]:
    """Lay out one entry's payload: pickle at 0, arrays aligned after."""
    offset = _aligned(len(meta_blob))
    refs: List[ArrayRef] = []
    for array in arrays:
        refs.append(ArrayRef(offset=offset, shape=tuple(array.shape),
                             dtype=array.dtype.str))
        offset = _aligned(offset + array.nbytes)
    payload = bytearray(offset if arrays else len(meta_blob))
    payload[:len(meta_blob)] = meta_blob
    for ref, array in zip(refs, arrays):
        raw = np.ascontiguousarray(array).tobytes()
        payload[ref.offset:ref.offset + len(raw)] = raw
    data = bytes(payload)
    entry = EntryRef(key=key, kind=kind, segment="", size=len(data),
                     digest=hashlib.sha256(data).hexdigest(),
                     meta_len=len(meta_blob), arrays=tuple(refs))
    return data, entry, refs


def _segment_name(token: str, seq: int) -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}_{seq}_{token}"


class ArtifactPlane:
    """A set of published shared-memory segments plus their manifest.

    Create with :meth:`publish`; hand :meth:`manifest` to pool workers;
    :meth:`close` when the last pool using it is gone.  ``acquire`` /
    ``release`` refcount shared use (e.g. one plane across supervision
    pool rebuilds): ``close`` only unlinks once the count reaches zero,
    and the initial reference belongs to the creator.
    """

    def __init__(self, segments: List[shared_memory.SharedMemory],
                 manifest: Manifest, sidecar: Optional[Path]):
        self._segments = segments
        self._manifest = manifest
        self._sidecar = sidecar
        self._refs = 1
        self._closed = False
        names = [seg.name for seg in segments]
        # Backstop for abandoned planes: unlink at GC/interpreter exit.
        self._finalizer = weakref.finalize(
            self, _finalize_segments, names,
            str(sidecar) if sidecar else None)

    # -- introspection ------------------------------------------------------
    def manifest(self) -> Manifest:
        return self._manifest

    def __len__(self) -> int:
        return len(self._manifest.entries)

    @property
    def total_bytes(self) -> int:
        return self._manifest.total_bytes

    @property
    def segment_names(self) -> List[str]:
        return [seg.name for seg in self._segments]

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ----------------------------------------------------------
    def acquire(self) -> "ArtifactPlane":
        if self._closed:
            raise ValueError("artifact plane is closed")
        self._refs += 1
        return self

    def release(self) -> None:
        self.close()

    def close(self) -> None:
        """Drop one reference; unlink every segment when none remain."""
        if self._closed:
            return
        self._refs -= 1
        if self._refs > 0:
            return
        self._closed = True
        self._finalizer.detach()
        unlinked = 0
        for seg in self._segments:
            try:
                seg.close()
            except (BufferError, OSError):
                pass
            try:
                seg.unlink()
                unlinked += 1
            except (FileNotFoundError, OSError):
                pass
        self._segments = []
        _SHM["unlinked"] += unlinked
        if self._sidecar is not None:
            try:
                self._sidecar.unlink()
            except OSError:
                pass
        obs_instant("shm.closed", cat="shm", segments=unlinked)

    def __enter__(self) -> "ArtifactPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- construction -------------------------------------------------------
    @classmethod
    def publish(cls, specs: Iterable[object],
                min_shared: int = MIN_SHARED_RUNS
                ) -> Optional["ArtifactPlane"]:
        """Publish the artifacts that ``specs`` share.

        Counts how many runs would consult each compile/trace memo key;
        keys reaching ``min_shared`` are computed once (through the
        memo, warming the parent's cache) and packed into segments.
        Returns ``None`` when nothing crosses the threshold -- a grid
        with no redundancy has nothing worth a segment.
        """
        reap_stale()
        compile_counts: Dict[str, object] = {}
        trace_counts: Dict[str, object] = {}
        compile_n: Dict[str, int] = {}
        trace_n: Dict[str, int] = {}
        for spec in specs:
            ckey = "compile:" + memo.compile_key(spec)
            tkey = "trace:" + memo.trace_key(spec)
            compile_counts.setdefault(ckey, spec)
            trace_counts.setdefault(tkey, spec)
            compile_n[ckey] = compile_n.get(ckey, 0) + 1
            trace_n[tkey] = trace_n.get(tkey, 0) + 1
        plan: List[Tuple[str, str, object]] = []
        for key, spec in compile_counts.items():
            if compile_n[key] >= min_shared:
                plan.append((key, "compile", spec))
        for key, spec in trace_counts.items():
            if trace_n[key] >= min_shared:
                plan.append((key, "trace", spec))
        if not plan:
            return None

        token = os.urandom(4).hex()
        segments: List[shared_memory.SharedMemory] = []
        entries: List[EntryRef] = []
        published_bytes = 0
        with obs_span("shm.publish", cat="shm", entries=len(plan)):
            for seq, (key, kind, spec) in enumerate(sorted(plan)):
                try:
                    if kind == "compile":
                        value = memo.compiled(spec)
                        blob = pickle.dumps(
                            value, protocol=pickle.HIGHEST_PROTOCOL)
                        data, entry, _ = _pack_entry(key, kind, blob, ())
                    else:
                        _, layouts, _ = memo.compiled(spec)
                        space, bases, traces = memo.placed_traces(
                            spec, layouts)
                        blob = pickle.dumps(
                            (space, bases,
                             [trace.segments for trace in traces]),
                            protocol=pickle.HIGHEST_PROTOCOL)
                        arrays: List[np.ndarray] = []
                        for trace in traces:
                            arrays.extend((trace.vaddrs, trace.gaps,
                                           trace.writes))
                        data, entry, _ = _pack_entry(key, kind, blob,
                                                     arrays)
                    name = _segment_name(token, seq)
                    seg = shared_memory.SharedMemory(
                        name=name, create=True, size=max(1, len(data)))
                    seg.buf[:len(data)] = data
                except Exception as err:
                    # Publishing is an optimization; a full /dev/shm or
                    # an unpicklable artifact must not kill the sweep.
                    warnings.warn(
                        f"shared artifact plane skipped {key}: {err}",
                        SharedPlaneWarning, stacklevel=2)
                    continue
                segments.append(seg)
                entries.append(EntryRef(
                    key=entry.key, kind=entry.kind, segment=seg.name,
                    size=entry.size, digest=entry.digest,
                    meta_len=entry.meta_len, arrays=entry.arrays))
                published_bytes += entry.size
        if not segments:
            return None
        _SHM["published"] += len(segments)
        _SHM["bytes"] += published_bytes
        sidecar = _sidecar_write(token, [seg.name for seg in segments])
        manifest = Manifest(entries=tuple(entries),
                            owner_pid=os.getpid())
        obs_instant("shm.published", cat="shm", segments=len(segments),
                    bytes=published_bytes)
        return cls(segments, manifest, sidecar)


def _finalize_segments(names: List[str], sidecar: Optional[str]) -> None:
    """weakref.finalize target: last-resort unlink for a plane that was
    never closed (runs at GC or interpreter shutdown)."""
    for name in names:
        _unlink_segment(name)
    if sidecar:
        try:
            os.unlink(sidecar)
        except OSError:
            pass
