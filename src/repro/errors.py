"""Structured error taxonomy for the whole reproduction.

Every failure the toolchain can produce is classified under
:class:`ReproError` so callers (the CLI, the hardened harness, the
layout pass) can react by *kind* instead of string-matching messages:

* :class:`FrontendError` -- lexing/parsing/lowering problems; carries a
  source location (``line``/``column``) when known.
* :class:`SolverError` -- the Data-to-Core integer solver or the indexed
  affine approximation failed; carries the array and reference context.
* :class:`LayoutError` -- layout customization (strip-mining,
  permutation, delta-skip) produced an invalid layout for an array.
* :class:`SimulationError` -- the simulator could not complete a run
  (partitioned NoC, every controller offline, timeout, ...).
* :class:`ValidationError` -- an invariant checker from
  :mod:`repro.validate` found the run internally inconsistent; carries
  the failing checker's name and every recorded violation.

Errors additionally carry a ``transient`` flag: a transient failure
(e.g. a timeout, or an injected fault window that a retry with backoff
may miss) is worth retrying; a deterministic one is not.  The hardened
harness (:mod:`repro.sim.harness`) keys its retry policy off this flag.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class ReproError(Exception):
    """Base class: a message plus structured context.

    Parameters are all optional; whatever is known is attached and
    rendered in the message, so a diagnostic always names the thing
    that failed rather than just the failure.
    """

    kind = "error"

    def __init__(self, message: str, *,
                 array: Optional[str] = None,
                 reference: Optional[str] = None,
                 nest: Optional[str] = None,
                 line: Optional[int] = None,
                 column: Optional[int] = None,
                 transient: bool = False,
                 cause: Optional[BaseException] = None,
                 traceback: Optional[str] = None):
        super().__init__(message)
        self.message = message
        self.array = array
        self.reference = reference
        self.nest = nest
        self.line = line
        self.column = column
        self.transient = transient
        self.cause = cause
        # Captured ``traceback.format_exc()`` text for defensive catches
        # that degrade instead of crashing: the original failure stays
        # inspectable even after the exception object is gone.
        self.traceback = traceback

    def context(self) -> Dict[str, object]:
        """The non-empty structured fields, for logs and checkpoints."""
        out: Dict[str, object] = {"kind": self.kind}
        for key in ("array", "reference", "nest", "line", "column"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.transient:
            out["transient"] = True
        if self.traceback is not None:
            out["traceback"] = self.traceback
        return out

    def __str__(self) -> str:
        parts = []
        if self.line is not None:
            loc = f"line {self.line}"
            if self.column is not None:
                loc += f":{self.column}"
            parts.append(loc)
        if self.array is not None:
            parts.append(f"array {self.array!r}")
        if self.nest is not None:
            parts.append(f"nest {self.nest!r}")
        if self.reference is not None:
            parts.append(f"reference {self.reference}")
        where = ", ".join(parts)
        return f"[{self.kind}] {self.message}" + (f" ({where})" if where
                                                 else "")


class RequestError(ReproError, ValueError):
    """A malformed or unsupported experiment request
    (:mod:`repro.api.requests`): wrong ``schema_version``, an unknown
    field, a value outside its vocabulary, or a workload that cannot be
    resolved.  The caller's input is wrong, not the system -- the wire
    protocol maps it to HTTP 400 where every other :class:`ReproError`
    family maps to 422.

    Also a :class:`ValueError`: the facade historically raised
    ``ValueError`` for bad keyword values, and callers that catch it
    keep working unchanged.
    """

    kind = "request"


class FrontendError(ReproError):
    """Lexer/parser/lowering failure, located in the kernel source."""

    kind = "frontend"


class SolverError(ReproError):
    """Data-to-Core solving or affine approximation failed."""

    kind = "solver"


class LayoutError(ReproError):
    """Layout customization produced an unusable layout."""

    kind = "layout"


class SimulationError(ReproError):
    """The simulator could not complete the run."""

    kind = "simulation"


class StoreError(ReproError):
    """The persistent result store (:mod:`repro.store`) hit an
    operational problem -- an unusable root, a foreign format marker, a
    wedged advisory lock.  Data corruption is deliberately *not* raised
    as an error: corrupted records are quarantined and read as misses.
    Lock timeouts are flagged transient; the degradation ladder reacts
    by downgrading to the in-memory backend either way.
    """

    kind = "store"


class WorkerLostError(SimulationError):
    """A sweep worker process died (or hung) and the supervisor's
    retry budget for its grid points is exhausted.

    Raised by :func:`repro.sim.executor.execute_points` only after the
    lost points have been re-enqueued ``retry_budget`` times -- the
    loud failure at the end of the quiet recovery path.  Not transient:
    the harness retrying the same budget-exhausted points again would
    just burn another budget.
    """


class ValidationError(ReproError):
    """An invariant checker rejected a run as internally inconsistent.

    Raised by :func:`repro.validate.validate_run` (via strict/metrics
    validation in :func:`repro.sim.run.run_simulation`).  ``checker``
    names the first failing checker; ``violations`` carries every
    recorded violation message, so a single raise reports the whole
    audit.  Deliberately *not* transient: the same inputs would fail
    the same invariant again, so the hardened harness must not retry.
    """

    kind = "validation"

    def __init__(self, message: str, *,
                 checker: Optional[str] = None,
                 violations: Optional[Sequence[str]] = None,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.checker = checker
        self.violations: List[str] = list(violations or [])

    def context(self) -> Dict[str, object]:
        out = super().context()
        if self.checker is not None:
            out["checker"] = self.checker
        if self.violations:
            out["violations"] = list(self.violations)
        return out


class DeadlineError(ReproError):
    """The caller's end-to-end deadline (``deadline_ms`` on the
    request envelope) expired before or while the job ran.

    This is neither the caller's request being malformed (400) nor the
    system failing (422/500): the work was simply not worth finishing
    any more.  The wire protocol maps it to HTTP 504 and the job
    registry records the job in the structured ``expired`` state.  Not
    transient -- retrying the same expired budget would expire again;
    the caller must resubmit with a fresh deadline.
    """

    kind = "deadline"


class SimulationTimeout(SimulationError):
    """A run exceeded the harness's per-run timeout.

    Timeouts are flagged transient: on a loaded machine a retry often
    succeeds, and the harness's exponential backoff gives the machine
    room to drain.
    """

    def __init__(self, message: str, **kwargs):
        kwargs.setdefault("transient", True)
        super().__init__(message, **kwargs)


# ---------------------------------------------------------------------------
# The one failure-mapping table: CLI exit codes and HTTP statuses.
#
# ``repro-cli`` and the experiment service (:mod:`repro.serve`) must
# agree on what each error family means, so a shell script checking
# ``$?`` and an HTTP client checking the status code classify the same
# failure the same way.  Exit codes start above 2 (1 is the generic
# SystemExit code, 2 is argparse usage) and stay stable: append new
# families, never renumber.

#: CLI exit code per error family (``ReproError.kind``).
EXIT_CODES: Dict[str, int] = {
    "error": 10,        # generic ReproError
    "request": 3,       # malformed/unsupported request (HTTP 400)
    "frontend": 4,      # kernel would not compile
    "solver": 5,        # Data-to-Core / affine approximation failed
    "layout": 6,        # layout customization produced garbage
    "simulation": 7,    # the simulator could not complete
    "validation": 8,    # an invariant checker rejected the run
    "store": 9,         # result-store operational failure
    "deadline": 11,     # the request's deadline_ms expired (HTTP 504)
}

#: HTTP status per error family.  The caller's input is wrong -> 400;
#: the system could not honour a well-formed request -> 422.
HTTP_STATUSES: Dict[str, int] = {
    "error": 422,
    "request": 400,
    "frontend": 422,
    "solver": 422,
    "layout": 422,
    "simulation": 422,
    "validation": 422,
    "store": 422,
    "deadline": 504,
}


def exit_code(err: BaseException) -> int:
    """The CLI exit code for ``err`` (generic 10 for unknown kinds,
    1 for non-:class:`ReproError` exceptions)."""
    if not isinstance(err, ReproError):
        return 1
    return EXIT_CODES.get(err.kind, EXIT_CODES["error"])


def http_status(err: BaseException) -> int:
    """The HTTP status the wire protocol maps ``err`` to (500 for
    non-:class:`ReproError` exceptions -- an internal bug, never the
    caller's fault)."""
    if not isinstance(err, ReproError):
        return 500
    return HTTP_STATUSES.get(err.kind, HTTP_STATUSES["error"])
