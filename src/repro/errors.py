"""Structured error taxonomy for the whole reproduction.

Every failure the toolchain can produce is classified under
:class:`ReproError` so callers (the CLI, the hardened harness, the
layout pass) can react by *kind* instead of string-matching messages:

* :class:`FrontendError` -- lexing/parsing/lowering problems; carries a
  source location (``line``/``column``) when known.
* :class:`SolverError` -- the Data-to-Core integer solver or the indexed
  affine approximation failed; carries the array and reference context.
* :class:`LayoutError` -- layout customization (strip-mining,
  permutation, delta-skip) produced an invalid layout for an array.
* :class:`SimulationError` -- the simulator could not complete a run
  (partitioned NoC, every controller offline, timeout, ...).
* :class:`ValidationError` -- an invariant checker from
  :mod:`repro.validate` found the run internally inconsistent; carries
  the failing checker's name and every recorded violation.

Errors additionally carry a ``transient`` flag: a transient failure
(e.g. a timeout, or an injected fault window that a retry with backoff
may miss) is worth retrying; a deterministic one is not.  The hardened
harness (:mod:`repro.sim.harness`) keys its retry policy off this flag.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class ReproError(Exception):
    """Base class: a message plus structured context.

    Parameters are all optional; whatever is known is attached and
    rendered in the message, so a diagnostic always names the thing
    that failed rather than just the failure.
    """

    kind = "error"

    def __init__(self, message: str, *,
                 array: Optional[str] = None,
                 reference: Optional[str] = None,
                 nest: Optional[str] = None,
                 line: Optional[int] = None,
                 column: Optional[int] = None,
                 transient: bool = False,
                 cause: Optional[BaseException] = None,
                 traceback: Optional[str] = None):
        super().__init__(message)
        self.message = message
        self.array = array
        self.reference = reference
        self.nest = nest
        self.line = line
        self.column = column
        self.transient = transient
        self.cause = cause
        # Captured ``traceback.format_exc()`` text for defensive catches
        # that degrade instead of crashing: the original failure stays
        # inspectable even after the exception object is gone.
        self.traceback = traceback

    def context(self) -> Dict[str, object]:
        """The non-empty structured fields, for logs and checkpoints."""
        out: Dict[str, object] = {"kind": self.kind}
        for key in ("array", "reference", "nest", "line", "column"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.transient:
            out["transient"] = True
        if self.traceback is not None:
            out["traceback"] = self.traceback
        return out

    def __str__(self) -> str:
        parts = []
        if self.line is not None:
            loc = f"line {self.line}"
            if self.column is not None:
                loc += f":{self.column}"
            parts.append(loc)
        if self.array is not None:
            parts.append(f"array {self.array!r}")
        if self.nest is not None:
            parts.append(f"nest {self.nest!r}")
        if self.reference is not None:
            parts.append(f"reference {self.reference}")
        where = ", ".join(parts)
        return f"[{self.kind}] {self.message}" + (f" ({where})" if where
                                                 else "")


class FrontendError(ReproError):
    """Lexer/parser/lowering failure, located in the kernel source."""

    kind = "frontend"


class SolverError(ReproError):
    """Data-to-Core solving or affine approximation failed."""

    kind = "solver"


class LayoutError(ReproError):
    """Layout customization produced an unusable layout."""

    kind = "layout"


class SimulationError(ReproError):
    """The simulator could not complete the run."""

    kind = "simulation"


class StoreError(ReproError):
    """The persistent result store (:mod:`repro.store`) hit an
    operational problem -- an unusable root, a foreign format marker, a
    wedged advisory lock.  Data corruption is deliberately *not* raised
    as an error: corrupted records are quarantined and read as misses.
    Lock timeouts are flagged transient; the degradation ladder reacts
    by downgrading to the in-memory backend either way.
    """

    kind = "store"


class WorkerLostError(SimulationError):
    """A sweep worker process died (or hung) and the supervisor's
    retry budget for its grid points is exhausted.

    Raised by :func:`repro.sim.executor.execute_points` only after the
    lost points have been re-enqueued ``retry_budget`` times -- the
    loud failure at the end of the quiet recovery path.  Not transient:
    the harness retrying the same budget-exhausted points again would
    just burn another budget.
    """


class ValidationError(ReproError):
    """An invariant checker rejected a run as internally inconsistent.

    Raised by :func:`repro.validate.validate_run` (via strict/metrics
    validation in :func:`repro.sim.run.run_simulation`).  ``checker``
    names the first failing checker; ``violations`` carries every
    recorded violation message, so a single raise reports the whole
    audit.  Deliberately *not* transient: the same inputs would fail
    the same invariant again, so the hardened harness must not retry.
    """

    kind = "validation"

    def __init__(self, message: str, *,
                 checker: Optional[str] = None,
                 violations: Optional[Sequence[str]] = None,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.checker = checker
        self.violations: List[str] = list(violations or [])

    def context(self) -> Dict[str, object]:
        out = super().context()
        if self.checker is not None:
            out["checker"] = self.checker
        if self.violations:
            out["violations"] = list(self.violations)
        return out


class SimulationTimeout(SimulationError):
    """A run exceeded the harness's per-run timeout.

    Timeouts are flagged transient: on a loaded machine a retry often
    succeeds, and the harness's exponential backoff gives the machine
    room to drain.
    """

    def __init__(self, message: str, **kwargs):
        kwargs.setdefault("transient", True)
        super().__init__(message, **kwargs)
