"""Set-associative caches and the private-L2 directory."""

from repro.cache.cache import SetAssociativeCache
from repro.cache.directory import Directory

__all__ = ["Directory", "SetAssociativeCache"]
