"""The centralized L2 tag directory of the private-L2 protocol.

With per-core private L2s (Figure 2a), an L2 miss consults a directory
cached at the memory controller that owns the requested address.  The
directory knows which private L2s hold each line; it either forwards the
request to a sharer (an *on-chip* access: cache-to-cache transfer) or
issues the off-chip request.  We track sharers exactly; coherence
invalidation traffic for writes is not modeled (the evaluated kernels
are read-dominated data-parallel loops, and both the baseline and the
optimized runs omit it identically).
"""

from __future__ import annotations

from typing import Dict, Optional, Set


class Directory:
    """Exact sharer tracking: line address -> set of L2 node ids."""

    def __init__(self) -> None:
        self._sharers: Dict[int, Set[int]] = {}

    def find_sharer(self, line_addr: int, requester: int) -> Optional[int]:
        """Some node other than the requester holding the line, if any.

        Returns the lowest node id (deterministic); the simulator then
        charges the forward + cache-to-cache transfer over the NoC.
        """
        sharers = self._sharers.get(line_addr)
        if not sharers:
            return None
        others = sharers - {requester}
        if not others:
            return None
        return min(others)

    def add_sharer(self, line_addr: int, node: int) -> None:
        self._sharers.setdefault(line_addr, set()).add(node)

    def remove_sharer(self, line_addr: int, node: int) -> None:
        sharers = self._sharers.get(line_addr)
        if sharers is not None:
            sharers.discard(node)
            if not sharers:
                del self._sharers[line_addr]

    def sharers_of(self, line_addr: int) -> Set[int]:
        return set(self._sharers.get(line_addr, ()))

    @property
    def tracked_lines(self) -> int:
        return len(self._sharers)
