"""Set-associative caches with true-LRU replacement.

Plain, fast, dictionary-free: each set is a small list of line addresses
in MRU-to-LRU order (associativities here are 2-16, so linear scans beat
fancier structures in CPython).  Addresses are *line* addresses -- the
caller divides by the line size once, in bulk.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: Fibonacci-hash multiplier (2^32 / golden ratio) shared by the scalar
#: :meth:`SetAssociativeCache.set_index` and the bulk
#: :func:`set_indices` helper -- one definition so the two can never
#: drift apart.
HASH_MULT = 0x9E3779B1

#: Above this line address the vectorized int64 multiply in
#: :func:`set_indices` could overflow; exact Python big-int arithmetic
#: takes over.
_MAX_HASHABLE_LINE = (2 ** 62) // HASH_MULT


def set_indices(lines: Sequence[int], num_sets: int,
                arr=None) -> List[int]:
    """Hashed set index for a whole stream of line addresses at once.

    Bit-identical to calling :meth:`SetAssociativeCache.set_index` per
    address: the NumPy int64 path computes the same
    ``((line * HASH_MULT) >> 13) % num_sets`` and falls back to exact
    Python arithmetic whenever the multiply could overflow int64.
    ``arr`` optionally supplies the addresses as a ready int64 array to
    skip the conversion.
    """
    import numpy as np
    if arr is None:
        arr = np.asarray(lines, dtype=np.int64)
    if arr.size and (int(arr.max()) > _MAX_HASHABLE_LINE
                     or int(arr.min()) < 0):
        return [((line * HASH_MULT) >> 13) % num_sets for line in lines]
    return (((arr * HASH_MULT) >> 13) % num_sets).tolist()


class SetAssociativeCache:
    """A single cache: ``size`` bytes, ``line`` bytes per block,
    ``ways``-way set associative, LRU replacement.

    The set index is hashed (a multiplicative Fibonacci hash over the
    line address) the way real last-level caches use wide XOR trees /
    "complex addressing": power-of-two strided line sequences -- which
    both the interleave-stride clustered layouts and the bank-stride
    shared layouts produce -- spread across all sets instead of
    thrashing a few.
    """

    __slots__ = ("num_sets", "ways", "line", "sets", "hits", "misses")

    _HASH_MULT = HASH_MULT

    def __init__(self, size: int, line: int, ways: int):
        if size < line * ways:
            raise ValueError(
                f"cache of {size} B cannot hold {ways} ways of {line} B")
        if size % (line * ways):
            raise ValueError("size must be a multiple of line * ways")
        self.num_sets = size // (line * ways)
        self.ways = ways
        self.line = line
        self.sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def set_index(self, line_addr: int) -> int:
        """Hashed set index (see class docstring)."""
        return ((line_addr * self._HASH_MULT) >> 13) % self.num_sets

    def access(self, line_addr: int) -> bool:
        """Look up a line; on hit, promote to MRU.  Does not allocate."""
        way_list = self.sets[self.set_index(line_addr)]
        if line_addr in way_list:
            if way_list[0] != line_addr:
                way_list.remove(line_addr)
                way_list.insert(0, line_addr)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line_addr: int) -> Optional[int]:
        """Insert a line as MRU; returns the evicted line address, if any.

        Filling a line already present just promotes it.
        """
        way_list = self.sets[self.set_index(line_addr)]
        if line_addr in way_list:
            if way_list[0] != line_addr:
                way_list.remove(line_addr)
                way_list.insert(0, line_addr)
            return None
        way_list.insert(0, line_addr)
        if len(way_list) > self.ways:
            return way_list.pop()
        return None

    def contains(self, line_addr: int) -> bool:
        """Presence test without touching LRU state."""
        return line_addr in self.sets[self.set_index(line_addr)]

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line; returns whether it was present."""
        way_list = self.sets[self.set_index(line_addr)]
        if line_addr in way_list:
            way_list.remove(line_addr)
            return True
        return False

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self.sets)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
