"""Fault injection & graceful degradation for the simulated fabric.

The paper's argument rests on *where* requests are serviced; this
package lets the reproduction answer the follow-up question -- does the
layout optimization still win when the machine is degraded?  A seeded,
serializable :class:`FaultPlan` declares link failures, bandwidth
degradation windows, controller offline/slowdown windows, dead DRAM
banks and page-pool pressure; the runtime models translate it into the
queries the NoC, controllers and OS model ask during simulation.
"""

from repro.faults.models import ControllerFaultModel, NetworkFaultModel
from repro.faults.plan import (BankFault, FaultPlan, LinkDegradation,
                               LinkFault, MCFault, PagePressure)

__all__ = [
    "BankFault", "ControllerFaultModel", "FaultPlan", "LinkDegradation",
    "LinkFault", "MCFault", "NetworkFaultModel", "PagePressure",
]
