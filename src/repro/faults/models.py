"""Runtime fault models: the simulator-facing view of a FaultPlan.

Two classes translate the declarative :class:`~repro.faults.plan.FaultPlan`
into the queries the hot simulation loop asks:

* :class:`NetworkFaultModel` -- which links are dead *now*, what detour
  route (turn-model, deadlock-free) avoids them, and how degraded a
  link's bandwidth is.  Routes are computed per *epoch* (the intervals
  between fault-window boundaries) with a west-first turn-model BFS, so
  detours never introduce a routing cycle; when west-first adaptivity
  cannot reach the destination (rare corner failures) an unrestricted
  shortest path is used and counted, and a genuinely partitioned mesh
  raises :class:`~repro.errors.SimulationError`.

* :class:`ControllerFaultModel` -- whether a controller is offline or
  slowed at a given time, when it comes back, and where a dead bank's
  requests remap.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.arch.topology import Mesh
from repro.errors import SimulationError
from repro.faults.plan import FaultPlan

INF = math.inf


class NetworkFaultModel:
    """Dead links, detour routes and bandwidth degradation over time."""

    def __init__(self, mesh: Mesh, plan: FaultPlan):
        self.mesh = mesh
        # Directed-link windows; a LinkFault kills both directions.
        self._dead: Dict[int, List[Tuple[float, float]]] = {}
        boundaries = {0.0}
        for fault in plan.link_faults:
            for src, dst in ((fault.a, fault.b), (fault.b, fault.a)):
                link = mesh.link_id(src, dst)
                self._dead.setdefault(link, []).append(
                    (fault.start, fault.end))
            boundaries.add(fault.start)
            if fault.end != INF:
                boundaries.add(fault.end)
        self._epochs: List[float] = sorted(boundaries)
        self._degraded: Dict[int, List[Tuple[float, float, float]]] = {}
        for deg in plan.link_degradations:
            for src, dst in ((deg.a, deg.b), (deg.b, deg.a)):
                link = mesh.link_id(src, dst)
                self._degraded.setdefault(link, []).append(
                    (deg.start, deg.end, deg.factor))
        self._routes: Dict[Tuple[int, int, int], Tuple[List[int], int]] = {}
        self._dead_at_epoch: Dict[int, FrozenSet[int]] = {}

    # -- time partitioning -------------------------------------------------
    def epoch_of(self, t: float) -> int:
        return max(0, bisect_right(self._epochs, t) - 1)

    def dead_links(self, t: float) -> FrozenSet[int]:
        epoch = self.epoch_of(t)
        cached = self._dead_at_epoch.get(epoch)
        if cached is None:
            at = self._epochs[epoch]
            cached = frozenset(
                link for link, windows in self._dead.items()
                if any(start <= at < end for start, end in windows))
            self._dead_at_epoch[epoch] = cached
        return cached

    def degradation(self, link: int, t: float) -> float:
        """Serialization-time multiplier for a link at time ``t``."""
        windows = self._degraded.get(link)
        if not windows:
            return 1.0
        factor = 1.0
        for start, end, f in windows:
            if start <= t < end:
                factor = max(factor, f)
        return factor

    @property
    def degrades(self) -> bool:
        return bool(self._degraded)

    # -- fault-aware routing ----------------------------------------------
    def route(self, src: int, dst: int, t: float) -> Tuple[List[int], int]:
        """Links of a deadlock-free route avoiding dead links.

        Returns ``(links, extra_hops)`` where ``extra_hops`` is the
        detour cost beyond the Manhattan distance (0 for an undisturbed
        XY route).  Raises :class:`SimulationError` when the surviving
        topology disconnects ``src`` from ``dst``.
        """
        key = (self.epoch_of(t), src, dst)
        cached = self._routes.get(key)
        if cached is None:
            cached = self._compute_route(src, dst, self.dead_links(t))
            self._routes[key] = cached
        return cached

    def _compute_route(self, src: int, dst: int,
                       dead: FrozenSet[int]) -> Tuple[List[int], int]:
        mesh = self.mesh
        if src == dst:
            return [], 0
        xy = mesh.route(src, dst)
        if not dead or not any(link in dead for link in xy):
            return xy, 0
        path = self._turn_model_path(src, dst, dead, west_first=True)
        if path is None:
            # West-first adaptivity exhausted: fall back to any shortest
            # surviving path.  With two virtual networks and the low
            # traffic of a mostly-dead corner this is deadlock-safe in
            # practice; a partitioned mesh is reported, not guessed at.
            path = self._turn_model_path(src, dst, dead, west_first=False)
        if path is None:
            raise SimulationError(
                f"NoC partitioned: no surviving route from node {src} "
                f"to node {dst}", transient=False)
        return path, len(path) - mesh.distance(src, dst)

    def _turn_model_path(self, src: int, dst: int, dead: FrozenSet[int],
                         west_first: bool) -> Optional[List[int]]:
        """Shortest surviving path under the west-first turn model.

        State is ``(node, moved_non_west)``; once a packet has moved
        east/north/south it may no longer turn west -- the classic
        west-first restriction that keeps adaptive routes deadlock-free
        on a mesh.  ``west_first=False`` lifts the restriction (plain
        BFS), used only as a last resort before declaring a partition.
        """
        mesh = self.mesh
        start = (src, False)
        parents: Dict[Tuple[int, bool], Tuple[Tuple[int, bool], int]] = {
            start: (start, -1)}
        queue = deque([start])
        goal: Optional[Tuple[int, bool]] = None
        while queue:
            state = queue.popleft()
            node, moved = state
            if node == dst:
                goal = state
                break
            x, y = mesh.coords(node)
            # Deterministic neighbor order: W, E, N, S.
            steps = []
            if x > 0:
                steps.append((mesh.node_at(x - 1, y), True))
            if x + 1 < mesh.width:
                steps.append((mesh.node_at(x + 1, y), False))
            if y > 0:
                steps.append((mesh.node_at(x, y - 1), False))
            if y + 1 < mesh.height:
                steps.append((mesh.node_at(x, y + 1), False))
            for neighbor, is_west in steps:
                if west_first and is_west and moved:
                    continue
                link = mesh.link_id(node, neighbor)
                if link in dead:
                    continue
                nxt = (neighbor,
                       moved or (west_first and not is_west))
                if nxt not in parents:
                    parents[nxt] = (state, link)
                    queue.append(nxt)
        if goal is None:
            return None
        links: List[int] = []
        state = goal
        while state != start:
            state, link = parents[state]
            links.append(link)
        links.reverse()
        return links


class ControllerFaultModel:
    """Offline/slowdown windows and dead banks per controller."""

    def __init__(self, plan: FaultPlan, num_mcs: int, banks_per_mc: int):
        self.num_mcs = num_mcs
        self._offline: List[List[Tuple[float, float]]] = [
            [] for _ in range(num_mcs)]
        self._slow: List[List[Tuple[float, float, float]]] = [
            [] for _ in range(num_mcs)]
        for fault in plan.mc_faults:
            if not 0 <= fault.mc < num_mcs:
                raise ValueError(f"MC {fault.mc} out of range")
            if fault.kind == "offline":
                self._offline[fault.mc].append((fault.start, fault.end))
            else:
                self._slow[fault.mc].append(
                    (fault.start, fault.end, fault.factor))
        for windows in self._offline:
            windows.sort()
        dead_banks: List[set] = [set() for _ in range(num_mcs)]
        for fault in plan.bank_faults:
            if not 0 <= fault.mc < num_mcs:
                raise ValueError(f"MC {fault.mc} out of range")
            if not 0 <= fault.bank < banks_per_mc:
                raise ValueError(f"bank {fault.bank} out of range")
            dead_banks[fault.mc].add(fault.bank)
        self._remap: List[Dict[int, int]] = []
        for mc, dead in enumerate(dead_banks):
            live = [b for b in range(banks_per_mc) if b not in dead]
            if not live:
                raise ValueError(f"every bank of MC {mc} is dead")
            self._remap.append({
                bank: min(live, key=lambda b: (abs(b - bank), b))
                for bank in dead})

    def offline(self, mc: int, t: float) -> bool:
        return any(start <= t < end for start, end in self._offline[mc])

    def next_online(self, mc: int, t: float) -> float:
        """Earliest time >= ``t`` the controller is back up (``t`` when
        already up, ``inf`` when it never returns)."""
        now = t
        for start, end in self._offline[mc]:
            if start <= now < end:
                now = end
        return now

    def slowdown(self, mc: int, t: float) -> float:
        factor = 1.0
        for start, end, f in self._slow[mc]:
            if start <= t < end:
                factor = max(factor, f)
        return factor

    def remap_bank(self, mc: int, bank: int) -> int:
        return self._remap[mc].get(bank, bank)

    def has_bank_faults(self, mc: int) -> bool:
        return bool(self._remap[mc])
