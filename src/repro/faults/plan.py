"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a seeded, serializable description of every
fault injected into one simulated execution:

* :class:`LinkFault` -- a mesh link (both directions) is dead during a
  time window; traffic detours around it (turn-model routing in
  :mod:`repro.faults.models`).
* :class:`LinkDegradation` -- a link's effective bandwidth drops by a
  factor during a window (serialization time is multiplied).
* :class:`MCFault` -- a memory controller is offline (requests fail
  over to the nearest live controller) or slowed by a factor during a
  window.
* :class:`BankFault` -- one DRAM bank of one controller is dead for the
  whole run; its requests are remapped to the nearest live bank.
* :class:`PagePressure` -- a fraction of one controller's physical page
  pool is unavailable, forcing the MC-aware allocator onto its
  alternate-controller fallback path (the paper's "never add page
  faults" guarantee under pressure).

Plans round-trip through JSON so a failing run can be reproduced from
its checkpoint alone, and :meth:`FaultPlan.random` draws a plan from a
seeded RNG so fault sweeps are bit-reproducible.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

INF = math.inf


def _window(start: float, end: Optional[float]) -> Tuple[float, float]:
    end = INF if end is None else float(end)
    start = float(start)
    if end <= start:
        raise ValueError(f"empty fault window [{start}, {end})")
    return start, end


@dataclass(frozen=True)
class LinkFault:
    """The undirected link between adjacent nodes ``a`` and ``b`` is
    dead while ``start <= t < end``."""

    a: int
    b: int
    start: float = 0.0
    end: float = INF

    def __post_init__(self) -> None:
        _window(self.start, self.end)


@dataclass(frozen=True)
class LinkDegradation:
    """The link between ``a`` and ``b`` serializes ``factor``x slower
    while ``start <= t < end`` (a congested or half-failed channel)."""

    a: int
    b: int
    factor: float = 2.0
    start: float = 0.0
    end: float = INF

    def __post_init__(self) -> None:
        _window(self.start, self.end)
        if self.factor < 1.0:
            raise ValueError("degradation factor must be >= 1")


@dataclass(frozen=True)
class MCFault:
    """Controller ``mc`` is ``offline`` or ``slow`` (by ``factor``)
    while ``start <= t < end``."""

    mc: int
    kind: str = "offline"          # "offline" | "slow"
    factor: float = 2.0            # service-latency multiplier for "slow"
    start: float = 0.0
    end: float = INF

    def __post_init__(self) -> None:
        _window(self.start, self.end)
        if self.kind not in ("offline", "slow"):
            raise ValueError(f"unknown MC fault kind {self.kind!r}")
        if self.kind == "slow" and self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")


@dataclass(frozen=True)
class BankFault:
    """Bank ``bank`` of controller ``mc`` is dead for the whole run."""

    mc: int
    bank: int


@dataclass(frozen=True)
class PagePressure:
    """``fraction`` of controller ``mc``'s physical page pool is gone."""

    mc: int
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("page-pressure fraction must be in [0, 1]")


_KINDS = {
    "link_faults": LinkFault,
    "link_degradations": LinkDegradation,
    "mc_faults": MCFault,
    "bank_faults": BankFault,
    "page_pressure": PagePressure,
}


@dataclass(frozen=True)
class FaultPlan:
    """Everything injected into one run, plus the seed that drew it."""

    seed: int = 0
    name: str = ""
    link_faults: Tuple[LinkFault, ...] = ()
    link_degradations: Tuple[LinkDegradation, ...] = ()
    mc_faults: Tuple[MCFault, ...] = ()
    bank_faults: Tuple[BankFault, ...] = ()
    page_pressure: Tuple[PagePressure, ...] = ()

    def __post_init__(self) -> None:
        # Normalize lists to tuples so plans are hashable/immutable.
        for name in _KINDS:
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def empty(self) -> bool:
        return not any(getattr(self, name) for name in _KINDS)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        def encode(item):
            out = asdict(item)
            for key, value in out.items():
                if value == INF:
                    out[key] = None      # JSON has no Infinity
            return out

        payload: Dict[str, object] = {"seed": self.seed, "name": self.name}
        for name in _KINDS:
            payload[name] = [encode(item) for item in getattr(self, name)]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        kwargs: Dict[str, object] = {
            "seed": int(payload.get("seed", 0)),
            "name": str(payload.get("name", "")),
        }
        for name, kind in _KINDS.items():
            items = []
            for raw in payload.get(name, []):
                raw = dict(raw)
                for key, value in raw.items():
                    if value is None and key in ("start", "end"):
                        raw[key] = INF if key == "end" else 0.0
                items.append(kind(**raw))
            kwargs[name] = tuple(items)
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- seeded generation -------------------------------------------------
    @classmethod
    def random(cls, mesh_width: int, mesh_height: int, num_mcs: int,
               banks_per_mc: int = 16, *, seed: int = 0,
               link_failure_rate: float = 0.0,
               link_degradation_rate: float = 0.0,
               degradation_factor: float = 2.0,
               mc_offline_rate: float = 0.0,
               mc_slowdown_rate: float = 0.0,
               slowdown_factor: float = 2.0,
               bank_fault_rate: float = 0.0,
               page_pressure: float = 0.0,
               start: float = 0.0, end: float = INF,
               name: str = "") -> "FaultPlan":
        """Draw a plan from a seeded RNG.

        Rates are fractions of the respective resource populations
        (undirected links, controllers, banks) that fail; counts are
        rounded to nearest with at least one faulty instance whenever
        the rate is nonzero.  Offline controllers are capped at
        ``num_mcs - 1`` so at least one controller stays alive.
        """
        rng = random.Random(seed)
        pairs = []
        for y in range(mesh_height):
            for x in range(mesh_width):
                node = y * mesh_width + x
                if x + 1 < mesh_width:
                    pairs.append((node, node + 1))
                if y + 1 < mesh_height:
                    pairs.append((node, node + mesh_width))

        def count(rate: float, population: int, cap: Optional[int] = None
                  ) -> int:
            if rate <= 0.0 or population == 0:
                return 0
            n = max(1, int(round(rate * population)))
            return min(n, population if cap is None else cap)

        dead = rng.sample(pairs, count(link_failure_rate, len(pairs)))
        link_faults = tuple(LinkFault(a, b, start, end) for a, b in dead)
        remaining = [p for p in pairs if p not in set(dead)]
        slow = rng.sample(remaining,
                          count(link_degradation_rate, len(remaining)))
        degradations = tuple(
            LinkDegradation(a, b, degradation_factor, start, end)
            for a, b in slow)

        mcs = list(range(num_mcs))
        off = rng.sample(mcs, count(mc_offline_rate, num_mcs,
                                    cap=num_mcs - 1))
        mc_faults = [MCFault(mc, "offline", start=start, end=end)
                     for mc in off]
        live = [mc for mc in mcs if mc not in set(off)]
        for mc in rng.sample(live, count(mc_slowdown_rate, len(live))):
            mc_faults.append(MCFault(mc, "slow", slowdown_factor,
                                     start, end))

        banks = [(mc, b) for mc in mcs for b in range(banks_per_mc)]
        bad_banks = rng.sample(
            banks, count(bank_fault_rate, len(banks),
                         cap=num_mcs * (banks_per_mc - 1)))
        bank_faults = tuple(BankFault(mc, b) for mc, b in bad_banks)

        pressure = tuple(PagePressure(mc, page_pressure)
                         for mc in mcs) if page_pressure > 0.0 else ()

        return cls(seed=seed, name=name, link_faults=link_faults,
                   link_degradations=degradations,
                   mc_faults=tuple(mc_faults), bank_faults=bank_faults,
                   page_pressure=pressure)
