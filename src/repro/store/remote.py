"""A network-shared result store: the stdlib HTTP client side.

:class:`RemoteStore` implements the :class:`~repro.store.base
.ResultStore` contract against the experiment server's
``GET/PUT /v1/store/<kind>/<key>`` endpoints (:mod:`repro.serve`), so a
fleet of workers can share one store over the wire exactly as they
share a directory today -- ``open_store("http://host:port")`` slots it
into the same :class:`~repro.store.base.FallbackStore` degradation
ladder, and the CSV-identity contract holds unchanged: a flapping or
dead store server costs durability, never correctness.

The network is allowed to misbehave; three guards keep one bad server
from stalling a sweep:

* **Per-operation timeouts** -- every socket operation is bounded
  (``timeout`` seconds, default :data:`DEFAULT_TIMEOUT`).
* **Bounded jittered-exponential retry** -- transient failures
  (connection errors, timeouts, truncated responses, 5xx, 408) are
  retried up to ``retries`` times with the same jittered backoff shape
  the harness and the pool supervisor use
  (``backoff_base * backoff_factor**attempt``, jitter on top).
* **A circuit breaker** -- after ``breaker_threshold`` *consecutive*
  failures the breaker opens and every operation fails fast (no
  socket) until ``cooldown`` seconds pass; then one half-open probe is
  allowed through, and its outcome re-closes or re-opens the breaker.

A failure that survives the retry budget (or hits an open breaker)
raises :class:`~repro.errors.StoreError`; the
:class:`~repro.store.base.FallbackStore` wrapper catches it, emits one
:class:`~repro.store.base.StoreDegradedWarning`, and degrades the
process to the in-memory backend.  Data problems stay data problems: a
response that fails its SHA-256 check or does not parse is counted
``corrupt`` and read as a miss, never raised.

Client-side behaviour is observable through ``remote_stats``
(:class:`RemoteStats`: retries, timeouts, fail-fasts, breaker
transitions), exported process-wide as ``store.remote.*`` by
:func:`repro.obs.export.process_registry` -- i.e. on any served
``/metrics`` endpoint.

Tuning travels in the URL query so the CLI and pool workers need no
extra plumbing::

    http://host:8080?timeout=2&retries=1&breaker_threshold=3
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import StoreError
from repro.obs.tracer import obs_instant
from repro.store.base import RESULT_KIND, ResultStore, StoreStats

__all__ = ["CircuitBreaker", "DEFAULT_TIMEOUT", "RemoteStats",
           "RemoteStore"]

#: Per-operation socket timeout (seconds).
DEFAULT_TIMEOUT = 5.0
#: Retries after the first attempt of one store operation.
DEFAULT_RETRIES = 2
#: Consecutive failures that open the circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 5
#: Seconds the breaker stays open before allowing a half-open probe.
DEFAULT_COOLDOWN = 30.0

#: Breaker states, and their numeric order for the exported gauge
#: (``store.remote.breaker_state``: 0 closed, 1 half-open, 2 open).
CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"
_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class RemoteStats:
    """Thread-safe client-side counters, shaped like
    :class:`~repro.store.base.StoreStats` so the process-wide exporter
    can sum them across instances."""

    FIELDS = ("requests", "retries", "timeouts", "server_errors",
              "fail_fast", "corrupt_responses", "breaker_opened",
              "breaker_half_opened", "breaker_closed")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


class CircuitBreaker:
    """Closed -> open after ``threshold`` consecutive failures; after
    ``cooldown`` seconds one half-open probe is allowed, and its
    outcome re-closes or re-opens the breaker.  Thread-safe; the clock
    is injectable for tests."""

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown: float = DEFAULT_COOLDOWN,
                 clock: Callable[[], float] = time.monotonic,
                 stats: Optional[RemoteStats] = None):
        self.threshold = max(1, int(threshold))
        self.cooldown = cooldown
        self._clock = clock
        self._stats = stats or RemoteStats()
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def state_value(self) -> int:
        """The state as the exported gauge value (0/1/2)."""
        return _STATE_VALUES[self.state]

    def allow(self) -> bool:
        """May a request go out right now?  An open breaker past its
        cooldown transitions to half-open and admits exactly one
        probe; concurrent callers fail fast until it resolves."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return False
                self._state = HALF_OPEN
                self._probing = False
                self._stats.inc("breaker_half_opened")
            # half-open: one probe at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state != CLOSED:
                self._stats.inc("breaker_closed")
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._state == HALF_OPEN or (
                    self._state == CLOSED
                    and self._failures >= self.threshold):
                self._state = OPEN
                self._opened_at = self._clock()
                self._stats.inc("breaker_opened")


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_sha256(payload: dict) -> str:
    """The checksum both sides agree on: SHA-256 over the canonical
    JSON rendering of the payload."""
    return hashlib.sha256(_canonical(payload).encode("utf-8")) \
        .hexdigest()


class RemoteStore(ResultStore):
    """Store client for one ``http://host:port`` experiment server."""

    def __init__(self, host: str, port: int,
                 stats: Optional[StoreStats] = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.25,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown: float = DEFAULT_COOLDOWN,
                 sleep: Callable[[float], None] = time.sleep):
        super().__init__(stats)
        self.host = host
        self.port = int(port)
        self.url = f"http://{host}:{port}"
        self.description = f"remote:{self.url}"
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.sleep = sleep
        self.remote_stats = RemoteStats()
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=cooldown,
                                      stats=self.remote_stats)
        self._last_failure: Optional[str] = None

    #: URL query parameters accepted by :meth:`from_url`.
    URL_OPTIONS = {
        "timeout": float, "retries": int, "backoff_base": float,
        "backoff_factor": float, "backoff_jitter": float,
        "breaker_threshold": int, "cooldown": float,
    }

    @classmethod
    def from_url(cls, url: str, **overrides) -> "RemoteStore":
        """Build a client from ``http://host:port[?option=value...]``.
        Unknown options and unparseable URLs raise
        :class:`~repro.errors.StoreError` (the caller's configuration
        is wrong; there is nothing to degrade to yet)."""
        split = urlsplit(url)
        if split.scheme != "http":
            raise StoreError(f"unsupported store URL scheme "
                             f"{split.scheme!r} in {url!r} (only http)")
        if split.path not in ("", "/"):
            raise StoreError(f"store URL must not carry a path, got "
                             f"{url!r}")
        try:
            host = split.hostname
            port = split.port
        except ValueError as err:
            raise StoreError(f"bad store URL {url!r}: {err}") from err
        if not host or not port:
            raise StoreError(f"store URL {url!r} must name host:port")
        options: Dict[str, object] = {}
        for name, value in parse_qsl(split.query,
                                     keep_blank_values=True):
            caster = cls.URL_OPTIONS.get(name)
            if caster is None:
                raise StoreError(
                    f"unknown store URL option {name!r}; options: "
                    f"{', '.join(sorted(cls.URL_OPTIONS))}")
            try:
                options[name] = caster(value)
            except ValueError as err:
                raise StoreError(f"bad store URL option "
                                 f"{name}={value!r}: {err}") from err
        options.update(overrides)
        return cls(host, port, **options)

    # -- transport -----------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        span = self.backoff_base * (self.backoff_factor ** attempt)
        if self.backoff_jitter <= 0:
            return span
        return span * (1.0 + self.backoff_jitter * random.random())

    def _http(self, method: str, path: str,
              body: Optional[bytes]) -> Tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _op(self, op: str, method: str, path: str,
            body: Optional[bytes] = None) -> Tuple[int, bytes]:
        """One store operation under timeout + retry + breaker.
        Returns ``(status, body)`` for any non-retryable status;
        raises :class:`StoreError` once the budget (or the breaker)
        says stop."""
        self.remote_stats.inc("requests")
        for attempt in range(self.retries + 1):
            if not self.breaker.allow():
                self.remote_stats.inc("fail_fast")
                raise StoreError(
                    f"remote store {self.url} circuit breaker "
                    f"{self.breaker.state}; last failure: "
                    f"{self._last_failure}", transient=True)
            failure: Optional[str] = None
            try:
                status, data = self._http(method, path, body)
            except socket.timeout:
                self.remote_stats.inc("timeouts")
                failure = f"timed out after {self.timeout:g}s"
            except (OSError, http.client.HTTPException) as err:
                failure = f"{type(err).__name__}: {err}"
            else:
                # 5xx and 408 are the server (or the path to it)
                # misbehaving -- retryable; everything else is an
                # answer.
                if status >= 500 or status == 408:
                    self.remote_stats.inc("server_errors")
                    failure = f"HTTP {status}"
                else:
                    self.breaker.record_success()
                    return status, data
            self.breaker.record_failure()
            self._last_failure = failure
            if attempt < self.retries:
                self.remote_stats.inc("retries")
                obs_instant("store.remote.retry", cat="store", op=op,
                            attempt=attempt + 1, error=failure)
                self.sleep(self._backoff(attempt))
        raise StoreError(
            f"remote store {self.url} unavailable after "
            f"{self.retries + 1} attempt(s) ({op} {path}): "
            f"{self._last_failure}; circuit breaker "
            f"{self.breaker.state}", transient=True)

    @staticmethod
    def _path(kind: str, key: str = "") -> str:
        return f"/v1/store/{kind}/{key}" if key else f"/v1/store/{kind}"

    # -- ResultStore contract ------------------------------------------------

    def get(self, key: str, kind: str = RESULT_KIND) -> Optional[dict]:
        self.stats.inc("gets")
        status, data = self._op("get", "GET", self._path(kind, key))
        if status == 404:
            self.stats.inc("misses")
            return None
        if status != 200:
            raise StoreError(f"remote store GET {kind}/{key} answered "
                             f"HTTP {status}")
        payload = self._decode(data)
        if payload is None:  # corruption is a miss, never an error
            self.stats.inc("corrupt")
            self.stats.inc("misses")
            self.remote_stats.inc("corrupt_responses")
            obs_instant("store.remote.corrupt", cat="store", key=key,
                        kind=kind)
            return None
        self.stats.inc("hits")
        return payload

    def _decode(self, data: bytes) -> Optional[dict]:
        try:
            doc = json.loads(data.decode("utf-8"))
            payload = doc["payload"]
            want = doc.get("sha256")
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if want is not None and payload_sha256(payload) != want:
            return None
        return payload

    def put(self, key: str, payload: dict,
            kind: str = RESULT_KIND) -> bool:
        body = _canonical(payload).encode("utf-8")
        try:
            status, _ = self._op("put", "PUT", self._path(kind, key),
                                 body)
        except StoreError:
            self.stats.inc("put_errors")
            raise
        if status == 201:
            self.stats.inc("puts")
            return True
        if status == 200:
            self.stats.inc("put_skipped")
            return False
        self.stats.inc("put_errors")
        raise StoreError(f"remote store PUT {kind}/{key} answered "
                         f"HTTP {status}")

    def keys(self, kind: str = RESULT_KIND) -> List[str]:
        status, data = self._op("keys", "GET", self._path(kind))
        if status != 200:
            raise StoreError(f"remote store keys({kind!r}) answered "
                             f"HTTP {status}")
        try:
            doc = json.loads(data.decode("utf-8"))
            return sorted(str(k) for k in doc["keys"])
        except (ValueError, KeyError, TypeError,
                UnicodeDecodeError) as err:
            raise StoreError(f"remote store keys({kind!r}) sent an "
                             f"unreadable document: {err}") from err

    # -- health --------------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        """One health round trip: reachability, latency, breaker
        state, and what the server says about its own store.  Never
        raises -- the report carries the failure instead (the CLI
        prints it either way)."""
        report: Dict[str, object] = {"url": self.url, "ok": False,
                                     "latency_ms": None,
                                     "breaker": self.breaker.state}
        started = time.monotonic()
        try:
            status, data = self._op("ping", "GET", "/healthz")
        except StoreError as err:
            report["error"] = str(err)
            report["breaker"] = self.breaker.state
            return report
        report["latency_ms"] = (time.monotonic() - started) * 1000.0
        report["breaker"] = self.breaker.state
        if status != 200:
            report["error"] = f"healthz answered HTTP {status}"
            return report
        try:
            doc = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            doc = {}
        report["ok"] = doc.get("status") == "ok"
        if "store" in doc:
            report["server_store"] = doc["store"]
        return report
