"""Result records: a lossless JSON codec for :class:`RunMetrics`.

The store's acceptance bar is *bit-identical* replay: a warm hit must
hand back exactly the :class:`~repro.sim.metrics.RunMetrics` the
simulation would recompute.  JSON gets us there losslessly -- Python's
``float`` repr round-trips every finite double, ints are exact -- with
two containers needing explicit tags: :class:`collections.Counter`
fields (hop histograms; integer keys, which JSON objects would
stringify) and the optional ``mc_node_requests`` :class:`numpy.ndarray`
(dtype + shape + nested lists).  The codec walks the dataclass fields
generically, so new metric fields serialize without touching this
module, and decoding ignores unknown fields / defaults missing ones, so
records survive schema drift in both directions.

:func:`store_result` / :func:`load_result` are the two calls
:func:`repro.sim.run.run_simulation` makes; everything else is
plumbing.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional

import numpy as np

from repro.sim.metrics import RunMetrics
from repro.store.base import RESULT_KIND, ResultStore

#: Bump when the record schema changes incompatibly; older payloads are
#: treated as misses rather than decoded wrongly.
RECORD_FORMAT = 1


def _encode_value(value):
    if isinstance(value, Counter):
        return {"__counter__": sorted([int(k), int(v)]
                                      for k, v in value.items())}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": {"dtype": str(value.dtype),
                                "shape": list(value.shape),
                                "data": value.ravel().tolist()}}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value):
    if isinstance(value, dict):
        if "__counter__" in value:
            return Counter({int(k): int(v)
                            for k, v in value["__counter__"]})
        if "__ndarray__" in value:
            spec = value["__ndarray__"]
            return np.array(spec["data"],
                            dtype=np.dtype(spec["dtype"])) \
                .reshape(spec["shape"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def metrics_to_doc(metrics: RunMetrics) -> dict:
    """A JSON-serializable document capturing every metrics field."""
    return {name: _encode_value(getattr(metrics, name))
            for name in (f.name for f in dataclasses.fields(RunMetrics))}


def metrics_from_doc(doc: dict) -> RunMetrics:
    """Rebuild metrics from a document; unknown keys are dropped and
    missing ones take the dataclass defaults (schema drift is a
    degraded read, not a crash)."""
    known = {f.name for f in dataclasses.fields(RunMetrics)}
    return RunMetrics(**{name: _decode_value(value)
                         for name, value in doc.items()
                         if name in known})


def result_payload(result) -> dict:
    """The store payload for one finished run.

    Audit-knob residue is normalized out: ``validate`` is excluded from
    the cache key, so a record written by a validated run must replay
    exactly what a fresh ``validate="off"`` run would produce -- the
    validation counters are stored as zero (a replayed run audits
    nothing).
    """
    doc = metrics_to_doc(result.metrics)
    doc["validation_checks"] = 0
    doc["validation_violations"] = 0
    return {"format": RECORD_FORMAT,
            "label": result.spec.label(),
            "page_fallbacks": result.page_fallbacks,
            "metrics": doc}


def load_result(store: ResultStore, spec) -> Optional[object]:
    """Replay a stored run for ``spec``, or ``None`` on a miss (which
    includes quarantined corruption and format drift)."""
    from repro.sim.run import RunResult
    payload = store.get(spec.key(), RESULT_KIND)
    if payload is None or payload.get("format") != RECORD_FORMAT:
        return None
    try:
        metrics = metrics_from_doc(payload["metrics"])
    except (KeyError, TypeError, ValueError):
        return None
    # The display name rides on the spec (and spec.name is excluded
    # from key()), so the replay takes this spec's label, exactly as a
    # fresh simulation would.
    metrics.name = spec.label()
    return RunResult(spec=spec, metrics=metrics,
                     page_fallbacks=int(payload.get("page_fallbacks", 0)))


def store_result(store: ResultStore, spec, result) -> bool:
    """Persist one finished run under its canonical key."""
    return store.put(spec.key(), result_payload(result), RESULT_KIND)
