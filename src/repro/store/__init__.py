"""``repro.store``: the crash-safe, content-addressed result store.

The durable layer underneath checkpoint/resume, cross-process result
reuse, and the experiment-service direction: results keyed by the
canonical :meth:`repro.sim.run.RunSpec.key`, stored as checksummed
single-record files with atomic commits, corruption quarantined into a
miss (never a crash), and environmental failure (full disk, read-only
path, wedged lock) degrading to the in-memory backend with one warning.
See ``docs/robustness.md``.
"""

from repro.store.atomic import (atomic_write_bytes, atomic_write_json,
                                fsync_dir)
from repro.store.base import (RESULT_KIND, ROW_KIND, FallbackStore,
                              MemoryStore, ResultStore,
                              StoreDegradedWarning, StoreStats,
                              open_store, publish_stats, reset_instances,
                              resolve)
from repro.store.disk import STORE_VERSION, DiskStore
from repro.store.records import (RECORD_FORMAT, load_result,
                                 metrics_from_doc, metrics_to_doc,
                                 result_payload, store_result)
from repro.store.remote import CircuitBreaker, RemoteStats, RemoteStore

__all__ = [
    "RESULT_KIND", "ROW_KIND", "RECORD_FORMAT", "STORE_VERSION",
    "CircuitBreaker", "DiskStore", "FallbackStore", "MemoryStore",
    "RemoteStats", "RemoteStore", "ResultStore",
    "StoreDegradedWarning", "StoreStats", "atomic_write_bytes",
    "atomic_write_json", "fsync_dir", "load_result", "metrics_from_doc",
    "metrics_to_doc", "open_store", "publish_stats", "reset_instances",
    "resolve", "result_payload", "store_result",
]
