"""The durable backend: sharded, checksummed, crash-safe record files.

Layout under the store root::

    <root>/STORE_FORMAT          format marker (version + backend)
    <root>/store.lock            advisory write lock (flock)
    <root>/objects/<kind>/<k[:2]>/<key>.rec
    <root>/quarantine/           corrupted records, moved aside

One record per file keeps every failure domain a single key wide: a
torn write, a flipped bit, or a truncated tail damages exactly one
record, and commit is the plain atomic write-then-rename (with file
*and* directory fsync) from :mod:`repro.store.atomic` -- no shared
index or journal to corrupt.  Each record carries a JSON header line
with the SHA-256 of its payload; :meth:`DiskStore.get` re-hashes on
every read, and anything that fails -- unparsable header, wrong magic,
short payload, checksum mismatch -- is *quarantined* (moved into
``quarantine/``, counted, reported via :func:`~repro.obs.tracer.
obs_instant`) and returned as a miss.  Corruption is a data-loss event,
never a crash -- and it is booked as ``corrupt``, distinct from
``misses`` (a record that was never there), so ``gets`` partitions
exactly into hits + misses + corrupt.

Writers additionally take an advisory ``flock`` on ``store.lock`` so
concurrent sweep processes sharing one store serialize their commits;
a lock that cannot be acquired within ``lock_timeout`` raises a
transient :class:`~repro.errors.StoreError`, which the degradation
ladder in :mod:`repro.store.base` turns into a memory-backed run
rather than a failure.  Readers never lock: rename atomicity plus the
checksum make a read either consistent or a (counted) miss.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import StoreError
from repro.obs.tracer import obs_instant
from repro.store.atomic import atomic_write_bytes, fsync_dir
from repro.store.base import (RESULT_KIND, ROW_KIND, ResultStore,
                              StoreStats)

try:
    import fcntl
except ImportError:  # non-POSIX: locking degrades to a no-op
    fcntl = None  # type: ignore[assignment]

#: Bumped when the record layout changes; a mismatched marker means a
#: foreign/newer store, which is safer to leave untouched.
STORE_VERSION = 1

_MAGIC = "repro-store"
_KINDS = (RESULT_KIND, ROW_KIND)


def _safe_key(key: str) -> str:
    if not key or any(c in key for c in "/\\\0") or key.startswith("."):
        raise StoreError(f"unusable store key {key!r}")
    return key


class DiskStore(ResultStore):
    """Sharded-file store; see the module docstring for the format."""

    def __init__(self, root: str, lock_timeout: float = 5.0,
                 stats: Optional[StoreStats] = None):
        super().__init__(stats)
        self.root = Path(root)
        self.lock_timeout = lock_timeout
        self.description = f"disk:{self.root}"
        self._quarantine = self.root / "quarantine"
        self._lock_path = self.root / "store.lock"
        marker = self.root / "STORE_FORMAT"
        self.root.mkdir(parents=True, exist_ok=True)
        self._quarantine.mkdir(exist_ok=True)
        (self.root / "objects").mkdir(exist_ok=True)
        if marker.exists():
            try:
                version = int(marker.read_text().split()[0])
            except (ValueError, IndexError):
                version = -1
            if version != STORE_VERSION:
                raise StoreError(
                    f"store at {self.root} has format {version!r}, "
                    f"this build reads {STORE_VERSION}")
        else:
            atomic_write_bytes(marker,
                               f"{STORE_VERSION} sharded-files\n"
                               .encode("ascii"))

    # -- paths ---------------------------------------------------------------
    def _path(self, key: str, kind: str) -> Path:
        key = _safe_key(key)
        return self.root / "objects" / kind / key[:2] / f"{key}.rec"

    # -- advisory lock -------------------------------------------------------
    def _acquire_lock(self):
        """Take the store-wide write lock, or raise a transient
        :class:`StoreError` after ``lock_timeout`` -- a wedged lock
        (e.g. a stopped sibling process) must degrade, not hang the
        sweep."""
        if fcntl is None:
            return None
        handle = open(self._lock_path, "a+b")
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
                return handle
            except OSError:
                if time.monotonic() >= deadline:
                    handle.close()
                    raise StoreError(
                        f"store lock {self._lock_path} wedged for "
                        f">{self.lock_timeout:g}s", transient=True)
                time.sleep(0.01)

    @staticmethod
    def _release_lock(handle) -> None:
        if handle is None:
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    # -- record codec --------------------------------------------------------
    @staticmethod
    def _encode(key: str, kind: str, payload: dict) -> bytes:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        header = json.dumps({
            "magic": _MAGIC, "version": STORE_VERSION, "key": key,
            "kind": kind, "sha256": hashlib.sha256(body).hexdigest(),
            "size": len(body), "created": time.time(),
        }, sort_keys=True).encode("ascii")
        return header + b"\n" + body

    @staticmethod
    def _decode(data: bytes) -> dict:
        """Parse + integrity-check one record; raises ``ValueError`` on
        any damage (the caller quarantines)."""
        head, sep, body = data.partition(b"\n")
        if not sep:
            raise ValueError("record has no header/payload separator")
        header = json.loads(head.decode("ascii"))
        if header.get("magic") != _MAGIC:
            raise ValueError("bad record magic")
        if len(body) != header.get("size"):
            raise ValueError(f"record truncated: {len(body)} of "
                             f"{header.get('size')} payload bytes")
        digest = hashlib.sha256(body).hexdigest()
        if digest != header.get("sha256"):
            raise ValueError("record checksum mismatch")
        return json.loads(body.decode("utf-8"))

    # -- corruption path -----------------------------------------------------
    def _quarantine_record(self, path: Path, reason: str) -> None:
        self.stats.inc("corrupt")
        target = self._quarantine / path.name
        n = 0
        while target.exists():
            n += 1
            target = self._quarantine / f"{path.name}.{n}"
        try:
            os.replace(path, target)
            self.stats.inc("quarantined")
        except OSError:
            try:  # cannot even move it aside: drop it
                os.unlink(path)
                self.stats.inc("quarantined")
            except OSError:
                pass
        obs_instant("store.quarantine", cat="store",
                    record=path.name, reason=reason)

    # -- ResultStore ---------------------------------------------------------
    def get(self, key: str, kind: str = RESULT_KIND) -> Optional[dict]:
        self.stats.inc("gets")
        path = self._path(key, kind)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.stats.inc("misses")
            return None
        except OSError as err:
            if err.errno in (errno.EISDIR, errno.ENOTDIR):
                self.stats.inc("misses")
                return None
            raise  # environmental: the fallback ladder handles it
        try:
            payload = self._decode(data)
        except (ValueError, UnicodeDecodeError) as err:
            # The caller sees a miss (None) either way, but the books
            # keep the two apart: ``misses`` means the record was
            # absent, ``corrupt`` means it existed and failed its
            # checksum (and was quarantined).  ``gets`` therefore
            # partitions exactly into hits + misses + corrupt.
            self._quarantine_record(path, str(err))
            return None
        self.stats.inc("hits")
        return payload

    def put(self, key: str, payload: dict,
            kind: str = RESULT_KIND) -> bool:
        path = self._path(key, kind)
        if path.exists():
            # Content-addressed: same key, same simulation inputs, same
            # result -- rewriting would only churn the disk.
            self.stats.inc("put_skipped")
            return False
        data = self._encode(key, kind, payload)
        lock = self._acquire_lock()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, data)
        finally:
            self._release_lock(lock)
        self.stats.inc("puts")
        return True

    def contains(self, key: str, kind: str = RESULT_KIND) -> bool:
        return self._path(key, kind).exists()

    def keys(self, kind: str = RESULT_KIND) -> List[str]:
        base = self.root / "objects" / kind
        if not base.is_dir():
            return []
        return sorted(p.stem for p in base.glob("*/*.rec"))

    # -- maintenance ---------------------------------------------------------
    def record_path(self, key: str, kind: str = RESULT_KIND) -> Path:
        """Where a record lives -- for inspection and the chaos tests
        that damage records on purpose."""
        return self._path(key, kind)

    def verify(self) -> Dict[str, int]:
        """Re-hash every record; damaged ones are quarantined exactly
        as a read would.  ``repro-cli store verify``'s engine."""
        checked = bad = 0
        for kind in _KINDS:
            for key in self.keys(kind):
                checked += 1
                path = self._path(key, kind)
                try:
                    self._decode(path.read_bytes())
                except FileNotFoundError:
                    continue
                except (ValueError, UnicodeDecodeError) as err:
                    bad += 1
                    self._quarantine_record(path, str(err))
        return {"checked": checked, "bad": bad, "quarantined": bad}

    def gc(self) -> Dict[str, int]:
        """Remove quarantined records and orphaned temp files left by
        interrupted commits."""
        removed = 0
        freed = 0
        lock = self._acquire_lock()
        try:
            debris = list(self._quarantine.iterdir()) if \
                self._quarantine.is_dir() else []
            debris.extend(self.root.glob("objects/*/*/*.tmp*"))
            for path in debris:
                try:
                    freed += path.stat().st_size
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            fsync_dir(self._quarantine)
        finally:
            self._release_lock(lock)
        return {"removed": removed, "bytes": freed}

    def stats_summary(self) -> Dict[str, object]:
        """Inventory (record/quarantine counts, bytes) for the CLI --
        the counts read the directory, so they reflect every process
        that ever used the store.  ``misses``/``corrupt`` are this
        process's read counters, reported separately: a quarantined
        corrupt record is *not* a miss (see :meth:`get`)."""
        records = {kind: len(self.keys(kind)) for kind in _KINDS}
        size = 0
        for path in self.root.glob("objects/*/*/*.rec"):
            try:
                size += path.stat().st_size
            except OSError:
                continue
        quarantined = len(list(self._quarantine.iterdir())) if \
            self._quarantine.is_dir() else 0
        snap = self.stats.snapshot()
        return {"root": str(self.root), "records": records,
                "bytes": size, "quarantined": quarantined,
                "misses": snap["misses"], "corrupt": snap["corrupt"],
                "version": STORE_VERSION}
