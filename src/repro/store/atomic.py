"""Crash-safe file commits: the one atomic writer everything shares.

A torn write must never be observable: either the old content (or no
file) survives, or the complete new content does.  The recipe is the
standard one -- write to a temporary file in the *same directory*,
flush, ``fsync`` the file, ``os.replace`` over the destination, then
``fsync`` the directory so the rename itself is durable.  Skipping the
directory fsync is the classic bug: after a power cut the rename may
simply not have happened, and before this module existed the harness's
checkpoint writer skipped both fsyncs.

Everything that commits bytes to disk -- the result store's records,
the harness's sweep checkpoints -- goes through
:func:`atomic_write_bytes`, so there is exactly one tested
implementation of the recipe.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Union


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush a directory's metadata (new names, renames) to disk.

    Best-effort: some filesystems refuse ``open(O_RDONLY)`` on
    directories; durability degrades gracefully there instead of
    failing the commit that already landed.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes,
                       durable: bool = True) -> None:
    """Atomically commit ``data`` to ``path`` (write, fsync, rename,
    fsync dir).

    ``durable=False`` skips the fsyncs (still atomic against concurrent
    readers, not against power loss) -- for callers that explicitly
    trade durability for speed.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_dir(path.parent)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def atomic_write_json(path: Union[str, Path], payload: Dict[str, object],
                      durable: bool = True, indent: int = 1) -> None:
    """Atomically commit a JSON document.

    No ``sort_keys``: callers rely on insertion-ordered round-trips
    (checkpoint rows must replay with the same CSV columns).
    """
    atomic_write_bytes(path,
                       json.dumps(payload, indent=indent).encode("utf-8"),
                       durable=durable)
