"""The result-store interface, its in-memory backend, and the
degradation ladder.

A :class:`ResultStore` maps a canonical content key (a
:meth:`repro.sim.run.RunSpec.key` or the executor's point key) to a
JSON-serializable payload under a *kind* namespace (``"result"`` for
full run metrics, ``"row"`` for sweep checkpoint rows).  The contract
every backend honours:

* **Reads never raise for data problems.**  A missing, truncated, or
  corrupted record is a miss (:meth:`get` returns ``None``); corruption
  is additionally quarantined and counted, never propagated.
* **Writes are atomic.**  A reader sees the old record or the new one,
  never a torn hybrid.
* **Environmental failure degrades, it does not crash.**  ENOSPC, a
  read-only directory, or a wedged lock downgrades the process to the
  in-memory backend with a single warning
  (:class:`StoreDegradedWarning`); results are always produced.

:func:`open_store` builds the right backend for a path (or the memory
backend for ``None``); :func:`resolve` caches one instance per path per
process so every run in a sweep shares hit counters and the degraded
state.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, Iterable, List, Optional

from repro.errors import StoreError
from repro.obs.tracer import obs_instant

#: Record namespaces: full run results and sweep checkpoint rows.
RESULT_KIND = "result"
ROW_KIND = "row"


class StoreDegradedWarning(UserWarning):
    """The persistent store failed and the run fell back to memory."""


class StoreStats:
    """Thread-safe operation counters shared across one store's
    backends (the disk primary and its memory fallback)."""

    FIELDS = ("gets", "hits", "misses", "puts", "put_skipped",
              "put_errors", "corrupt", "quarantined", "degraded")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


class ResultStore:
    """Abstract key/payload store; see the module docstring for the
    contract subclasses implement."""

    #: Human-readable backend description (CLI ``store stats``).
    description = "abstract"

    def __init__(self, stats: Optional[StoreStats] = None):
        self.stats = stats or StoreStats()

    # -- required --
    def get(self, key: str, kind: str = RESULT_KIND) -> Optional[dict]:
        raise NotImplementedError

    def put(self, key: str, payload: dict,
            kind: str = RESULT_KIND) -> bool:
        raise NotImplementedError

    def keys(self, kind: str = RESULT_KIND) -> List[str]:
        raise NotImplementedError

    # -- optional --
    def contains(self, key: str, kind: str = RESULT_KIND) -> bool:
        return self.get(key, kind) is not None

    def verify(self) -> Dict[str, int]:
        """Re-check every record's integrity; returns counts
        (``checked``/``bad``).  Backends without durable records have
        nothing to verify."""
        checked = sum(len(self.keys(kind))
                      for kind in (RESULT_KIND, ROW_KIND))
        return {"checked": checked, "bad": 0, "quarantined": 0}

    def gc(self) -> Dict[str, int]:
        """Drop quarantined/leftover debris; returns removal counts."""
        return {"removed": 0, "bytes": 0}

    def close(self) -> None:
        pass


class MemoryStore(ResultStore):
    """Process-local dict backend: the zero-dependency default and the
    degradation target.  Thread-safe; contents die with the process."""

    description = "memory"

    def __init__(self, stats: Optional[StoreStats] = None):
        super().__init__(stats)
        self._lock = threading.Lock()
        self._records: Dict[str, dict] = {}

    @staticmethod
    def _slot(key: str, kind: str) -> str:
        return f"{kind}:{key}"

    def get(self, key: str, kind: str = RESULT_KIND) -> Optional[dict]:
        self.stats.inc("gets")
        with self._lock:
            payload = self._records.get(self._slot(key, kind))
        if payload is None:
            self.stats.inc("misses")
            return None
        self.stats.inc("hits")
        return payload

    def put(self, key: str, payload: dict,
            kind: str = RESULT_KIND) -> bool:
        slot = self._slot(key, kind)
        with self._lock:
            if slot in self._records:
                self.stats.inc("put_skipped")
                return False
            self._records[slot] = payload
        self.stats.inc("puts")
        return True

    def keys(self, kind: str = RESULT_KIND) -> List[str]:
        prefix = f"{kind}:"
        with self._lock:
            return sorted(slot[len(prefix):] for slot in self._records
                          if slot.startswith(prefix))


class FallbackStore(ResultStore):
    """The degradation ladder: a durable primary backend with an
    in-memory understudy.

    Data corruption is the primary's own problem (quarantine + miss);
    this wrapper handles *environmental* failure -- an :class:`OSError`
    (ENOSPC, EACCES) or a :class:`~repro.errors.StoreError` (wedged
    advisory lock) escaping the primary flips the process to the memory
    backend for the rest of its lifetime, with exactly one
    :class:`StoreDegradedWarning`.  Both backends share one
    :class:`StoreStats`, so hit counters survive the downgrade.
    """

    def __init__(self, primary: ResultStore):
        super().__init__(primary.stats)
        self.primary = primary
        self.memory = MemoryStore(stats=primary.stats)
        self.degraded_reason: Optional[str] = None

    @property
    def description(self) -> str:  # type: ignore[override]
        if self.degraded_reason is not None:
            return (f"memory (degraded from {self.primary.description}: "
                    f"{self.degraded_reason})")
        return self.primary.description

    @property
    def active(self) -> ResultStore:
        return self.memory if self.degraded_reason is not None \
            else self.primary

    def _degrade(self, op: str, err: BaseException) -> None:
        if self.degraded_reason is not None:
            return
        self.degraded_reason = f"{op}: {err}"
        self.stats.inc("degraded")
        obs_instant("store.degrade", cat="store", op=op, error=str(err))
        warnings.warn(
            f"result store degraded to memory for the rest of this "
            f"process ({self.degraded_reason}); results will still be "
            f"produced but not persisted", StoreDegradedWarning,
            stacklevel=3)

    def get(self, key: str, kind: str = RESULT_KIND) -> Optional[dict]:
        try:
            return self.active.get(key, kind)
        except (OSError, StoreError) as err:
            self._degrade("get", err)
            return self.memory.get(key, kind)

    def put(self, key: str, payload: dict,
            kind: str = RESULT_KIND) -> bool:
        try:
            return self.active.put(key, payload, kind)
        except (OSError, StoreError) as err:
            self.stats.inc("put_errors")
            self._degrade("put", err)
            return self.memory.put(key, payload, kind)

    def keys(self, kind: str = RESULT_KIND) -> List[str]:
        try:
            return self.active.keys(kind)
        except (OSError, StoreError) as err:
            self._degrade("keys", err)
            return self.memory.keys(kind)

    def verify(self) -> Dict[str, int]:
        return self.active.verify()

    def gc(self) -> Dict[str, int]:
        return self.active.gc()

    def close(self) -> None:
        self.primary.close()
        self.memory.close()


def open_store(path: Optional[str] = None,
               lock_timeout: float = 5.0) -> ResultStore:
    """Build a store for ``path``: ``None``/empty means the in-memory
    backend, an ``http://host:port`` URL the network client
    (:class:`~repro.store.remote.RemoteStore`), anything else a
    :class:`~repro.store.disk.DiskStore` rooted there -- each wrapped
    in the degradation ladder.  A directory that cannot even be
    created (or an unusable URL) degrades immediately (with the
    warning) instead of failing the run."""
    if not path:
        return MemoryStore()
    if path.startswith(("http://", "https://")):
        from repro.store.remote import RemoteStore
        try:
            primary: ResultStore = RemoteStore.from_url(path)
        except StoreError as err:
            store = FallbackStore(_BrokenStore(str(path)))
            store._degrade("open", err)
            return store
        return FallbackStore(primary)
    from repro.store.disk import DiskStore
    try:
        primary = DiskStore(path, lock_timeout=lock_timeout)
    except (OSError, StoreError) as err:
        store = FallbackStore(_BrokenStore(str(path)))
        store._degrade("open", err)
        return store
    return FallbackStore(primary)


class _BrokenStore(ResultStore):
    """Placeholder primary for a store whose root never opened."""

    def __init__(self, path: str):
        super().__init__()
        self.description = f"disk:{path} (unopenable)"

    def get(self, key, kind=RESULT_KIND):
        raise StoreError("store root unavailable")

    def put(self, key, payload, kind=RESULT_KIND):
        raise StoreError("store root unavailable")

    def keys(self, kind=RESULT_KIND):
        raise StoreError("store root unavailable")


_resolve_lock = threading.Lock()
_instances: Dict[str, ResultStore] = {}


def resolve(path: Optional[str]) -> Optional[ResultStore]:
    """The process-wide store for ``path`` (one instance per path, so
    sweep points share counters and degraded state); ``None`` for a
    falsy path -- a :class:`~repro.sim.run.RunSpec` without a store
    configured costs nothing."""
    if not path:
        return None
    with _resolve_lock:
        store = _instances.get(path)
        if store is None:
            store = open_store(path)
            _instances[path] = store
        return store


def instances() -> Dict[str, ResultStore]:
    """A snapshot of the per-process store cache, path -> store.  The
    process-wide observability surface (``repro.obs.export
    .process_registry``) walks this to expose every live store's
    counters without knowing which paths the session opened."""
    with _resolve_lock:
        return dict(_instances)


def reset_instances() -> None:
    """Drop the per-process store cache (tests; also lets a long
    process re-probe a previously degraded path)."""
    with _resolve_lock:
        for store in _instances.values():
            store.close()
        _instances.clear()


def publish_stats(telemetry, before: Dict[str, int],
                  after: Dict[str, int]) -> None:
    """Fold a store-stats delta into a run's telemetry registry as
    ``store.*`` counters -- how corruption/recovery events become
    visible in :mod:`repro.obs` exports."""
    for name, value in after.items():
        delta = value - before.get(name, 0)
        if delta:
            telemetry.counter(f"store.{name}").inc(delta)
