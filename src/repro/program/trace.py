"""Trace generation: executing the program model per thread.

Each thread's memory-access stream is produced by evaluating every nest's
references over the thread's OpenMP-static iteration chunk, mapping data
coordinates through the array layouts (original or transformed), and
adding the array base addresses.  References inside an iteration are
interleaved in program order; nests execute in order; a nest's ``repeat``
re-streams it (modeling an enclosing time loop).

Everything is vectorized with NumPy; the per-access compute ``gap``
(cycles of non-memory work, from ``work_per_iteration``) rides along so
the execution-time model can charge it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.program.ir import AffineRef, IndexedRef, LoopNest, Program

if TYPE_CHECKING:  # avoid a core <-> program import cycle; typing only
    from repro.core.layout import Layout


@dataclass
class ThreadTrace:
    """One thread's access stream: virtual byte addresses, compute gaps,
    per-access write flags (consumed by the optional write-invalidation
    coherence model), and the nest segmentation (``segments`` lists
    ``(nest_name, start, end)`` half-open ranges, for per-phase
    accounting)."""

    vaddrs: np.ndarray
    gaps: np.ndarray
    writes: np.ndarray = None
    segments: tuple = ()

    def __post_init__(self) -> None:
        if self.writes is None:
            self.writes = np.zeros(len(self.vaddrs), dtype=bool)
        if not (len(self.vaddrs) == len(self.gaps) == len(self.writes)):
            raise ValueError("vaddrs, gaps and writes must align")

    @property
    def num_accesses(self) -> int:
        return len(self.vaddrs)


class _PreparedNest:
    """Per-nest state shared by every thread's trace generation.

    Hot-path hoisting: the full coordinate streams of indexed
    references (``IndexedRef.coords`` re-stacks its int64 arrays on
    every call), the per-iteration write-flag template, and the
    per-access work gap are identical across threads, so they are
    computed once per nest instead of once per (nest, thread).

    The reference/layout evaluation itself is hoisted the same way: the
    nest's references are evaluated over the *full* iteration space once
    (:meth:`_prepare_addresses`), and each thread's stream is a slice of
    the result.  A thread's OpenMP-static chunk restricts only the
    parallel loop level, so in row-major iteration order its points are
    the full-space points filtered by ``lo <= parallel coord < hi`` --
    lexicographic order restricted to a sub-box is preserved -- and all
    reference/layout maps are independent per iteration column, making
    the slice bit-identical to evaluating the thread's own meshgrid.
    """

    __slots__ = ("nest", "has_indexed", "indexed_coords", "write_template",
                 "per_access_work", "_full_rows", "_par_coords")

    def __init__(self, nest: LoopNest):
        self.nest = nest
        self.indexed_coords = {
            i: ref.coords() for i, ref in enumerate(nest.refs)
            if isinstance(ref, IndexedRef)}
        self.has_indexed = bool(self.indexed_coords)
        self.write_template = np.array([r.is_write for r in nest.refs],
                                       dtype=bool)
        self.per_access_work = max(
            0, nest.work_per_iteration // len(nest.refs))
        self._full_rows: Optional[np.ndarray] = None
        self._par_coords: Optional[np.ndarray] = None

    def _prepare_addresses(self, layouts: Mapping[str, Layout],
                           bases: Mapping[str, int]) -> None:
        """Evaluate every reference over the full iteration space, once:
        an ``(iterations, refs)`` matrix of byte addresses, iteration-
        major with references interleaved in program order."""
        nest = self.nest
        pts = nest.iteration_points()
        columns = []
        for i, ref in enumerate(nest.refs):
            if isinstance(ref, AffineRef):
                coords = ref.apply(pts)
            else:
                coords = self.indexed_coords[i]
            layout = layouts[ref.array.name]
            offsets = layout.byte_offsets(coords)
            columns.append(offsets + bases[ref.array.name])
        self._full_rows = np.stack(columns, axis=1)  # (K, R)
        self._par_coords = pts[nest.parallel_dim]

    def thread_addresses(self, thread: int, num_threads: int,
                         layouts: Mapping[str, Layout],
                         bases: Mapping[str, int]) -> np.ndarray:
        """Addresses one thread generates for one pass over the nest,
        iteration-major with references interleaved in program order."""
        nest = self.nest
        chunk = nest.thread_chunk(thread, num_threads)
        if chunk is None:
            return np.zeros(0, dtype=np.int64)
        if self._full_rows is None:
            self._prepare_addresses(layouts, bases)
        if nest.parallel_dim == 0:
            # Outermost-parallel nests (the common case): the chunk's
            # iterations are one contiguous row-major range.
            lo, hi = nest.bounds[0]
            inner = self._full_rows.shape[0] // (hi - lo)
            rows = self._full_rows[(chunk[0] - lo) * inner:
                                   (chunk[1] - lo) * inner]
        else:
            par = self._par_coords
            rows = self._full_rows[(par >= chunk[0]) & (par < chunk[1])]
        return rows.reshape(-1)

    def write_flags(self, count: int) -> np.ndarray:
        """Per-access write flags matching the iteration-major
        interleave."""
        return np.tile(self.write_template, count // len(self.nest.refs))


def generate_traces(program: Program, layouts: Mapping[str, Layout],
                    bases: Mapping[str, int],
                    num_threads: int) -> List[ThreadTrace]:
    """Per-thread traces for the whole program.

    Compute gaps carry a small deterministic per-thread jitter (seeded by
    the thread id): real threads executing identical loop bodies drift
    apart through cache effects and branchy work, and without the drift
    every thread's misses would collide at the controllers in perfect
    lockstep, grossly exaggerating baseline queueing.
    """
    prepared = [_PreparedNest(nest) for nest in program.nests]
    traces = []
    for thread in range(num_threads):
        rng = np.random.default_rng(977 + thread)
        addr_chunks: List[np.ndarray] = []
        gap_chunks: List[np.ndarray] = []
        write_chunks: List[np.ndarray] = []
        segments = []
        cursor = 0
        for pnest in prepared:
            nest = pnest.nest
            addrs = pnest.thread_addresses(thread, num_threads,
                                           layouts, bases)
            if len(addrs) == 0:
                continue
            if nest.repeat > 1:
                addrs = np.tile(addrs, nest.repeat)
            per_access = pnest.per_access_work
            if per_access > 0:
                spread = max(1, per_access // 2)
                gaps = per_access + rng.integers(
                    -spread, spread + 1, size=len(addrs))
                gaps = np.maximum(gaps, 0)
            else:
                gaps = np.zeros(len(addrs), dtype=np.int64)
            addr_chunks.append(addrs)
            gap_chunks.append(gaps.astype(np.int64))
            write_chunks.append(pnest.write_flags(len(addrs)))
            segments.append((nest.name, cursor, cursor + len(addrs)))
            cursor += len(addrs)
        if addr_chunks:
            traces.append(ThreadTrace(np.concatenate(addr_chunks),
                                      np.concatenate(gap_chunks),
                                      np.concatenate(write_chunks),
                                      tuple(segments)))
        else:
            traces.append(ThreadTrace(np.zeros(0, dtype=np.int64),
                                      np.zeros(0, dtype=np.int64),
                                      np.zeros(0, dtype=bool)))
    return traces


def total_accesses(traces: Sequence[ThreadTrace]) -> int:
    return sum(t.num_accesses for t in traces)
