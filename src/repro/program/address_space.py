"""Virtual address-space placement of arrays.

Arrays are placed sequentially with their bases aligned to a *superblock*
-- the least common multiple of the page size and ``num_mcs *
interleave_unit`` bytes.  Base-address alignment is the inter-array
padding of Section 5.3: it guarantees that offset 0 of every customized
layout lands on hardware MC index 0, so the layouts' round-robin line
placement meets the interleaving hardware in phase.
"""

from __future__ import annotations

from math import gcd
from typing import TYPE_CHECKING, Dict, Mapping

from repro.arch.config import MachineConfig

if TYPE_CHECKING:  # avoid a core <-> program import cycle; typing only
    from repro.core.layout import Layout


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


class AddressSpace:
    """Sequential allocator with superblock alignment."""

    def __init__(self, config: MachineConfig, start: int = 0):
        self.config = config
        self.alignment = _lcm(config.page_size,
                              config.num_mcs * config.interleave_unit)
        if config.shared_l2:
            # Home banks hash ``(addr / l2_line) % cores`` (Eq. 4): a base
            # must not shift the slot the layout packed each thread into.
            self.alignment = _lcm(self.alignment,
                                  config.num_cores * config.l2_line)
        self._cursor = self._align(start)
        self.bases: Dict[str, int] = {}

    def _align(self, addr: int) -> int:
        a = self.alignment
        return -(-addr // a) * a

    def place(self, name: str, layout: "Layout") -> int:
        """Assign a base address to one array; returns the base."""
        if name in self.bases:
            raise ValueError(f"array {name!r} already placed")
        base = self._cursor
        self.bases[name] = base
        self._cursor = self._align(base + layout.size_bytes)
        return base

    def place_all(self, layouts: Mapping[str, "Layout"]
                  ) -> Dict[str, int]:
        """Place every array (sorted by name for determinism)."""
        for name in sorted(layouts):
            self.place(name, layouts[name])
        return dict(self.bases)

    @property
    def footprint_bytes(self) -> int:
        return self._cursor

    def desired_mc_hints(self, layouts: Mapping[str, "Layout"]
                         ) -> Dict[int, int]:
        """Per-vpn desired-MC hints for the MC-aware page allocator.

        Only layouts that express a preference (customized layouts with a
        page-sized interleave unit) contribute; everything else is left
        to the default policy.
        """
        page = self.config.page_size
        hints: Dict[int, int] = {}
        for name, layout in layouts.items():
            base = self.bases.get(name)
            if base is None:
                continue
            base_vpn = base // page
            num_pages = -(-layout.size_bytes // page)
            for rel in range(num_pages):
                mc = layout.desired_mc_of_relative_page(rel)
                if mc is not None:
                    hints[base_vpn + rel] = mc
        return hints
