"""Affine program intermediate representation.

The paper's compiler pass operates on *data-parallel affine programs*: loop
nests whose bounds and array subscripts are affine functions of the
enclosing loop iterators (Section 5.1).  This module provides the small IR
the pass consumes:

* :class:`ArrayDecl` -- an n-dimensional array (the *data space*),
* :class:`AffineRef` -- an array reference ``r = A i + o`` with an integer
  access matrix ``A`` and offset vector ``o``,
* :class:`IndexedRef` -- an irregular reference through an index array
  (Section 5.4), carried with the concrete index data so traces stay exact
  while the pass works on an affine approximation,
* :class:`LoopNest` -- a rectangular affine loop nest with one parallel
  dimension (the *iteration partition dimension* ``u``), and
* :class:`Program` -- a named collection of arrays and nests.

Iteration vectors are column vectors ``(i_1, ..., i_m)``; data vectors are
``(a_1, ..., a_n)``.  All matrices are plain nested lists of ints so the
exact integer solvers in :mod:`repro.core.linalg` can consume them
directly; trace generation converts to NumPy for bulk evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import linalg


@dataclass(frozen=True)
class ArrayDecl:
    """An n-dimensional array: the data space being laid out.

    ``dims`` are the extents per dimension (slowest-varying first, as in a
    row-major C layout).  ``element_size`` is in bytes.
    """

    name: str
    dims: Tuple[int, ...]
    element_size: int = 8

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError(f"array {self.name!r} needs at least 1 dim")
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"array {self.name!r} has non-positive extent")
        if self.element_size <= 0:
            raise ValueError(f"array {self.name!r} element_size must be > 0")

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.element_size


@dataclass(frozen=True)
class AffineRef:
    """An affine array reference ``r = A i + o``.

    ``access`` is the ``n x m`` access matrix (n = array rank, m = loop
    depth); ``offset`` the length-n constant vector.  ``is_write`` is kept
    for bookkeeping (reads and writes travel the same network paths in the
    simulated protocol).
    """

    array: ArrayDecl
    access: Tuple[Tuple[int, ...], ...]
    offset: Tuple[int, ...]
    is_write: bool = False

    def __post_init__(self) -> None:
        n = self.array.rank
        if len(self.access) != n or len(self.offset) != n:
            raise ValueError(
                f"reference to {self.array.name!r}: access/offset rows "
                f"({len(self.access)}/{len(self.offset)}) != rank {n}")
        depths = {len(row) for row in self.access}
        if len(depths) > 1:
            raise ValueError("ragged access matrix")

    @property
    def depth(self) -> int:
        """Loop depth m this reference was written for."""
        return len(self.access[0])

    def access_matrix(self) -> linalg.Matrix:
        """The access matrix as a mutable list-of-lists copy."""
        return [list(row) for row in self.access]

    def apply(self, iterations: np.ndarray) -> np.ndarray:
        """Map iteration points to data coordinates.

        ``iterations`` has shape ``(m, K)``; the result has shape
        ``(n, K)`` of int64 data coordinates.
        """
        a = np.asarray(self.access, dtype=np.int64)
        o = np.asarray(self.offset, dtype=np.int64).reshape(-1, 1)
        return a @ iterations + o

    def coords_of(self, iteration: Sequence[int]) -> Tuple[int, ...]:
        """Data vector for one iteration point (convenience for tests)."""
        pts = np.asarray(iteration, dtype=np.int64).reshape(-1, 1)
        return tuple(int(x) for x in self.apply(pts)[:, 0])


@dataclass(frozen=True)
class IndexedRef:
    """An irregular reference ``X[f(index_array[i], i)]`` (Section 5.4).

    The concrete addresses are produced by ``index_data``: for each data
    dimension ``d`` an int64 array of shape matching the nest's iteration
    count, giving the coordinate along ``d`` for the k-th iteration point
    of the nest (in row-major iteration order).  The layout pass never sees
    these raw indices; it profiles them and fits an affine approximation
    (:mod:`repro.core.indexed`), exactly as the paper extracts "dense
    access patterns" from profile data.
    """

    array: ArrayDecl
    index_data: Tuple[np.ndarray, ...]
    is_write: bool = False

    def __post_init__(self) -> None:
        if len(self.index_data) != self.array.rank:
            raise ValueError(
                f"indexed ref to {self.array.name!r}: {len(self.index_data)} "
                f"index streams for rank {self.array.rank}")
        lengths = {len(d) for d in self.index_data}
        if len(lengths) > 1:
            raise ValueError("index streams have differing lengths")

    @property
    def num_points(self) -> int:
        return len(self.index_data[0])

    def coords(self) -> np.ndarray:
        """All data coordinates, shape ``(n, K)``, in iteration order."""
        return np.vstack([np.asarray(d, dtype=np.int64)
                          for d in self.index_data])


Reference = Union[AffineRef, IndexedRef]


@dataclass(frozen=True)
class LoopNest:
    """A rectangular affine loop nest with one parallel dimension.

    ``bounds`` are half-open ``(lo, hi)`` pairs per loop level, outermost
    first.  ``parallel_dim`` (``u`` in the paper, 0-based here) is the
    level distributed across threads with OpenMP static scheduling, i.e.
    block distribution of contiguous chunks in thread order.  ``repeat``
    models an enclosing sequential time loop without enlarging the traced
    iteration space.  ``work_per_iteration`` is the compute-cycle cost a
    core pays per iteration outside of memory accesses (feeds the
    execution-time model, expressing an application's memory intensity).
    """

    name: str
    bounds: Tuple[Tuple[int, int], ...]
    refs: Tuple[Reference, ...]
    parallel_dim: int = 0
    repeat: int = 1
    work_per_iteration: int = 4

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError(f"nest {self.name!r} needs at least one loop")
        for lo, hi in self.bounds:
            if hi <= lo:
                raise ValueError(f"nest {self.name!r}: empty bounds {lo, hi}")
        if not 0 <= self.parallel_dim < len(self.bounds):
            raise ValueError(
                f"nest {self.name!r}: parallel_dim {self.parallel_dim} "
                f"out of range")
        if not self.refs:
            raise ValueError(f"nest {self.name!r} has no references")
        if self.repeat < 1:
            raise ValueError(f"nest {self.name!r}: repeat must be >= 1")
        for ref in self.refs:
            if isinstance(ref, AffineRef) and ref.depth != self.depth:
                raise ValueError(
                    f"nest {self.name!r}: reference depth {ref.depth} != "
                    f"nest depth {self.depth}")
            if isinstance(ref, IndexedRef) and \
                    ref.num_points != self.num_iterations:
                raise ValueError(
                    f"nest {self.name!r}: indexed ref has {ref.num_points} "
                    f"points for {self.num_iterations} iterations")

    @property
    def depth(self) -> int:
        return len(self.bounds)

    @property
    def extents(self) -> Tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.bounds)

    @property
    def num_iterations(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n

    @property
    def trip_weight(self) -> int:
        """Dynamic occurrence estimate: trip-count product times repeat.

        This is the ``n_j`` of Section 5.2 used to weight submatrices when
        multiple references compete for the layout.
        """
        return self.num_iterations * self.repeat

    def iteration_points(self) -> np.ndarray:
        """All iteration points, shape ``(m, K)``, row-major order.

        Row-major means the innermost loop varies fastest, matching both C
        semantics and the ordering contract of :class:`IndexedRef`.
        """
        grids = np.meshgrid(
            *[np.arange(lo, hi, dtype=np.int64) for lo, hi in self.bounds],
            indexing="ij")
        return np.vstack([g.reshape(1, -1) for g in grids])

    def thread_chunk(self, thread: int, num_threads: int
                     ) -> Optional[Tuple[int, int]]:
        """OpenMP-static chunk ``(lo, hi)`` of the parallel loop for a thread.

        Contiguous chunks in thread order (the paper's Data-to-Core
        mapping premise); the last chunks may be smaller or empty, in which
        case ``None`` is returned.
        """
        lo, hi = self.bounds[self.parallel_dim]
        span = hi - lo
        chunk = -(-span // num_threads)  # ceil division
        t_lo = lo + thread * chunk
        t_hi = min(hi, t_lo + chunk)
        if t_lo >= hi:
            return None
        return (t_lo, t_hi)

    def thread_iteration_points(self, thread: int, num_threads: int
                                ) -> Optional[np.ndarray]:
        """Iteration points executed by one thread, shape ``(m, K_t)``."""
        chunk = self.thread_chunk(thread, num_threads)
        if chunk is None:
            return None
        ranges = []
        for level, (lo, hi) in enumerate(self.bounds):
            if level == self.parallel_dim:
                ranges.append(np.arange(chunk[0], chunk[1], dtype=np.int64))
            else:
                ranges.append(np.arange(lo, hi, dtype=np.int64))
        grids = np.meshgrid(*ranges, indexing="ij")
        return np.vstack([g.reshape(1, -1) for g in grids])

    def thread_iteration_mask(self, thread: int, num_threads: int
                              ) -> np.ndarray:
        """Boolean mask over row-major iteration order for one thread.

        Used to slice :class:`IndexedRef` streams, whose data is stored in
        full row-major iteration order.
        """
        chunk = self.thread_chunk(thread, num_threads)
        pts = self.iteration_points()
        if chunk is None:
            return np.zeros(pts.shape[1], dtype=bool)
        par = pts[self.parallel_dim]
        return (par >= chunk[0]) & (par < chunk[1])


@dataclass
class Program:
    """A named collection of arrays and parallel loop nests.

    ``memory_intensity`` is a qualitative knob (requests per kilocycle
    scale) that the mapping-selection analysis (Section 4) uses to weigh
    memory-level parallelism against locality; it is derived from the
    nests' ``work_per_iteration`` when not given explicitly.
    """

    name: str
    arrays: List[ArrayDecl] = field(default_factory=list)
    nests: List[LoopNest] = field(default_factory=list)
    # Profile-derived burst memory-level-parallelism demand: roughly how
    # many concurrent off-chip requests the application's bursts can keep
    # in flight per cluster.  High for fma3d/minighost in the paper
    # (Figure 18 shows their bank queues saturating); the
    # mapping-selection analysis weighs this against distance-to-MC.
    mlp_demand: float = 2.0

    def __post_init__(self) -> None:
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise ValueError(f"program {self.name!r}: duplicate array names")
        declared = set(names)
        for nest in self.nests:
            for ref in nest.refs:
                if ref.array.name not in declared:
                    raise ValueError(
                        f"program {self.name!r}: nest {nest.name!r} "
                        f"references undeclared array {ref.array.name!r}")

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    def references_to(self, array: ArrayDecl
                      ) -> List[Tuple[LoopNest, Reference]]:
        """All (nest, ref) pairs touching ``array``, across all nests.

        Section 5.5 stresses that references from different nests are
        treated uniformly -- weights accumulate per layout preference
        regardless of the nest of origin.
        """
        out = []
        for nest in self.nests:
            for ref in nest.refs:
                if ref.array.name == array.name:
                    out.append((nest, ref))
        return out

    @property
    def total_accesses(self) -> int:
        """Total dynamic accesses (all nests, all refs, with repeats)."""
        return sum(n.trip_weight * len(n.refs) for n in self.nests)

    @property
    def avg_work_per_access(self) -> float:
        """Average compute cycles per memory access (memory intensity)."""
        total_work = sum(n.trip_weight * n.work_per_iteration
                         for n in self.nests)
        return total_work / max(1, self.total_accesses)


def identity_ref(array: ArrayDecl, depth: Optional[int] = None,
                 is_write: bool = False) -> AffineRef:
    """The canonical reference ``X[i_1]...[i_n]`` (access matrix = I)."""
    m = depth if depth is not None else array.rank
    if m < array.rank:
        raise ValueError("depth smaller than array rank")
    access = tuple(
        tuple(1 if j == i else 0 for j in range(m))
        for i in range(array.rank))
    return AffineRef(array, access, (0,) * array.rank, is_write)


def shifted_ref(array: ArrayDecl, shifts: Sequence[int],
                depth: Optional[int] = None,
                is_write: bool = False) -> AffineRef:
    """A stencil-style reference ``X[i_1+s_1]...[i_n+s_n]``."""
    base = identity_ref(array, depth, is_write)
    return AffineRef(array, base.access, tuple(int(s) for s in shifts),
                     is_write)
