"""Trace persistence: save and replay generated access traces.

Trace generation is deterministic but not free (layout evaluation over
every iteration point); saving traces lets sweeps over *machine*
parameters (placements, bank counts, DRAM timings) reuse one trace set,
and lets users inspect or post-process the streams with external tools.
The format is a single ``.npz`` with three arrays per thread plus a
small JSON header.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.program.trace import ThreadTrace

FORMAT_VERSION = 1


def save_traces(path: Union[str, Path], traces: Sequence[ThreadTrace],
                metadata: Dict[str, object] = None) -> None:
    """Write per-thread traces (and optional metadata) to ``path``."""
    arrays: Dict[str, np.ndarray] = {}
    for tid, trace in enumerate(traces):
        arrays[f"vaddr_{tid}"] = np.asarray(trace.vaddrs, dtype=np.int64)
        arrays[f"gap_{tid}"] = np.asarray(trace.gaps, dtype=np.int64)
        arrays[f"write_{tid}"] = np.asarray(trace.writes, dtype=bool)
    header = {"version": FORMAT_VERSION, "threads": len(traces),
              "metadata": metadata or {}}
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(str(path), **arrays)


def load_traces(path: Union[str, Path]) -> List[ThreadTrace]:
    """Read traces written by :func:`save_traces`."""
    with np.load(str(path)) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version "
                f"{header.get('version')!r}")
        traces = []
        for tid in range(header["threads"]):
            traces.append(ThreadTrace(
                vaddrs=data[f"vaddr_{tid}"],
                gaps=data[f"gap_{tid}"],
                writes=data[f"write_{tid}"]))
    return traces


def load_metadata(path: Union[str, Path]) -> Dict[str, object]:
    """Just the metadata dictionary of a trace file."""
    with np.load(str(path)) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
    return dict(header.get("metadata", {}))
