"""Affine program IR, address-space placement, and trace generation."""

from repro.program.address_space import AddressSpace
from repro.program.ir import (AffineRef, ArrayDecl, IndexedRef, LoopNest,
                              Program, identity_ref, shifted_ref)
from repro.program.trace import ThreadTrace, generate_traces, total_accesses
from repro.program.tracefile import load_metadata, load_traces, save_traces

__all__ = [
    "AddressSpace", "AffineRef", "ArrayDecl", "IndexedRef", "LoopNest",
    "Program", "ThreadTrace", "generate_traces", "identity_ref",
    "load_metadata", "load_traces", "save_traces", "shifted_ref",
    "total_accesses",
]
