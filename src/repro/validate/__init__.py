"""Cross-layer invariant sanitizer for the reproduction.

``repro.validate`` holds a registry of cheap, composable invariant
checkers spanning every layer of the pipeline -- compiler (unimodular
transforms, layout bijectivity, Table-2 weight accounting), OS model
(page-table single mapping, MC-aware placement accounting), NoC
(minimal-route and monotone-link invariants via the inline
:class:`NetworkAudit`), memory system (per-controller conservation
reconciled with injected faults), and metrics (access and latency
accounting identities).

Runs opt in through ``RunSpec.validate`` (``"off"`` | ``"metrics"`` |
``"strict"``); violations surface as structured
:class:`~repro.errors.ValidationError`.  The companion modules
:mod:`repro.validate.doctor` (installation/config/workload self-check
behind ``repro-cli doctor``) and :mod:`repro.validate.fuzz` (frontend
never-crash fuzz harness behind ``repro-cli fuzz``) are *not* imported
here: doctor pulls in the simulator, which itself imports this package.
"""

from repro.validate.audit import NetworkAudit, RunAudit
from repro.validate.registry import (
    CHECKERS,
    LAYERS,
    VALIDATE_LEVELS,
    Checker,
    ValidationReport,
    Violation,
    checkers_for,
    register,
    validate_run,
)

# Importing the checkers module populates the registry.
import repro.validate.checkers  # noqa: E402,F401  (registration side-effect)

__all__ = [
    "CHECKERS",
    "Checker",
    "LAYERS",
    "NetworkAudit",
    "RunAudit",
    "VALIDATE_LEVELS",
    "ValidationReport",
    "Violation",
    "checkers_for",
    "register",
    "validate_run",
]
