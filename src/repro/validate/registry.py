"""Checker registry: named, layer-tagged invariant checks over a run.

A *checker* is a cheap pure function from a :class:`~repro.validate.
audit.RunAudit` to a list of violation messages (empty when the
invariant holds).  Checkers register themselves by name with a layer
tag (``compiler``, ``osmodel``, ``noc``, ``memsys``, ``metrics``) and a
minimum validation level:

* ``off`` -- no checkers run (the default; validation costs nothing),
* ``metrics`` -- only checkers tagged ``level="metrics"`` run: pure
  accounting identities over :class:`~repro.sim.metrics.RunMetrics`
  that need no compiler/OS artifacts,
* ``strict`` -- every registered checker runs.

:func:`validate_run` executes the applicable checkers and returns a
:class:`ValidationReport`; ``report.raise_if_failed()`` converts a
dirty report into a structured
:class:`~repro.errors.ValidationError` that names the failing checker,
so violations travel through the error taxonomy (and the hardened
harness's failure rows) like any other diagnosed failure.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ValidationError

#: The three validation levels, in increasing coverage order.
VALIDATE_LEVELS = ("off", "metrics", "strict")

#: The layers a checker may claim.
LAYERS = ("compiler", "osmodel", "noc", "memsys", "metrics", "obs")


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which checker, which layer, what happened."""

    checker: str
    layer: str
    message: str

    def __str__(self) -> str:
        return f"{self.checker}: {self.message}"


@dataclass(frozen=True)
class Checker:
    """A registered invariant check."""

    name: str
    layer: str
    level: str          # minimum RunSpec.validate level that runs it
    description: str
    func: Callable[[object], Optional[Iterable[str]]]


#: All registered checkers by name, in registration order.
CHECKERS: Dict[str, Checker] = {}


def register(name: str, layer: str, level: str = "strict",
             description: str = ""):
    """Decorator: register ``func`` as the checker ``name``.

    ``layer`` must be one of :data:`LAYERS`; ``level`` is the minimum
    validation level at which the checker runs (``"metrics"`` checkers
    also run under ``"strict"``).
    """
    if layer not in LAYERS:
        raise ValueError(f"unknown checker layer {layer!r}; "
                         f"layers: {', '.join(LAYERS)}")
    if level not in ("metrics", "strict"):
        raise ValueError(f"checker level must be 'metrics' or 'strict', "
                         f"got {level!r}")

    def deco(func):
        if name in CHECKERS:
            raise ValueError(f"checker {name!r} already registered")
        CHECKERS[name] = Checker(name=name, layer=layer, level=level,
                                 description=description
                                 or (func.__doc__ or "").strip()
                                 .split("\n")[0],
                                 func=func)
        return func
    return deco


def checkers_for(level: str) -> List[Checker]:
    """The checkers that run at ``level``, in registration order."""
    if level not in VALIDATE_LEVELS:
        raise ValueError(f"unknown validation level {level!r}; "
                         f"levels: {', '.join(VALIDATE_LEVELS)}")
    if level == "off":
        return []
    if level == "metrics":
        return [c for c in CHECKERS.values() if c.level == "metrics"]
    return list(CHECKERS.values())


@dataclass
class ValidationReport:
    """Outcome of one validation pass over a run."""

    level: str
    checkers: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def checks_run(self) -> int:
        return len(self.checkers)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (f"validation ({self.level}): {self.checks_run} "
                    f"checks, all invariants hold")
        return (f"validation ({self.level}): {len(self.violations)} "
                f"violation(s) across "
                f"{len({v.checker for v in self.violations})} checker(s)")

    def raise_if_failed(self, label: str = "") -> None:
        """Raise a :class:`~repro.errors.ValidationError` naming the
        first failing checker (and carrying every violation) when the
        report is dirty; no-op when clean."""
        if self.ok:
            return
        first = self.violations[0]
        where = f" in run {label!r}" if label else ""
        raise ValidationError(
            f"checker {first.checker!r} ({first.layer} layer) failed"
            f"{where}: {first.message}"
            + (f" (+{len(self.violations) - 1} more violation(s))"
               if len(self.violations) > 1 else ""),
            checker=first.checker,
            violations=[str(v) for v in self.violations])


def validate_run(audit, level: str = "strict") -> ValidationReport:
    """Run every checker applicable at ``level`` over ``audit``.

    Checkers never abort the pass: a checker that itself crashes is
    recorded as a violation of that checker (a sanitizer that dies on
    the operating table is a failed check, not a skipped one).
    """
    report = ValidationReport(level=level)
    for checker in checkers_for(level):
        report.checkers.append(checker.name)
        try:
            problems = list(checker.func(audit) or [])
        except Exception as exc:
            report.violations.append(Violation(
                checker.name, checker.layer,
                f"checker crashed: {type(exc).__name__}: {exc}\n"
                + _traceback.format_exc()))
            continue
        for message in problems:
            report.violations.append(Violation(
                checker.name, checker.layer, str(message)))
    return report
