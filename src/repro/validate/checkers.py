"""The built-in cross-layer invariant checkers.

Each checker guards an exact property the paper's reasoning (or PR 1's
fault semantics) depends on:

* ``compiler.unimodular`` -- every Data-to-Core transform ``U`` has
  ``|det U| == 1`` and carries its partition row (Section 5.2).
* ``compiler.layout_bijective`` -- every layout is injective on the
  array's index space and stays inside its declared footprint
  (Section 5.3: layout transformation is "a kind of renaming").
* ``compiler.weight_accounting`` -- Table 2's weight sums reconcile
  with the program's dynamic reference weights.
* ``osmodel.page_table`` -- each virtual page maps to exactly one live
  frame, inside its owning controller's (possibly fault-shrunken) pool.
* ``osmodel.mc_aware`` -- the MC-aware allocator placed a page off its
  hinted controller exactly as often as it recorded a fallback.
* ``noc.invariants`` -- delivered hop counts, route acyclicity, and
  link busy-until monotonicity, recorded inline by
  :class:`~repro.validate.audit.NetworkAudit`.
* ``memsys.conservation`` -- every off-chip access was serviced by
  exactly one controller, reconciled with the FaultPlan's event
  counters.
* ``metrics.access_conservation`` / ``metrics.latency_consistency`` --
  the headline accounting identities over
  :class:`~repro.sim.metrics.RunMetrics` (these two also run at the
  cheap ``metrics`` level).

Checkers are pure readers: they never mutate the audit, and they are
cheap -- the most expensive (layout bijectivity) samples a bounded
number of coordinates.
"""

from __future__ import annotations

import math
import zlib
from collections import Counter
from typing import List

import numpy as np

from repro.core import linalg
from repro.osmodel.allocation import MCAwarePolicy
from repro.validate.registry import register

#: Full index-space enumeration below this many elements; sampling above.
FULL_CHECK_LIMIT = 4096
#: Random coordinates sampled per array when the space is too large.
SAMPLE_COORDS = 2048


# ---------------------------------------------------------------------------
# compiler layer

@register("compiler.unimodular", layer="compiler",
          description="every Data-to-Core transform U has |det U| == 1")
def check_unimodular(audit) -> List[str]:
    result = audit.transformation
    if result is None:
        return []
    out: List[str] = []
    for name, plan in result.plans.items():
        mr = plan.mapping_result
        if mr is not None and mr.transform is not None:
            det = linalg.determinant(mr.transform)
            if det not in (1, -1):
                out.append(f"array {name}: transform determinant is "
                           f"{det}, not +/-1")
            elif mr.partition_row is not None and \
                    list(map(int, mr.transform[0])) != \
                    list(map(int, mr.partition_row)):
                out.append(f"array {name}: transform row 0 "
                           f"{list(mr.transform[0])} is not the "
                           f"partition row {list(mr.partition_row)}")
        u = getattr(plan.layout, "u", None)
        if u is not None and not linalg.is_unimodular(u):
            out.append(f"array {name}: layout matrix "
                       f"{[list(r) for r in u]} is not unimodular")
    return out


def _sample_coords(dims, seed: int) -> np.ndarray:
    """Deterministic ``(rank, K)`` coordinate sample of the index space:
    the full space when small, otherwise seeded random points plus the
    corners (where stride bugs bite), deduplicated."""
    total = 1
    for d in dims:
        total *= d
    if total <= 0:
        return np.zeros((len(dims), 0), dtype=np.int64)
    if total <= FULL_CHECK_LIMIT:
        return np.indices(dims).reshape(len(dims), -1).astype(np.int64)
    rng = np.random.default_rng(seed)
    coords = np.stack([rng.integers(0, d, size=SAMPLE_COORDS)
                       for d in dims]).astype(np.int64)
    corners = np.array([[0] * len(dims),
                        [d - 1 for d in dims]], dtype=np.int64).T
    coords = np.concatenate([coords, corners], axis=1)
    return np.unique(coords, axis=1)


@register("compiler.layout_bijective", layer="compiler",
          description="layouts are injective and stay inside their "
                      "footprint (sampled permutation check)")
def check_layout_bijective(audit) -> List[str]:
    out: List[str] = []
    base_seed = int(getattr(audit.spec, "seed", 0) or 0)
    for name, layout in sorted(audit.layouts.items()):
        dims = layout.array.dims
        coords = _sample_coords(
            dims, base_seed ^ zlib.crc32(name.encode("utf-8")))
        if coords.shape[1] == 0:
            continue
        offsets = layout.element_offsets(coords)
        size = layout.size_elements
        low = int(offsets.min())
        high = int(offsets.max())
        if low < 0 or high >= size:
            out.append(f"array {name}: offsets [{low}, {high}] escape "
                       f"the footprint [0, {size})")
        distinct = len(np.unique(offsets))
        if distinct != coords.shape[1]:
            out.append(f"array {name}: layout aliases "
                       f"{coords.shape[1] - distinct} of "
                       f"{coords.shape[1]} sampled coordinates "
                       f"(not injective)")
    return out


@register("compiler.weight_accounting", layer="compiler",
          description="Table-2 weight sums reconcile with the "
                      "program's reference weights")
def check_weight_accounting(audit) -> List[str]:
    result = audit.transformation
    if result is None:
        return []
    out: List[str] = []
    program = result.program
    for name, plan in result.plans.items():
        if not 0 <= plan.satisfied_weight <= plan.total_weight:
            out.append(f"array {name}: satisfied weight "
                       f"{plan.satisfied_weight} outside "
                       f"[0, total weight {plan.total_weight}]")
            continue
        if plan.error is not None:
            continue  # degraded plans legitimately report zero weight
        expected = sum(nest.trip_weight
                       for nest, _ in program.references_to(plan.array))
        if plan.total_weight != expected:
            out.append(f"array {name}: total weight {plan.total_weight} "
                       f"!= sum of reference weights {expected}")
    for label, value in (("arrays optimized",
                          result.pct_arrays_optimized),
                         ("references satisfied",
                          result.pct_refs_satisfied)):
        if not 0.0 <= value <= 1.0:
            out.append(f"Table-2 fraction '{label}' is {value}, "
                       f"outside [0, 1]")
    return out


# ---------------------------------------------------------------------------
# OS model layer

@register("osmodel.page_table", layer="osmodel",
          description="each virtual page maps to exactly one live "
                      "frame inside its controller's pool")
def check_page_table(audit) -> List[str]:
    table = audit.page_table
    if table is None or not table.entries:
        return []
    out: List[str] = []
    ppns = list(table.entries.values())
    duplicates = [ppn for ppn, n in Counter(ppns).items() if n > 1]
    if duplicates:
        out.append(f"{len(duplicates)} physical frame(s) are mapped by "
                   f"more than one virtual page (e.g. frame "
                   f"{duplicates[0]})")
    memory = audit.memory
    if memory is not None:
        for vpn, ppn in table.entries.items():
            mc = ppn % memory.num_mcs
            idx = ppn // memory.num_mcs
            if ppn < 0 or idx >= memory.capacities[mc]:
                out.append(f"vpn {vpn} maps to frame {ppn}, outside MC "
                           f"{mc}'s pool of {memory.capacities[mc]} "
                           f"frame(s)")
                break  # one example suffices; the pool bound is global
    return out


@register("osmodel.mc_aware", layer="osmodel",
          description="the MC-aware allocator's off-hint placements "
                      "match its fallback count")
def check_mc_aware(audit) -> List[str]:
    policy = audit.policy
    table = audit.page_table
    if not isinstance(policy, MCAwarePolicy) or table is None \
            or audit.memory is None:
        return []
    num_mcs = audit.memory.num_mcs
    mismatched = sum(
        1 for vpn, desired in policy.hints.items()
        if vpn in table.entries and table.entries[vpn] % num_mcs != desired)
    if mismatched != policy.fallbacks:
        return [f"{mismatched} hinted page(s) sit off their desired "
                f"controller but the allocator recorded "
                f"{policy.fallbacks} fallback(s)"]
    return []


# ---------------------------------------------------------------------------
# NoC layer

@register("noc.invariants", layer="noc",
          description="hop counts >= Manhattan distance, acyclic "
                      "detours, monotone link busy-until times")
def check_noc(audit) -> List[str]:
    net = audit.network_audit
    if net is None:
        return []
    out = list(net.violations)
    overflow = net.violation_count - len(net.violations)
    if overflow > 0:
        out.append(f"... and {overflow} further NoC violation(s) "
                   f"(recording capped)")
    return out


# ---------------------------------------------------------------------------
# memory system layer

@register("memsys.conservation", layer="memsys",
          description="every off-chip access serviced by exactly one "
                      "controller, reconciled with fault events")
def check_memsys_conservation(audit) -> List[str]:
    m = audit.metrics
    if m is None:
        return []
    out: List[str] = []
    serviced = sum(m.mc_requests)
    if serviced != m.offchip:
        out.append(f"controllers serviced {serviced} request(s) but "
                   f"{m.offchip} access(es) went off-chip")
    if m.mc_node_requests is not None and \
            int(m.mc_node_requests.sum()) != m.offchip:
        out.append(f"per-(MC, node) request map sums to "
                   f"{int(m.mc_node_requests.sum())}, not the "
                   f"{m.offchip} off-chip access(es)")
    for mc, (requests, row_hits) in enumerate(zip(m.mc_requests,
                                                  m.mc_row_hits)):
        if requests < 0 or not 0 <= row_hits <= requests:
            out.append(f"MC {mc}: {row_hits} row hit(s) out of "
                       f"{requests} request(s)")
    for mc, wait in enumerate(m.mc_queue_wait):
        if wait < 0 or not math.isfinite(wait):
            out.append(f"MC {mc}: negative or non-finite queue wait "
                       f"{wait}")
    # Fault-event reconciliation: degradation counters may be nonzero
    # only when the fault plan actually injects that fault class.
    plan = getattr(audit.spec, "fault_plan", None)
    classes = (
        ("mc_failovers", m.mc_failovers,
         bool(plan is not None and plan.mc_faults)),
        ("mc_offline_waits", m.mc_offline_waits,
         bool(plan is not None and plan.mc_faults)),
        ("link_detours", m.link_detours,
         bool(plan is not None and plan.link_faults)),
        ("bank_remaps", m.bank_remaps,
         bool(plan is not None and plan.bank_faults)),
    )
    for label, count, allowed in classes:
        if count < 0:
            out.append(f"negative fault counter {label} = {count}")
        elif count > 0 and not allowed:
            out.append(f"{count} {label} event(s) recorded without a "
                       f"matching fault in the plan")
    if m.link_detours > m.detour_extra_hops:
        out.append(f"{m.link_detours} detour(s) recorded but only "
                   f"{m.detour_extra_hops} extra hop(s) -- every "
                   f"detour must cost at least one")
    return out


# ---------------------------------------------------------------------------
# metrics layer (also runs at the cheap "metrics" level)

@register("metrics.access_conservation", layer="metrics", level="metrics",
          description="total accesses == L1 + L2 + on-chip remote + "
                      "off-chip, hop histograms included")
def check_access_conservation(audit) -> List[str]:
    m = audit.metrics
    if m is None:
        return []
    out: List[str] = []
    counts = {"total_accesses": m.total_accesses, "l1_hits": m.l1_hits,
              "l2_hits": m.l2_hits, "onchip_remote": m.onchip_remote,
              "offchip": m.offchip}
    for label, value in counts.items():
        if value < 0:
            out.append(f"negative counter {label} = {value}")
    served = m.l1_hits + m.l2_hits + m.onchip_remote + m.offchip
    if served != m.total_accesses:
        out.append(f"total_accesses {m.total_accesses} != l1_hits "
                   f"{m.l1_hits} + l2_hits {m.l2_hits} + onchip_remote "
                   f"{m.onchip_remote} + offchip {m.offchip} "
                   f"(= {served})")
    offchip_histogram = sum(m.offchip_hops.values())
    if offchip_histogram != m.offchip:
        out.append(f"off-chip hop histogram counts "
                   f"{offchip_histogram} request(s), not {m.offchip}")
    onchip_histogram = sum(m.onchip_hops.values())
    if onchip_histogram != m.onchip_remote:
        out.append(f"on-chip hop histogram counts {onchip_histogram} "
                   f"request(s), not {m.onchip_remote}")
    return out


@register("metrics.latency_consistency", layer="metrics", level="metrics",
          description="latency sums non-negative/finite and the "
                      "execution time is the slowest thread")
def check_latency_consistency(audit) -> List[str]:
    m = audit.metrics
    if m is None:
        return []
    out: List[str] = []
    for label in ("onchip_net_sum", "offchip_net_sum", "offchip_mem_sum",
                  "offchip_queue_sum", "net_wait_cycles", "exec_time"):
        value = getattr(m, label)
        if value < 0 or not math.isfinite(value):
            out.append(f"negative or non-finite latency sum "
                       f"{label} = {value}")
    if m.onchip_remote == 0 and m.onchip_net_sum != 0:
        out.append(f"on-chip network latency {m.onchip_net_sum} "
                   f"accumulated with zero on-chip remote accesses")
    if m.offchip == 0 and (m.offchip_net_sum != 0
                           or m.offchip_mem_sum != 0):
        out.append("off-chip latency accumulated with zero off-chip "
                   "accesses")
    if m.thread_finish:
        slowest = max(m.thread_finish)
        if min(m.thread_finish) < 0:
            out.append(f"negative thread finish time "
                       f"{min(m.thread_finish)}")
        if not math.isclose(slowest, m.exec_time,
                            rel_tol=1e-9, abs_tol=1e-6):
            out.append(f"exec_time {m.exec_time} is not the slowest "
                       f"thread's finish time {slowest}")
    return out


# ---------------------------------------------------------------------------
# observability layer

@register("obs_telemetry", layer="obs",
          description="obs=full telemetry totals reconcile with "
                      "RunMetrics (accesses, per-MC streams, NoC)")
def check_obs_telemetry(audit) -> List[str]:
    """Cross-check the :mod:`repro.obs` telemetry registry against the
    run's :class:`~repro.sim.metrics.RunMetrics`.

    The telemetry path accumulates independently of the metrics path
    (per-event publishing in the MCs/NoC vs end-of-run aggregation), so
    agreement here is a real two-ledger reconciliation, not a tautology.
    Only runs when the spec observed at ``obs=full``; spans may still be
    open while checkers execute, so this checker reads telemetry only.
    """
    obs = audit.obs
    m = audit.metrics
    if obs is None or getattr(obs, "telemetry", None) is None \
            or m is None:
        return []
    tel = obs.telemetry
    out: List[str] = []
    exact = (
        ("sim.accesses", m.total_accesses),
        ("sim.l1_hits", m.l1_hits),
        ("sim.l2_hits", m.l2_hits),
        ("sim.onchip_remote", m.onchip_remote),
        ("sim.offchip", m.offchip),
    )
    for name, expected in exact:
        got = tel.value(name)
        if int(got) != expected:
            out.append(f"telemetry {name} = {got:g} but metrics say "
                       f"{expected}")
    for mc, (requests, row_hits, wait) in enumerate(
            zip(m.mc_requests, m.mc_row_hits, m.mc_queue_wait)):
        if int(tel.value(f"mc.{mc}.requests")) != requests:
            out.append(f"telemetry mc.{mc}.requests = "
                       f"{tel.value(f'mc.{mc}.requests'):g} but the "
                       f"controller serviced {requests}")
        if int(tel.value(f"mc.{mc}.row_hits")) != row_hits:
            out.append(f"telemetry mc.{mc}.row_hits = "
                       f"{tel.value(f'mc.{mc}.row_hits'):g} but the "
                       f"controller recorded {row_hits}")
        series = tel.get(f"mc.{mc}.queue_wait")
        if series is not None and not math.isclose(
                series.sum, wait, rel_tol=1e-6, abs_tol=1e-6):
            out.append(f"mc.{mc}.queue_wait series sums to "
                       f"{series.sum:g} cycles but metrics accumulated "
                       f"{wait:g}")
    hist = tel.get("mc.queue_wait_cycles")
    if hist is not None and hist.count != sum(m.mc_requests):
        out.append(f"queue-wait histogram holds {hist.count} "
                   f"observation(s) but the controllers serviced "
                   f"{sum(m.mc_requests)} request(s)")
    detours = tel.get("noc.detours")
    if detours is not None and int(detours.value) != m.link_detours:
        out.append(f"telemetry noc.detours = {detours.value:g} but "
                   f"metrics counted {m.link_detours} detour(s)")
    gauge = tel.get("sim.exec_time")
    if gauge is not None and not math.isclose(
            gauge.value, m.exec_time, rel_tol=1e-9, abs_tol=1e-6):
        out.append(f"telemetry sim.exec_time = {gauge.value} but "
                   f"metrics say {m.exec_time}")
    return out
