"""Seeded frontend fuzz harness: the never-crash contract, enforced.

The frontend promises that *any* input source either

1. compiles to a :class:`~repro.program.ir.Program`,
2. is rejected with a typed :class:`~repro.errors.FrontendError`
   (which every lexer/parser/lowering error now is), or
3. -- once compiled and fed to the layout pass -- degrades per-array to
   the identity layout with a structured diagnostic on its plan,

and never escapes as an unhandled exception.  This module generates
mutated kernel sources from a seed corpus (character-, token- and
structure-level mutators, all driven by one ``random.Random(seed)``
stream, so every campaign is reproducible by its seed) and records
which of the three contract outcomes each case hit.  Any other outcome
is a *crash* and fails the campaign.

Used by ``repro-cli fuzz`` and the CI fuzz smoke; the test suite runs a
200-case campaign as an acceptance gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import FrontendError
from repro.frontend.lower import compile_kernel

#: Built-in seed corpus: small kernels covering the language surface
#: (stencils, transposition, strides, imperfect-nest bait, multi-nest).
BUILTIN_CORPUS: Tuple[str, ...] = (
    """
    let N = 24;
    array Z[N][N] elem 8;
    parallel for (i = 1; i < N - 1; i++) work 8 {
      for (j = 1; j < N - 1; j++) {
        Z[i][j] = Z[i-1][j] + Z[i][j] + Z[i+1][j];
      }
    }
    """,
    """
    let N = 16;
    array A[N][N] elem 8;
    array B[N][N] elem 8;
    parallel for (i = 0; i < N; i++) work 4 {
      for (j = 0; j < N; j++) {
        B[j][i] = A[i][j];
      }
    }
    """,
    """
    let N = 32;
    array U[N] elem 4;
    array V[N] elem 4;
    parallel for (i = 0; i < N; i += 2) work 2 {
      V[i] = U[i] * 3 + 1;
    }
    for (k = 1; k < N; k++) repeat 2 {
      U[k] += V[k - 1];
    }
    """,
    """
    let M = 12;
    let K = 10;
    array C[M][K][2] elem 8;
    parallel for (a = 0; a < M; a++) work 6 {
      for (b = 0; b < K; b++) {
        for (c = 0; c < 2; c++) {
          C[a][b][c] = C[a][b][c] + (a + b) * 2 - c;
        }
      }
    }
    """,
)

#: Characters the character-level mutators draw from: a mix of language
#: punctuation, digits, identifier characters, and genuine junk.
ALPHABET = "[](){};=+-*/<>,_ \n\t0123456789abzNZ@$\\\"'~?.:&|^!"

MAX_MUTATIONS = 3
#: Skip the layout pass for mutated programs whose shape explodes the
#: 2^rank corner enumeration of ``transformed_bounds``.
MAX_RANK_FOR_PASS = 8


@dataclass
class FuzzCase:
    """One mutated input and what the contract did with it."""

    index: int
    source: str
    mutations: List[str]
    outcome: str       # "compiled" | "rejected" | "degraded" | "crash"
    detail: str = ""


@dataclass
class FuzzReport:
    """Outcome counts of one fuzz campaign (reproducible by its seed)."""

    seed: int
    cases: int = 0
    compiled: int = 0
    rejected: int = 0
    degraded: int = 0
    crashes: List[FuzzCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.crashes

    def summary(self) -> str:
        return (f"fuzz(seed={self.seed}): {self.cases} cases -- "
                f"{self.compiled} compiled ({self.degraded} degraded in "
                f"the pass), {self.rejected} rejected with typed "
                f"errors, {len(self.crashes)} crash(es)")


# ---------------------------------------------------------------------------
# mutators: (name, source, rng) -> source

def _delete_char(source: str, rng: random.Random) -> str:
    if not source:
        return source
    i = rng.randrange(len(source))
    return source[:i] + source[i + 1:]


def _insert_char(source: str, rng: random.Random) -> str:
    i = rng.randrange(len(source) + 1)
    return source[:i] + rng.choice(ALPHABET) + source[i:]


def _replace_char(source: str, rng: random.Random) -> str:
    if not source:
        return source
    i = rng.randrange(len(source))
    return source[:i] + rng.choice(ALPHABET) + source[i + 1:]


def _swap_tokens(source: str, rng: random.Random) -> str:
    words = source.split(" ")
    if len(words) < 2:
        return source
    i, j = rng.randrange(len(words)), rng.randrange(len(words))
    words[i], words[j] = words[j], words[i]
    return " ".join(words)


def _delete_line(source: str, rng: random.Random) -> str:
    lines = source.splitlines()
    if not lines:
        return source
    del lines[rng.randrange(len(lines))]
    return "\n".join(lines)


def _duplicate_line(source: str, rng: random.Random) -> str:
    lines = source.splitlines()
    if not lines:
        return source
    i = rng.randrange(len(lines))
    return "\n".join(lines[:i + 1] + [lines[i]] + lines[i + 1:])


def _perturb_number(source: str, rng: random.Random) -> str:
    digits = [i for i, ch in enumerate(source) if ch.isdigit()]
    if not digits:
        return source
    i = rng.choice(digits)
    replacement = rng.choice(["0", "1", "7", "99", "4096", "999999"])
    return source[:i] + replacement + source[i + 1:]


def _rename_identifier(source: str, rng: random.Random) -> str:
    names = sorted({w for w in source.replace("[", " ").replace("]", " ")
                    .split() if w.isidentifier() and len(w) <= 2})
    if not names:
        return source
    old = rng.choice(names)
    new = rng.choice(["i", "j", "k", "q", "zz", "N", "M"])
    return source.replace(old, new)


def _truncate(source: str, rng: random.Random) -> str:
    if not source:
        return source
    return source[:rng.randrange(len(source))]


MUTATORS: Tuple[Tuple[str, Callable[[str, random.Random], str]], ...] = (
    ("delete_char", _delete_char),
    ("insert_char", _insert_char),
    ("replace_char", _replace_char),
    ("swap_tokens", _swap_tokens),
    ("delete_line", _delete_line),
    ("duplicate_line", _duplicate_line),
    ("perturb_number", _perturb_number),
    ("rename_identifier", _rename_identifier),
    ("truncate", _truncate),
)


def mutate(source: str, rng: random.Random) -> Tuple[str, List[str]]:
    """Apply 1..MAX_MUTATIONS random mutators; returns (source, names)."""
    applied: List[str] = []
    for _ in range(rng.randint(1, MAX_MUTATIONS)):
        name, mutator = MUTATORS[rng.randrange(len(MUTATORS))]
        source = mutator(source, rng)
        applied.append(name)
    return source, applied


def load_corpus(extra_paths: Sequence[str] = ()) -> List[str]:
    """The built-in corpus plus any readable ``.krn`` files given."""
    corpus = list(BUILTIN_CORPUS)
    for path in extra_paths:
        p = Path(path)
        if p.is_dir():
            corpus.extend(f.read_text() for f in sorted(p.glob("*.krn")))
        elif p.is_file():
            corpus.append(p.read_text())
    return corpus


def _run_layout_pass(program) -> Tuple[bool, str]:
    """Feed a fuzz-compiled program to the layout pass; returns
    ``(degraded, detail)``.  The pass itself must uphold the per-array
    degradation contract -- any exception out of it is a crash."""
    from repro.arch.config import MachineConfig
    from repro.core.pipeline import LayoutTransformer

    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    result = LayoutTransformer(config).run(program)
    degraded = result.degraded_arrays
    if degraded:
        return True, f"degraded arrays: {', '.join(degraded)}"
    return False, ""


def fuzz_frontend(cases: int = 200, seed: int = 0,
                  corpus: Optional[Sequence[str]] = None,
                  run_pass: bool = True) -> FuzzReport:
    """Run a fuzz campaign of ``cases`` mutated kernels.

    Every case must land in one of the contract outcomes (compiled /
    rejected / degraded); anything else is recorded as a crash with the
    offending source.  ``run_pass`` additionally drives each compiled
    program through the layout pass (the degradation half of the
    contract).  Deterministic for a fixed ``(cases, seed, corpus)``.
    """
    sources = list(BUILTIN_CORPUS) if corpus is None else list(corpus)
    if not sources:
        raise ValueError("fuzz corpus is empty")
    rng = random.Random(seed)
    report = FuzzReport(seed=seed)
    for index in range(cases):
        base = sources[rng.randrange(len(sources))]
        source, applied = mutate(base, rng)
        report.cases += 1
        case = FuzzCase(index=index, source=source, mutations=applied,
                        outcome="crash")
        try:
            program = compile_kernel(source, name=f"fuzz{index}")
        except FrontendError as err:
            case.outcome = "rejected"
            case.detail = str(err)
            report.rejected += 1
            continue
        except Exception as exc:  # contract breach
            case.detail = f"{type(exc).__name__}: {exc}"
            report.crashes.append(case)
            continue
        case.outcome = "compiled"
        report.compiled += 1
        if run_pass and program.arrays and \
                max(a.rank for a in program.arrays) <= MAX_RANK_FOR_PASS:
            try:
                degraded, detail = _run_layout_pass(program)
            except Exception as exc:  # contract breach in the pass
                case.outcome = "crash"
                case.detail = f"layout pass: {type(exc).__name__}: {exc}"
                report.crashes.append(case)
                continue
            if degraded:
                case.outcome = "degraded"
                case.detail = detail
                report.degraded += 1
    return report
