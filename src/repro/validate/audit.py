"""Audit containers: the artifacts a validated run exposes to checkers.

:class:`RunAudit` is assembled by :func:`repro.sim.run.run_simulation`
when ``RunSpec.validate`` is not ``"off"``: it references (never
copies) the layer artifacts of one run -- the transformation result,
the per-array layouts, the page table and physical memory, the
allocation policy, the metrics, and (under strict validation) the
inline :class:`NetworkAudit`.  Checkers read it duck-typed, so this
module depends on nothing heavier than the mesh -- keeping
``repro.validate`` import-cycle-free with the simulator that calls it.

:class:`NetworkAudit` is the one *inline* monitor: NoC invariants
(hops >= Manhattan distance, acyclic routes, monotone link busy-until
times) are properties of individual message deliveries that leave no
per-message artifact behind, so the network records breaches as they
happen and the ``noc.invariants`` checker reads them afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class NetworkAudit:
    """Inline NoC invariant monitor, attached to a live Network.

    The network calls :meth:`check_message` once per non-local message
    (after the route is chosen) and :meth:`link_regression` when a link's
    busy-until time would move backwards.  Violation messages are capped
    so a systematically broken model cannot flood memory; the counters
    keep exact totals regardless.
    """

    MAX_VIOLATIONS = 25

    def __init__(self, mesh):
        self.mesh = mesh
        self.messages = 0
        self.violation_count = 0
        self.violations: List[str] = []

    def _record(self, message: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.MAX_VIOLATIONS:
            self.violations.append(message)

    def check_message(self, src: int, dst: int,
                      links: Sequence[int]) -> None:
        """Route-shape invariants for one delivered message."""
        self.messages += 1
        hops = len(links)
        distance = self.mesh.distance(src, dst)
        if hops < distance:
            self._record(
                f"message {src}->{dst} delivered over {hops} link(s), "
                f"below the Manhattan distance {distance}")
        if len(set(links)) != hops:
            # XY routes are minimal and turn-model detours never revisit
            # a directed link; a repeat means the route loops.
            self._record(
                f"route {src}->{dst} traverses a link twice "
                f"(cyclic detour): {list(links)}")

    def link_regression(self, link: int, was: float, now: float) -> None:
        """A link's busy-until horizon moved backwards in time."""
        self._record(
            f"link {link} busy-until regressed from {was:g} to {now:g}")


@dataclass
class RunAudit:
    """Everything one run exposes for invariant checking.

    Fields are filled in as the run produces them; checkers must
    tolerate ``None`` for artifacts their run did not create (e.g. no
    transformation on a baseline run, no page table under cache-line
    interleaving, no network audit below strict level).
    """

    spec: object
    config: object
    mapping: object
    transformation: Optional[object] = None
    layouts: Dict[str, object] = field(default_factory=dict)
    page_table: Optional[object] = None
    memory: Optional[object] = None
    policy: Optional[object] = None
    metrics: Optional[object] = None
    network_audit: Optional[NetworkAudit] = None
    # The run's repro.obs bundle when observed (telemetry populated at
    # obs="full"); the obs_telemetry checker cross-checks its counters
    # against the metrics.  Spans may still be open while checkers run.
    obs: Optional[object] = None
