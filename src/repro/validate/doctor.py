"""``repro-cli doctor``: self-check of the install, configs and models.

The doctor answers "is this checkout healthy enough to trust?" in one
command.  It walks a fixed list of named checks:

* **install** -- the interpreter, numpy, and every ``repro`` subpackage
  import cleanly;
* **configs** -- the paper and scaled machine presets construct and
  self-validate, across every MC placement (P1/P2/P3) and mapping
  preset (M1/M2/voronoi);
* **registry** -- the invariant-checker registry is populated, every
  layer is covered, and level filtering behaves;
* **kernels** -- the bundled example kernels compile through the
  frontend;
* **workloads** -- one small strict-validated smoke simulation per
  application model (the expensive part; skippable with ``smoke=False``
  or narrowable with ``apps=[...]``).

Kept out of ``repro.validate.__init__`` on purpose: this module imports
the simulator, which itself imports ``repro.validate``.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.validate.registry import CHECKERS, LAYERS, checkers_for

#: Placements and mapping presets the config check exercises.
PLACEMENTS = ("P1", "P2", "P3")
MAPPING_NAMES = ("M1", "M2", "voronoi")


@dataclass
class DoctorCheck:
    """One named check: pass/fail plus a human-readable detail line."""

    name: str
    ok: bool
    detail: str = ""
    elapsed: float = 0.0


@dataclass
class DoctorReport:
    """Every check the doctor ran, in order."""

    checks: List[DoctorCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[DoctorCheck]:
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        passed = sum(1 for check in self.checks if check.ok)
        verdict = "healthy" if self.ok else \
            f"{len(self.failures)} check(s) FAILED"
        return f"doctor: {passed}/{len(self.checks)} checks passed -- " \
               f"{verdict}"


def _run_check(report: DoctorReport, name: str,
               func: Callable[[], str]) -> None:
    """Execute one check; the check passes unless it raises."""
    started = time.perf_counter()
    try:
        detail = func() or ""
        ok = True
    except Exception as exc:
        detail = f"{type(exc).__name__}: {exc}"
        ok = False
    report.checks.append(DoctorCheck(
        name=name, ok=ok, detail=detail,
        elapsed=time.perf_counter() - started))


def _check_install() -> str:
    import numpy
    import repro
    import repro.api
    import repro.faults.plan
    import repro.frontend.lower
    import repro.memsys.controller
    import repro.noc.network
    import repro.osmodel.allocation
    import repro.sim.harness
    import repro.workloads

    return (f"python {platform.python_version()}, "
            f"numpy {numpy.__version__}, "
            f"repro {getattr(repro, '__version__', 'dev')}")


def _check_configs() -> str:
    from repro.arch.config import MachineConfig
    from repro.sim.executor import resolve_mapping

    built = 0
    for factory in (MachineConfig.paper_default,
                    MachineConfig.scaled_default):
        for placement in PLACEMENTS:
            config = factory().with_(mc_placement=placement)
            config.mesh()                       # topology constructs
            nodes = config.mc_nodes()
            if len(set(nodes)) != config.num_mcs:
                raise ValueError(
                    f"placement {placement} produced duplicate MC "
                    f"nodes {nodes}")
            for name in MAPPING_NAMES:
                mapping = resolve_mapping(config, name)
                if mapping.num_threads != config.num_cores:
                    raise ValueError(
                        f"mapping {name}/{placement} binds "
                        f"{mapping.num_threads} threads on a "
                        f"{config.num_cores}-core mesh")
                built += 1
    return f"{built} placement x mapping combinations construct"


def _check_registry() -> str:
    if not CHECKERS:
        raise ValueError("invariant-checker registry is empty")
    covered = {checker.layer for checker in CHECKERS.values()}
    missing = [layer for layer in LAYERS if layer not in covered]
    if missing:
        raise ValueError(f"no checker covers layer(s): "
                         f"{', '.join(missing)}")
    metrics_only = checkers_for("metrics")
    if not metrics_only or len(metrics_only) >= len(checkers_for(
            "strict")):
        raise ValueError("level filtering is broken: 'metrics' must "
                         "select a non-empty strict subset")
    return (f"{len(CHECKERS)} checkers across "
            f"{len(covered)} layers")


def _check_kernels() -> str:
    from repro.frontend.lower import compile_kernel

    kernels_dir = Path(__file__).resolve().parents[3] / "examples" \
        / "kernels"
    sources = sorted(kernels_dir.glob("*.krn"))
    if not sources:
        return "no bundled example kernels found (skipped)"
    for path in sources:
        program = compile_kernel(path.read_text(), name=path.stem)
        if not program.arrays or not program.nests:
            raise ValueError(f"{path.name} compiled to an empty program")
    return f"{len(sources)} example kernel(s) compile"


def _smoke_one(name: str, scale: float) -> None:
    from repro.arch.config import MachineConfig
    from repro.sim.run import RunSpec, run_simulation
    from repro.workloads import build_workload

    program = build_workload(name, scale=scale)
    config = MachineConfig.scaled_default()
    result = run_simulation(RunSpec(program=program, config=config,
                                    optimized=True, validate="strict"))
    if result.metrics.total_accesses <= 0:
        raise ValueError(f"{name}: smoke run performed no accesses")


def run_doctor(scale: float = 0.25,
               apps: Optional[Sequence[str]] = None,
               smoke: bool = True) -> DoctorReport:
    """Run every doctor check; returns the full report.

    ``scale`` shrinks the smoke-run workloads; ``apps`` limits which
    applications are smoke-run (default: all); ``smoke=False`` skips
    the simulations entirely (install/config/registry checks only).
    """
    report = DoctorReport()
    _run_check(report, "install", _check_install)
    _run_check(report, "configs", _check_configs)
    _run_check(report, "registry", _check_registry)
    _run_check(report, "kernels", _check_kernels)
    if smoke:
        from repro.workloads import SUITE_ORDER

        names = list(apps) if apps else list(SUITE_ORDER)
        for name in names:
            _run_check(report, f"smoke:{name}",
                       lambda name=name: (_smoke_one(name, scale) or
                                          f"strict-validated at scale "
                                          f"{scale:g}"))
    return report
