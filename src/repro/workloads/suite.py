"""The 13-application workload suite (SPECOMP + Mantevo models).

The paper evaluates all SPECOMP applications except ``equake`` --
``wupwise``, ``swim``, ``mgrid``, ``applu``, ``galgel``, ``apsi``,
``gafort``, ``fma3d``, ``art``, ``ammp`` -- plus three Mantevo
mini-applications: ``hpccg``, ``minighost``, ``minimd``.  We cannot run
the original binaries (no Fortran/OpenMP runtime, GB-scale inputs, and
the paper's GEM5 testbed), so each application is modeled by an affine
:class:`~repro.program.ir.Program` that mirrors what matters to this
study:

* the **array shapes and reference patterns** of its computational core
  (stencils, transposed sweeps, strided multigrid levels, CRS SpMV,
  neighbor-list gathers),
* its **inter-thread sharing** (halo exchange, transposed second sweeps,
  globally shared read-only tables, long-range FEM connectivity),
* its **memory intensity** (``work_per_iteration``: compute cycles per
  iteration) and profile-derived burst **MLP demand** (high for
  ``fma3d`` and ``minighost``, whose bank queues saturate in Figure 18),
* and its **irregularity**: ``gafort``/``fma3d``/``ammp``/``hpccg``/
  ``minimd`` access data through index arrays, exercising the affine
  approximation of Section 5.4 with realistic structure (banded,
  locally-shuffled, or long-range connectivity; ``ammp``'s nonbonded
  pair list is random enough to be *rejected* by the error gate).

Grid-point and particle records are modeled with a 64-byte element size
(the multi-field structs these codes carry per point), so spatial
locality relative to the 64 B / 256 B cache lines -- and therefore the
off-chip access fraction of Figure 3 -- is in a realistic range.  Array
extents are scaled so a full 64-thread run is laptop-sized; the machine
configuration shrinks its caches by a matching proportion
(:meth:`~repro.arch.config.MachineConfig.scaled_default`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.program.ir import (AffineRef, ArrayDecl, IndexedRef, LoopNest,
                              Program, identity_ref, shifted_ref)

# 64-byte grid-point / particle records (8 doubles of state per point).
FIELD = 64


def _dim(base: int, scale: float, minimum: int = 8) -> int:
    """Scale a linear array extent, keeping it usable."""
    return max(minimum, int(round(base * scale)))


def _ref(array: ArrayDecl, rows: List[List[int]], offset: List[int],
         write: bool = False) -> AffineRef:
    return AffineRef(array, tuple(tuple(r) for r in rows), tuple(offset),
                     write)


def _gather(array: ArrayDecl, rows: np.ndarray, cols: np.ndarray,
            write: bool = False) -> IndexedRef:
    """An indexed 2D gather ``array[rows[k]][cols[k]]``."""
    return IndexedRef(array, (rows.astype(np.int64),
                              cols.astype(np.int64)), write)



# Thread count the workload models are tuned for (the default 8x8 mesh).
MODEL_THREADS = 64


def _init_nests(arrays: List[ArrayDecl], aligned: bool) -> List[LoopNest]:
    """Initialization sweeps, one per array.

    Real OpenMP codes initialize their arrays once before the main
    computation; *where* those loops run decides where first-touch page
    placement puts the data.  ``aligned=True`` parallelizes the
    initialization the same way as the compute loops (first touch then
    matches use -- wupwise/gafort/minimd, the applications the paper
    found first-touch-friendly).  ``aligned=False`` misaligns it, the
    common pattern that makes first-touch placement wrong for the main
    phase: wide arrays are initialized along the other dimension, and
    narrow (particle-record) arrays with a cyclic ``schedule(static,1)``
    row distribution -- both keep the init work balanced across threads.
    """
    nests = []
    for array in arrays:
        name = f"init_{array.name.lower()}"
        if not aligned and array.rank == 2 and array.dims[1] < 16 \
                and array.dims[0] % MODEL_THREADS == 0:
            # cyclic rows: thread c first-touches rows c, c+64, ... (one
            # access per record -- enough to fault the page in)
            rows, _ = array.dims
            ref = AffineRef(array, ((1, MODEL_THREADS), (0, 0)),
                            (0, 0), is_write=True)
            nests.append(LoopNest(
                name, ((0, MODEL_THREADS), (0, rows // MODEL_THREADS)),
                refs=(ref,), parallel_dim=0, work_per_iteration=6))
            continue
        parallel = 0 if aligned or array.rank < 2 else 1
        bounds = tuple((0, d) for d in array.dims)
        nests.append(LoopNest(
            name, bounds,
            refs=(identity_ref(array, is_write=True),),
            parallel_dim=parallel, work_per_iteration=6))
    return nests


# ---------------------------------------------------------------------------
# SPECOMP models
# ---------------------------------------------------------------------------

def wupwise(scale: float = 1.0) -> Program:
    """Lattice QCD: regular, unit-stride field updates; data effectively
    private per thread (first-touch does well here, Section 6.3)."""
    n = _dim(96, scale)
    x = ArrayDecl("X", (n, n), FIELD)
    y = ArrayDecl("Y", (n, n), FIELD)
    m = ArrayDecl("M", (n, n), FIELD)
    update = LoopNest(
        "su3_update", ((0, n), (0, n)),
        refs=(identity_ref(m), identity_ref(x),
              identity_ref(y, is_write=True)),
        work_per_iteration=26, repeat=2)
    accumulate = LoopNest(
        "gamma_acc", ((0, n), (0, n)),
        refs=(identity_ref(y), identity_ref(x, is_write=True)),
        work_per_iteration=22, repeat=2)
    return Program("wupwise", [x, y, m],
                   _init_nests([x, y, m], aligned=True)
                   + [update, accumulate],
                   mlp_demand=2.0)


def swim(scale: float = 1.0) -> Program:
    """Shallow-water 2D stencils: three fields, neighbor halos shared
    between adjacent threads only."""
    n = _dim(112, scale)
    u = ArrayDecl("U", (n, n), FIELD)
    v = ArrayDecl("V", (n, n), FIELD)
    p = ArrayDecl("P", (n, n), FIELD)
    calc1 = LoopNest(
        "calc1", ((1, n - 1), (1, n - 1)),
        refs=(identity_ref(u), shifted_ref(u, (0, 1)),
              identity_ref(v), shifted_ref(v, (1, 0)),
              identity_ref(p, is_write=True), shifted_ref(p, (1, 1))),
        work_per_iteration=24)
    calc2 = LoopNest(
        "calc2", ((1, n - 1), (1, n - 1)),
        refs=(identity_ref(p), shifted_ref(p, (-1, 0)),
              identity_ref(u, is_write=True)),
        work_per_iteration=18, repeat=2)
    return Program("swim", [u, v, p],
                   _init_nests([u, v, p], aligned=False)
                   + [calc1, calc2], mlp_demand=2.0)


def mgrid(scale: float = 1.0) -> Program:
    """3D multigrid V-cycle: a 7-point relaxation plus a strided
    coarse-grid restriction (access matrix with stride-2 entries).

    The two fastest grid dimensions are coalesced (``f = i * m + j``), as
    the OpenMP codes do, so the parallel loop has far more iterations
    than cores; plane neighbors become ``f +/- m``.
    """
    m = _dim(26, scale)
    plane = m * m
    a = ArrayDecl("A", (plane, m), FIELD)
    r = ArrayDecl("R", (plane, m), FIELD)
    relax = LoopNest(
        "resid", ((m, plane - m), (1, m - 1)),
        refs=(identity_ref(a), shifted_ref(a, (m, 0)),
              shifted_ref(a, (-m, 0)), shifted_ref(a, (1, 0)),
              shifted_ref(a, (0, 1)),
              identity_ref(r, is_write=True)),
        work_per_iteration=16, repeat=2)
    half = m // 2
    restrict = LoopNest(
        "rprj3", ((0, half), (0, half), (0, half)),
        refs=(_ref(r, [[2 * m, 2, 0], [0, 0, 2]], [0, 0]),
              _ref(a, [[m, 1, 0], [0, 0, 1]], [0, 0], write=True)),
        work_per_iteration=8, repeat=2)
    return Program("mgrid", [a, r],
                   _init_nests([a, r], aligned=False)
                   + [relax, restrict], mlp_demand=3.0)


def applu(scale: float = 1.0) -> Program:
    """SSOR on a 3D grid: forward and backward wavefront-ish sweeps over
    the solution and residual arrays (planes coalesced as in mgrid)."""
    m = _dim(24, scale)
    plane = m * m
    u = ArrayDecl("U", (plane, m), FIELD)
    rsd = ArrayDecl("RSD", (plane, m), FIELD)
    forward = LoopNest(
        "blts", ((m, plane), (1, m)),
        refs=(identity_ref(u), shifted_ref(u, (-m, 0)),
              shifted_ref(u, (-1, 0)), shifted_ref(u, (0, -1)),
              identity_ref(rsd, is_write=True)),
        work_per_iteration=18)
    backward = LoopNest(
        "buts", ((0, plane - m), (0, m - 1)),
        refs=(identity_ref(rsd), shifted_ref(rsd, (m, 0)),
              shifted_ref(rsd, (1, 0)),
              identity_ref(u, is_write=True)),
        work_per_iteration=18)
    return Program("applu", [u, rsd],
                   _init_nests([u, rsd], aligned=False)
                   + [forward, backward], mlp_demand=3.0)


def galgel(scale: float = 1.0) -> Program:
    """Galerkin FEM / fluid oscillations: dense linear algebra where one
    operand is swept transposed -- the layout pass must transpose ``B``
    (a different ``U`` per array), and the baseline's column-order sweep
    of ``B`` defeats spatial locality."""
    n = _dim(112, scale)
    a = ArrayDecl("A", (n, n), FIELD)
    b = ArrayDecl("B", (n, n), FIELD)
    w = ArrayDecl("W", (n, n), FIELD)
    sweep = LoopNest(
        "syshtN", ((0, n), (0, n)),
        refs=(identity_ref(a),
              _ref(b, [[0, 1], [1, 0]], [0, 0]),  # B[j][i]: transposed
              identity_ref(w, is_write=True)),
        work_per_iteration=16, repeat=2)
    post = LoopNest(
        "grsum", ((0, n), (0, n)),
        refs=(identity_ref(w), identity_ref(a, is_write=True)),
        work_per_iteration=16)
    return Program("galgel", [a, b, w],
                   _init_nests([a, b, w], aligned=False)
                   + [sweep, post], mlp_demand=3.0)


def apsi(scale: float = 1.0) -> Program:
    """Mesoscale weather: 3D fields swept along different axes in
    different phases -- conflicting layout preferences resolved by
    weight, leaving genuine cross-cluster traffic (the Figure 13
    showcase application)."""
    m = _dim(26, scale)
    plane = m * m
    t = ArrayDecl("T", (plane, m), FIELD)
    q = ArrayDecl("Q", (plane, m), FIELD)
    s = ArrayDecl("S", (plane, m), FIELD)
    advect = LoopNest(
        "dctdx", ((0, plane), (0, m)),
        refs=(identity_ref(t), identity_ref(q),
              identity_ref(s, is_write=True)),
        work_per_iteration=12, repeat=3)
    # The vertical sweep runs the parallel iterator along T's *fastest*
    # dimension: its preferred partition row conflicts with the advection
    # nest's and loses on weight.
    vertical = LoopNest(
        "dvdtz", ((0, plane), (0, m)),
        refs=(_ref(t, [[0, m], [1, 0]], [0, 0]),
              identity_ref(q, is_write=True)),
        work_per_iteration=6)
    return Program("apsi", [t, q, s],
                   _init_nests([t, q, s], aligned=False)
                   + [advect, vertical], mlp_demand=3.0)


def gafort(scale: float = 1.0) -> Program:
    """Genetic algorithm: each thread evolves its own subpopulation;
    tournament selection shuffles rows *within* a thread's block, so the
    affine approximation of the indexed access is accurate and the data
    stays effectively private (first-touch does well, Section 6.3)."""
    rows = _dim(4096, scale, minimum=128)
    genes = 8
    pop = ArrayDecl("POP", (rows, genes), FIELD)
    fit = ArrayDecl("FIT", (rows, genes))
    rng = np.random.default_rng(7)
    block = max(1, rows // 64)
    shuffled = np.arange(rows)
    for start in range(0, rows, block):
        stop = min(rows, start + block)
        segment = shuffled[start:stop].copy()
        rng.shuffle(segment)
        shuffled[start:stop] = segment
    row_stream = np.repeat(shuffled, genes)
    col_stream = np.tile(np.arange(genes), rows)
    crossover = LoopNest(
        "crossover", ((0, rows), (0, genes)),
        refs=(_gather(pop, row_stream, col_stream),
              identity_ref(fit, is_write=True)),
        work_per_iteration=22, repeat=2)
    evaluate = LoopNest(
        "evalout", ((0, rows), (0, genes)),
        refs=(identity_ref(pop), identity_ref(fit)),
        work_per_iteration=24)
    return Program("gafort", [pop, fit],
                   _init_nests([pop, fit], aligned=True)
                   + [crossover, evaluate],
                   mlp_demand=2.0)


def fma3d(scale: float = 1.0) -> Program:
    """Crash-simulation FEM: each element gathers its (distinct) nodes
    through a connectivity map with long-range connections (heavy
    inter-cluster sharing), at very low compute per access -- the
    bank-queue saturator of Figure 18, and one of the two applications
    that prefer mapping M2."""
    elems = _dim(6144, scale, minimum=512)
    nodes = _dim(6144, scale, minimum=512)
    fan = 8                       # nodes gathered per element
    node = ArrayDecl("NODE", (nodes, 8), FIELD)
    force = ArrayDecl("FORCE", (elems, fan), 32)
    rng = np.random.default_rng(11)
    base = (np.arange(elems, dtype=np.int64) * nodes) // elems
    # Per-(element, j) connectivity: mostly near-diagonal, but a quarter
    # of the connections reach anywhere on the mesh (shared parts).
    jitter = rng.integers(-48, 49, size=(elems, fan))
    connect = np.clip(base[:, None] + jitter, 0, nodes - 1)
    remote = rng.random((elems, fan)) < 0.15
    connect[remote] = rng.integers(0, nodes, size=int(remote.sum()))
    row_stream = connect.reshape(-1)
    col_stream = np.tile(np.arange(fan) % 8, elems)
    gather = LoopNest(
        "platq", ((0, elems), (0, fan)),
        refs=(_gather(node, row_stream, col_stream),
              identity_ref(force, is_write=True)),
        work_per_iteration=2, repeat=2)
    scatter = LoopNest(
        "force_acc", ((0, elems), (0, fan)),
        refs=(identity_ref(force), identity_ref(force, is_write=True)),
        work_per_iteration=6)
    return Program("fma3d", [node, force],
                   _init_nests([node, force], aligned=False)
                   + [gather, scatter],
                   mlp_demand=10.0)


def art(scale: float = 1.0) -> Program:
    """Adaptive resonance neural net: every thread scans the whole
    weight table (unpartitionable -- its access is independent of the
    parallel loop), while the image data partitions cleanly."""
    images = _dim(128, scale, minimum=16)
    features = 8
    inputs = 96
    img = ArrayDecl("IMG", (images, inputs), FIELD)
    wgt = ArrayDecl("WGT", (features, inputs), FIELD)
    match = LoopNest(
        "match", ((0, images), (0, features), (0, inputs)),
        refs=(_ref(wgt, [[0, 1, 0], [0, 0, 1]], [0, 0]),
              _ref(img, [[1, 0, 0], [0, 0, 1]], [0, 0])),
        work_per_iteration=6)
    update = LoopNest(
        "train", ((0, images), (0, inputs)),
        refs=(identity_ref(img), identity_ref(img, is_write=True)),
        work_per_iteration=8)
    return Program("art", [img, wgt],
                   _init_nests([img, wgt], aligned=False)
                   + [match, update], mlp_demand=3.0)


def ammp(scale: float = 1.0) -> Program:
    """Molecular dynamics: bonded neighbor-list gathers fit tightly, but
    the nonbonded pair list is random enough that its affine
    approximation fails the 30% error gate and is left unoptimized
    (Section 5.4's escape hatch)."""
    atoms = _dim(4096, scale, minimum=256)
    fan = 8
    pos = ArrayDecl("ATOM", (atoms, 8), FIELD)
    frc = ArrayDecl("FRC", (atoms, fan), 32)
    rng = np.random.default_rng(13)
    neighbor = np.clip(
        np.arange(atoms, dtype=np.int64)[:, None]
        + rng.integers(-24, 25, size=(atoms, fan)),
        0, atoms - 1)
    bonded = LoopNest(
        "mm_fv_update", ((0, atoms), (0, fan)),
        refs=(_gather(pos, neighbor.reshape(-1),
                      np.tile(np.arange(fan) % 8, atoms)),
              identity_ref(frc, is_write=True)),
        work_per_iteration=18)
    pairs = rng.integers(0, atoms, size=(atoms, fan))
    nonbond = LoopNest(
        "nonbon", ((0, atoms), (0, fan)),
        refs=(_gather(pos, pairs.reshape(-1),
                      np.tile(np.arange(fan) % 8, atoms)),),
        work_per_iteration=16)
    integrate = LoopNest(
        "verlet", ((0, atoms), (0, fan)),
        refs=(identity_ref(frc), identity_ref(pos, is_write=True)),
        work_per_iteration=22)
    return Program("ammp", [pos, frc],
                   _init_nests([pos, frc], aligned=False)
                   + [bonded, nonbond, integrate],
                   mlp_demand=3.0)


# ---------------------------------------------------------------------------
# Mantevo models
# ---------------------------------------------------------------------------

def hpccg(scale: float = 1.0) -> Program:
    """Conjugate gradient with a banded CRS sparse matrix: the SpMV
    gathers ``X[col[i][j]]`` where the column indices hug the diagonal,
    so the Section 5.4 approximation (``col ~ i``) passes the gate."""
    nrows = _dim(4096, scale, minimum=256)
    nnz = 12
    band = 32
    val = ArrayDecl("VAL", (nrows, nnz), 32)
    x = ArrayDecl("X", (nrows, nnz), FIELD)
    rng = np.random.default_rng(17)
    offsets = rng.integers(-band, band + 1, size=(nrows, nnz))
    cols = np.clip(np.arange(nrows)[:, None] + offsets, 0, nrows - 1)
    spmv = LoopNest(
        "spmv", ((0, nrows), (0, nnz)),
        refs=(identity_ref(val),
              _gather(x, cols.reshape(-1),
                      np.tile(np.arange(nnz), nrows))),
        work_per_iteration=12)
    axpy = LoopNest(
        "waxpby", ((0, nrows), (0, nnz)),
        refs=(identity_ref(x), identity_ref(x, is_write=True)),
        work_per_iteration=16)
    return Program("hpccg", [val, x],
                   _init_nests([val, x], aligned=False)
                   + [spmv, axpy], mlp_demand=3.0)


def minighost(scale: float = 1.0) -> Program:
    """3D stencil with explicit halo exchange (modeled as a transposed
    sweep): high sharing and very high memory intensity -- the other
    M2-preferring application."""
    m = _dim(24, scale)
    plane = m * m
    grid = ArrayDecl("GRID", (plane, m), FIELD)
    work = ArrayDecl("WORK", (plane, m), FIELD)
    stencil = LoopNest(
        "stencil27", ((m, plane - m), (1, m - 1)),
        refs=(identity_ref(grid), shifted_ref(grid, (m, 0)),
              shifted_ref(grid, (-m, 0)), shifted_ref(grid, (1, 0)),
              shifted_ref(grid, (-1, 0)), shifted_ref(grid, (0, 1)),
              identity_ref(work, is_write=True)),
        work_per_iteration=4, repeat=3)
    halo = LoopNest(
        "exchange", ((0, plane), (0, m)),
        refs=(_ref(grid, [[0, m], [1, 0]], [0, 0]),
              identity_ref(work)),
        work_per_iteration=4, repeat=2)
    return Program("minighost", [grid, work],
                   _init_nests([grid, work], aligned=False)
                   + [stencil, halo],
                   mlp_demand=9.0)


def minimd(scale: float = 1.0) -> Program:
    """Lennard-Jones MD mini-app: tight neighbor lists, data nearly
    private per thread (the third first-touch-friendly application)."""
    atoms = _dim(4096, scale, minimum=256)
    fan = 8
    pos = ArrayDecl("POS", (atoms, 8), FIELD)
    f = ArrayDecl("F", (atoms, fan), 32)
    rng = np.random.default_rng(19)
    neighbor = np.clip(
        np.arange(atoms, dtype=np.int64)[:, None]
        + rng.integers(-8, 9, size=(atoms, fan)),
        0, atoms - 1)
    force = LoopNest(
        "compute_force", ((0, atoms), (0, fan)),
        refs=(_gather(pos, neighbor.reshape(-1),
                      np.tile(np.arange(fan) % 8, atoms)),
              identity_ref(f, is_write=True)),
        work_per_iteration=20, repeat=2)
    integrate = LoopNest(
        "integrate", ((0, atoms), (0, fan)),
        refs=(identity_ref(f), identity_ref(pos, is_write=True)),
        work_per_iteration=22)
    return Program("minimd", [pos, f],
                   _init_nests([pos, f], aligned=True)
                   + [force, integrate], mlp_demand=3.0)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

WORKLOADS: Dict[str, Callable[[float], Program]] = {
    "wupwise": wupwise,
    "swim": swim,
    "mgrid": mgrid,
    "applu": applu,
    "galgel": galgel,
    "apsi": apsi,
    "gafort": gafort,
    "fma3d": fma3d,
    "art": art,
    "ammp": ammp,
    "hpccg": hpccg,
    "minighost": minighost,
    "minimd": minimd,
}

SUITE_ORDER: Tuple[str, ...] = tuple(WORKLOADS)

# The applications whose mostly-private data makes the first-touch
# policy competitive (Section 6.3).
FIRST_TOUCH_FRIENDLY = ("wupwise", "gafort", "minimd")

# The applications whose burst MLP demand makes mapping M2 win
# (Figures 17/18).
HIGH_MLP = ("fma3d", "minighost")


def with_work_scale(program: Program, factor: float) -> Program:
    """Scale every nest's compute intensity (calibration helper)."""
    if factor == 1.0:
        return program
    from dataclasses import replace
    nests = [replace(n, work_per_iteration=max(0, round(
        n.work_per_iteration * factor))) for n in program.nests]
    return Program(program.name, program.arrays, nests,
                   mlp_demand=program.mlp_demand)


def build_workload(name: str, scale: float = 1.0,
                   work_scale: float = 1.0) -> Program:
    """Build one application model by name."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}")
    return with_work_scale(builder(scale), work_scale)


# ---------------------------------------------------------------------------
# Demo kernels: small source-level programs the CLI accepts by name
# (``repro-cli trace matmul``) without a .krn file on disk.  The same
# matmul source ships as ``examples/kernels/matmul.krn``.
# ---------------------------------------------------------------------------

_MATMUL_SRC = """\
# Dense matrix multiply: one parallel row of C per thread; A is swept
# row-wise (localizable), B column-wise (the hard operand).
let N = {n};
array A[N][N] elem 64;
array B[N][N] elem 64;
array C[N][N] elem 64;

parallel for (i = 0; i < N; i++) work 8 {{
  for (j = 0; j < N; j++) {{
    for (k = 0; k < N; k++) {{
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }}
  }}
}}
"""

#: Demo kernel sources by name, with an ``{n}`` problem-size slot.
DEMO_KERNELS: Dict[str, Tuple[str, int]] = {
    "matmul": (_MATMUL_SRC, 48),
}


def build_demo_kernel(name: str, scale: float = 1.0) -> Program:
    """Compile a demo kernel by name, scaling its problem size."""
    try:
        source, base_n = DEMO_KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown demo kernel {name!r}; choose from "
                       f"{sorted(DEMO_KERNELS)}")
    from repro.frontend import compile_kernel
    n = max(16, int(round(base_n * scale)))
    return compile_kernel(source.format(n=n), name=name)


def build_suite(scale: float = 1.0,
                work_scale: float = 1.0) -> List[Program]:
    """All 13 applications, in the paper's presentation order."""
    return [build_workload(name, scale, work_scale)
            for name in SUITE_ORDER]
