"""The 13-application workload suite and registry."""

from repro.workloads.suite import (DEMO_KERNELS, FIRST_TOUCH_FRIENDLY,
                                   HIGH_MLP, SUITE_ORDER, WORKLOADS,
                                   build_demo_kernel, build_suite,
                                   build_workload)

__all__ = [
    "DEMO_KERNELS", "FIRST_TOUCH_FRIENDLY", "HIGH_MLP", "SUITE_ORDER",
    "WORKLOADS", "build_demo_kernel", "build_suite", "build_workload",
]
