"""The 13-application workload suite and registry."""

from repro.workloads.suite import (FIRST_TOUCH_FRIENDLY, HIGH_MLP,
                                   SUITE_ORDER, WORKLOADS, build_suite,
                                   build_workload)

__all__ = [
    "FIRST_TOUCH_FRIENDLY", "HIGH_MLP", "SUITE_ORDER", "WORKLOADS",
    "build_suite", "build_workload",
]
