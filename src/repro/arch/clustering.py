"""L2-to-MC mappings: clusters of cores bound to sets of controllers.

Section 4 of the paper introduces the *L2-to-MC mapping*, a user-provided
input: the cores are partitioned into clusters, each assigned a set of
memory controllers, and all off-chip requests from a cluster's L2s should
be served by that cluster's MCs.  A valid mapping must have (1) equally
sized clusters and (2) equally many MCs per cluster -- both are enforced
here, because the strip-mining/permutation formulas of Section 5.3 rely on
them.

Presets:

* :func:`mapping_m1` -- the default (Figure 8a): one cluster per MC, each
  cluster a contiguous block of the mesh, matched to the nearest MC
  (maximum locality, minimum memory-level parallelism per cluster).
* :func:`mapping_m2` -- the alternative (Figure 8b): half as many
  clusters, each twice as large and served by two MCs (trades locality
  for memory-level parallelism).

The mapping also fixes the *thread binding order*: thread ``t`` runs on
``core_order[t]``, cluster by cluster (footnote 5 of the paper -- threads
are pinned so that the order of cores is consistent with the order of
memory controllers).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.arch.topology import Mesh


@dataclass(frozen=True)
class Cluster:
    """A set of core nodes served by a set of MCs (by hardware MC index)."""

    cores: Tuple[int, ...]
    mc_indices: Tuple[int, ...]


class L2ToMCMapping:
    """A validated L2-to-MC mapping over a mesh with placed MCs.

    ``mc_nodes[j]`` is the mesh node hosting the MC with hardware index
    ``j`` -- the same index the address-interleaving hardware produces for
    lines/pages with ``(addr / unit) % num_mcs == j``.
    """

    def __init__(self, mesh: Mesh, mc_nodes: Sequence[int],
                 clusters: Sequence[Cluster], name: str = "custom",
                 partial: bool = False):
        self.mesh = mesh
        self.mc_nodes = list(mc_nodes)
        self.clusters = list(clusters)
        self.name = name
        self.partial = partial
        self._validate()
        self._core_to_cluster: Dict[int, int] = {}
        for ci, cluster in enumerate(self.clusters):
            for core in cluster.cores:
                self._core_to_cluster[core] = ci
        # Thread binding: cluster-major, cores within a cluster in the
        # order the cluster lists them.
        self.core_order: List[int] = [
            core for cluster in self.clusters for core in cluster.cores]

    def _validate(self) -> None:
        if not self.clusters:
            raise ValueError("mapping needs at least one cluster")
        sizes = {len(c.cores) for c in self.clusters}
        if len(sizes) != 1:
            raise ValueError(
                f"clusters must have equal core counts, got {sorted(sizes)}")
        mc_counts = {len(c.mc_indices) for c in self.clusters}
        if len(mc_counts) != 1:
            raise ValueError(
                f"clusters must have equal MC counts, got "
                f"{sorted(mc_counts)}")
        all_cores = [core for c in self.clusters for core in c.cores]
        if len(set(all_cores)) != len(all_cores):
            raise ValueError("a core appears in more than one cluster")
        all_mcs = [m for c in self.clusters for m in c.mc_indices]
        if len(set(all_mcs)) != len(all_mcs):
            raise ValueError("an MC is assigned to more than one cluster")
        if any(not 0 <= m < len(self.mc_nodes) for m in all_mcs):
            raise ValueError("MC index out of range")
        if not self.partial:
            if set(all_cores) != set(range(self.mesh.num_nodes)):
                raise ValueError(
                    "clusters must cover every mesh node exactly")
            if set(all_mcs) != set(range(len(self.mc_nodes))):
                raise ValueError("clusters must cover every MC exactly")
        elif not set(all_cores) <= set(range(self.mesh.num_nodes)):
            raise ValueError("cluster cores outside the mesh")

    # -- shape ------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def cores_per_cluster(self) -> int:
        return len(self.clusters[0].cores)

    @property
    def mcs_per_cluster(self) -> int:
        """``k`` in the customization formulas of Section 5.3."""
        return len(self.clusters[0].mc_indices)

    @property
    def num_mcs(self) -> int:
        return len(self.mc_nodes)

    @property
    def num_threads(self) -> int:
        return len(self.core_order)

    # -- lookups ----------------------------------------------------------
    def cluster_of_core(self, core: int) -> int:
        return self._core_to_cluster[core]

    def cluster_of_thread(self, thread: int) -> int:
        return self.cluster_of_core(self.core_order[thread])

    def core_of_thread(self, thread: int) -> int:
        return self.core_order[thread]

    def mcs_of_cluster(self, cluster: int) -> Tuple[int, ...]:
        return self.clusters[cluster].mc_indices

    def mc_nodes_of_cluster(self, cluster: int) -> List[int]:
        return [self.mc_nodes[j] for j in self.clusters[cluster].mc_indices]

    def desired_mc_index(self, core: int) -> int:
        """The cluster MC nearest to ``core`` (hardware index)."""
        cluster = self.cluster_of_core(core)
        indices = self.clusters[cluster].mc_indices
        return min(indices,
                   key=lambda j: (self.mesh.distance(core,
                                                     self.mc_nodes[j]), j))

    def avg_distance_to_mc(self) -> float:
        """Mean core-to-assigned-MC distance: the locality half of the
        locality-vs-MLP tradeoff the mapping-selection analysis weighs."""
        total = 0.0
        count = 0
        for cluster in self.clusters:
            nodes = [self.mc_nodes[j] for j in cluster.mc_indices]
            for core in cluster.cores:
                total += sum(self.mesh.distance(core, n)
                             for n in nodes) / len(nodes)
                count += 1
        return total / count

    def __repr__(self) -> str:
        return (f"L2ToMCMapping({self.name}: {self.num_clusters} clusters x "
                f"{self.cores_per_cluster} cores, k={self.mcs_per_cluster})")


def _cluster_core_list(mesh: Mesh, x0: int, y0: int, w: int, h: int
                       ) -> Tuple[int, ...]:
    """Cores of a rectangular cluster, column-major (y fastest).

    Column-major inside the cluster matches the paper's ``n_y``-fastest
    convention in the ``R(r_v)`` formula; any fixed order would do as long
    as thread binding follows the same one.
    """
    return tuple(mesh.node_at(x, y)
                 for x in range(x0, x0 + w)
                 for y in range(y0, y0 + h))


def grid_shape_for(mesh: Mesh, num_clusters: int) -> Tuple[int, int]:
    """Choose a ``(cx, cy)`` grid of clusters that tiles the mesh evenly.

    Picks the factorization of ``num_clusters`` with cluster tiles as
    close to square as possible among those that divide the mesh.
    """
    best = None
    for cx in range(1, num_clusters + 1):
        if num_clusters % cx:
            continue
        cy = num_clusters // cx
        if mesh.width % cx or mesh.height % cy:
            continue
        w, h = mesh.width // cx, mesh.height // cy
        score = abs(w - h)
        if best is None or score < best[0]:
            best = (score, cx, cy)
    if best is None:
        raise ValueError(
            f"cannot tile {mesh} with {num_clusters} equal clusters")
    return best[1], best[2]


def _match_clusters_to_mcs(mesh: Mesh, centroids: List[Tuple[float, float]],
                           mc_nodes: Sequence[int], k: int
                           ) -> List[Tuple[int, ...]]:
    """Assign each cluster ``k`` MCs minimizing total centroid distance.

    Exact assignment via scipy's Hungarian algorithm on a cost matrix with
    each MC replicated once (k = 1) -- for k > 1 each cluster row is
    replicated k times.
    """
    from scipy.optimize import linear_sum_assignment
    import numpy as np

    num_clusters = len(centroids)
    slots = [ci for ci in range(num_clusters) for _ in range(k)]
    cost = np.zeros((len(slots), len(mc_nodes)))
    for row, ci in enumerate(slots):
        cx, cy = centroids[ci]
        for j, node in enumerate(mc_nodes):
            mx, my = mesh.coords(node)
            cost[row, j] = abs(cx - mx) + abs(cy - my)
    rows, cols = linear_sum_assignment(cost)
    assigned: List[List[int]] = [[] for _ in range(num_clusters)]
    for row, col in zip(rows, cols):
        assigned[slots[row]].append(int(col))
    return [tuple(sorted(a)) for a in assigned]


def grid_mapping(mesh: Mesh, mc_nodes: Sequence[int], num_clusters: int,
                 name: str = "grid") -> L2ToMCMapping:
    """A rectangular-grid clustering with nearest-MC matching.

    Each cluster receives ``num_mcs / num_clusters`` controllers; raises
    if the division is not exact (the paper's validity constraint).
    """
    if len(mc_nodes) % num_clusters:
        raise ValueError(
            f"{len(mc_nodes)} MCs cannot be split evenly over "
            f"{num_clusters} clusters")
    k = len(mc_nodes) // num_clusters
    cx, cy = grid_shape_for(mesh, num_clusters)
    w, h = mesh.width // cx, mesh.height // cy
    cores: List[Tuple[int, ...]] = []
    centroids: List[Tuple[float, float]] = []
    for gy in range(cy):
        for gx in range(cx):
            cores.append(_cluster_core_list(mesh, gx * w, gy * h, w, h))
            centroids.append((gx * w + (w - 1) / 2, gy * h + (h - 1) / 2))
    mc_sets = _match_clusters_to_mcs(mesh, centroids, mc_nodes, k)
    clusters = [Cluster(c, m) for c, m in zip(cores, mc_sets)]
    return L2ToMCMapping(mesh, mc_nodes, clusters, name=name)


def mapping_m1(mesh: Mesh, mc_nodes: Sequence[int]) -> L2ToMCMapping:
    """M1 (Figure 8a): one cluster per MC, nearest-MC matched."""
    return grid_mapping(mesh, mc_nodes, len(mc_nodes), name="M1")


def mapping_m2(mesh: Mesh, mc_nodes: Sequence[int]) -> L2ToMCMapping:
    """M2 (Figure 8b): half as many clusters, two MCs per cluster."""
    if len(mc_nodes) % 2:
        raise ValueError("M2 needs an even MC count")
    return grid_mapping(mesh, mc_nodes, len(mc_nodes) // 2, name="M2")


def balanced_mapping(mesh: Mesh, mc_nodes: Sequence[int],
                     name: str = "voronoi") -> L2ToMCMapping:
    """Balanced-Voronoi clustering: one equal-size cluster per MC.

    Rectangular grid clusters fit corner controllers, but placements
    like P2 (edge midpoints) put each controller on the *border* of a
    grid quadrant, inflating every core's distance.  This mapping
    instead assigns each core to a controller by a minimum-total-
    distance balanced assignment (Hungarian over cores x cluster
    slots), yielding the capacity-constrained Voronoi cells of the
    controllers -- diamonds for P2, bands for P3.
    """
    from scipy.optimize import linear_sum_assignment
    import numpy as np

    num_mcs = len(mc_nodes)
    num_nodes = mesh.num_nodes
    if num_nodes % num_mcs:
        raise ValueError(
            f"{num_nodes} cores cannot split evenly over {num_mcs} MCs")
    per_cluster = num_nodes // num_mcs
    slots = [mc for mc in range(num_mcs) for _ in range(per_cluster)]
    cost = np.zeros((num_nodes, len(slots)))
    for node in range(num_nodes):
        for col, mc in enumerate(slots):
            cost[node, col] = mesh.distance(node, mc_nodes[mc])
    rows, cols = linear_sum_assignment(cost)
    members: List[List[int]] = [[] for _ in range(num_mcs)]
    for node, col in zip(rows.tolist(), cols.tolist()):
        members[slots[col]].append(node)
    clusters = [Cluster(tuple(sorted(m)), (mc,))
                for mc, m in enumerate(members)]
    return L2ToMCMapping(mesh, mc_nodes, clusters, name=name)


def partial_grid_mapping(mesh: Mesh, mc_nodes: Sequence[int],
                         x0: int, y0: int, width: int, height: int,
                         num_clusters: int,
                         name: str = "region") -> L2ToMCMapping:
    """An L2-to-MC mapping for one application's rectangular sub-region.

    Used for multiprogrammed workloads (Figure 25): each co-running
    application owns a rectangle of the mesh and its layout pass targets
    the ``num_clusters`` controllers nearest to it, one per cluster.  The
    mapping is *partial* -- it covers only the region's cores and a
    subset of the MCs -- which the layouts handle by leaving address
    holes at the other controllers' line slots.
    """
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    # Tile the region into num_clusters rectangles: split the longer side.
    tiles: List[Tuple[int, int, int, int]] = []
    if width >= height and width % num_clusters == 0:
        w = width // num_clusters
        tiles = [(x0 + i * w, y0, w, height) for i in range(num_clusters)]
    elif height % num_clusters == 0:
        h = height // num_clusters
        tiles = [(x0, y0 + i * h, width, h) for i in range(num_clusters)]
    elif width % num_clusters == 0:
        w = width // num_clusters
        tiles = [(x0 + i * w, y0, w, height) for i in range(num_clusters)]
    else:
        raise ValueError(
            f"cannot tile a {width}x{height} region into "
            f"{num_clusters} equal clusters")
    centroids = [(tx + (tw - 1) / 2, ty + (th - 1) / 2)
                 for tx, ty, tw, th in tiles]
    # Pick the num_clusters distinct MCs nearest the region, then match.
    region_cx = x0 + (width - 1) / 2
    region_cy = y0 + (height - 1) / 2
    by_distance = sorted(
        range(len(mc_nodes)),
        key=lambda j: (abs(mesh.coords(mc_nodes[j])[0] - region_cx)
                       + abs(mesh.coords(mc_nodes[j])[1] - region_cy), j))
    chosen = by_distance[:num_clusters]
    assignment = _match_clusters_to_mcs(
        mesh, centroids, [mc_nodes[j] for j in chosen], 1)
    clusters = []
    for (tx, ty, tw, th), local in zip(tiles, assignment):
        mc_index = chosen[local[0]]
        clusters.append(Cluster(_cluster_core_list(mesh, tx, ty, tw, th),
                                (mc_index,)))
    return L2ToMCMapping(mesh, mc_nodes, clusters, name=name, partial=True)
