"""Machine configuration: Table 1 of the paper, plus simulation scaling.

``MachineConfig`` carries the architectural parameters of the simulated
manycore.  The *paper defaults* (:func:`MachineConfig.paper_default`)
reproduce Table 1 exactly: an 8x8 mesh, 4 corner MCs, 16 KB L1s with 64 B
lines, 256 KB L2s with 256 B lines, L1/L2/hop latencies of 2/10/4 cycles,
16 B links, FR-FCFS scheduling, 4 KB row buffers (= page size).

Because the paper's inputs are 124 MB - 1.9 GB and ours must run on a
laptop, :func:`MachineConfig.scaled_default` shrinks the caches while the
workload models shrink the arrays by the same proportion, preserving the
ratio of working-set size to cache capacity -- and therefore the off-chip
access fraction the evaluation hinges on (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.arch.clustering import (L2ToMCMapping, mapping_m1)
from repro.arch.placement import place_mcs
from repro.arch.topology import Mesh

PAGE_INTERLEAVING = "page"
CACHE_LINE_INTERLEAVING = "cache_line"


@dataclass(frozen=True)
class MachineConfig:
    """All architectural knobs of the simulated system (Table 1)."""

    # Mesh / NoC
    mesh_width: int = 8
    mesh_height: int = 8
    link_bytes: int = 16          # 16 B links
    hop_latency: int = 4          # per-hop latency (cycles)
    router_pipeline: int = 2      # router pipeline depth (cycles)

    # Caches
    l1_size: int = 16 * 1024
    l1_line: int = 64
    l1_ways: int = 2
    l1_latency: int = 2
    l2_size: int = 256 * 1024
    l2_line: int = 256
    l2_ways: int = 16
    l2_latency: int = 10
    shared_l2: bool = False       # False = per-core private L2s

    # Memory system.  Table 1 lists 4 banks/device with multiple devices
    # per DIMM; we expose the controller-visible bank parallelism.
    num_mcs: int = 4
    mc_placement: str = "P1"      # P1 corners / P2 edge midpoints / P3 diag
    banks_per_mc: int = 16
    row_buffer_bytes: int = 4096  # = page size (Table 1)
    row_hit_cycles: int = 24      # CAS + transfer, DDR3-1600-derived
    row_miss_cycles: int = 72     # RP + RCD + CAS + transfer
    channel_cycles: int = 4       # data-bus occupancy per line transfer
    page_size: int = 4096
    # FR-FCFS approximation: a row revisited while still inside the
    # scheduling window would have been batched with its predecessors, so
    # it is charged row-hit latency (see repro.memsys.controller).
    frfcfs_window_rows: int = 8
    frfcfs_window_cycles: int = 1200

    # Address interleaving across MCs (Section 3 / Figure 5)
    interleaving: str = PAGE_INTERLEAVING

    # Control-message size in bytes (request w/o data)
    control_bytes: int = 16
    # Critical-word-first delivery: the consumer restarts once this many
    # flits have arrived; the remaining flits still occupy link bandwidth
    # but are off the critical path.
    critical_word_flits: int = 2

    # Coherence: when True, writes that find remote sharers trigger
    # invalidations (directory -> sharers, with acks) and drop the stale
    # copies.  Off by default: the evaluated kernels are data-parallel
    # with disjoint write sets, and the paper's comparison holds the
    # protocol fixed between baseline and optimized runs either way.
    model_writes: bool = False

    # Per-nest phase accounting (adds bookkeeping to the hot loop;
    # off by default).
    track_phases: bool = False

    # Execution model
    threads_per_core: int = 1
    # Fraction of a non-L1-hit access's latency the core hides behind
    # independent work (the two-issue SPARC pipeline plus write buffering
    # and limited memory-level parallelism).  The thread's clock advances
    # by (1 - miss_overlap) of the measured latency; the reported
    # network/memory latencies themselves are unaffected.
    miss_overlap: float = 0.0
    # Per-application memory-level parallelism: applications whose bursts
    # keep several misses in flight (fma3d, minighost -- Figure 18)
    # effectively hide part of each miss behind the others.  The runner
    # adds ``mlp_overlap_step`` of overlap per unit of the program's
    # profiled ``mlp_demand`` above ``mlp_overlap_floor``, capped at
    # ``mlp_overlap_cap``.  This is what lets mapping M2's extra banks
    # absorb those applications' bursts (Figure 17).
    mlp_overlap_step: float = 0.06
    mlp_overlap_floor: float = 2.0
    mlp_overlap_cap: float = 0.35
    # Per-thread start offset (cycles): threads never leave the fork
    # barrier in the same cycle; staggered starts prevent artificial
    # lockstep convoys of misses that no real system exhibits.
    thread_stagger: int = 137
    # Layout-transformation runtime overhead (div/mod, strip-mining,
    # padding): the paper measured ~4% of execution time (Section 6.1).
    transform_overhead: float = 0.04

    def __post_init__(self) -> None:
        if self.interleaving not in (PAGE_INTERLEAVING,
                                     CACHE_LINE_INTERLEAVING):
            raise ValueError(f"unknown interleaving {self.interleaving!r}")
        if self.l2_line % self.l1_line:
            raise ValueError("L2 line must be a multiple of the L1 line")
        if self.page_size % self.l2_line:
            raise ValueError("page must be a multiple of the L2 line")

    # -- derived ----------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def interleave_unit(self) -> int:
        """Bytes per MC-interleave unit: L2 line or page (Table 1)."""
        if self.interleaving == CACHE_LINE_INTERLEAVING:
            return self.l2_line
        return self.page_size

    @property
    def data_flits(self) -> int:
        """Flits of an L2-line data message on the 16 B links."""
        return max(1, self.l2_line // self.link_bytes)

    @property
    def control_flits(self) -> int:
        return max(1, self.control_bytes // self.link_bytes)

    def mesh(self) -> Mesh:
        return Mesh(self.mesh_width, self.mesh_height)

    def mc_nodes(self, mesh: Optional[Mesh] = None) -> List[int]:
        mesh = mesh or self.mesh()
        return place_mcs(mesh, self.mc_placement, self.num_mcs)

    def default_mapping(self, mesh: Optional[Mesh] = None) -> L2ToMCMapping:
        """The default L2-to-MC mapping (M1, Figure 8a)."""
        mesh = mesh or self.mesh()
        return mapping_m1(mesh, self.mc_nodes(mesh))

    def effective_overlap(self, mlp_demand: float) -> float:
        """Miss overlap for an application with the given MLP demand."""
        extra = max(0.0, mlp_demand - self.mlp_overlap_floor) \
            * self.mlp_overlap_step
        return min(self.mlp_overlap_cap, self.miss_overlap + extra)

    def with_(self, **kwargs) -> "MachineConfig":
        """Copy with replacements (convenience over dataclasses.replace)."""
        return replace(self, **kwargs)

    # -- factories ---------------------------------------------------------
    @classmethod
    def paper_default(cls) -> "MachineConfig":
        """Table 1 verbatim: full-size caches, page interleaving, M1."""
        return cls()

    @classmethod
    def scaled_default(cls, scale: int = 16) -> "MachineConfig":
        """Table 1 shrunk by ``scale`` in cache capacity.

        Line sizes, latencies, topology and MC organization are kept; only
        capacities shrink, so miss *ratios* are preserved when workloads
        shrink their footprints by the same factor.
        """
        return cls(
            l1_size=max(cls.l1_line * cls.l1_ways,
                        (16 * 1024) // scale),
            l2_size=max(cls.l2_line * cls.l2_ways,
                        (256 * 1024) // scale),
        )
