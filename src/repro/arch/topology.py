"""Two-dimensional mesh topology with dimension-ordered (XY) routing.

The target architecture (Figure 1, Table 1) is a 2D mesh NoC: nodes are
core tiles connected by point-to-point links through per-node switches.
This module knows geometry only -- coordinates, Manhattan distances and XY
routes as sequences of directed-link ids.  Timing and contention live in
:mod:`repro.noc`.

Node numbering is row-major: node ``y * width + x`` sits at ``(x, y)``
with ``x`` growing east and ``y`` growing south, matching the core-ID
annotations of Figure 2.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class Mesh:
    """A ``width x height`` 2D mesh of nodes with directed links."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self._link_ids: Dict[Tuple[int, int], int] = {}
        for node in range(self.num_nodes):
            for neighbor in self._neighbors(node):
                self._link_ids[(node, neighbor)] = len(self._link_ids)

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def num_links(self) -> int:
        return len(self._link_ids)

    def coords(self, node: int) -> Tuple[int, int]:
        """``(x, y)`` position of a node id."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at position ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coords ({x}, {y}) outside mesh")
        return y * self.width + x

    def _neighbors(self, node: int) -> List[int]:
        x, y = self.coords(node)
        out = []
        if x + 1 < self.width:
            out.append(self.node_at(x + 1, y))
        if x > 0:
            out.append(self.node_at(x - 1, y))
        if y + 1 < self.height:
            out.append(self.node_at(x, y + 1))
        if y > 0:
            out.append(self.node_at(x, y - 1))
        return out

    def links(self) -> List[Tuple[int, int]]:
        """Every directed link as ``(src, dst)``, ordered by link id --
        the inverse of :meth:`link_id`, for per-link telemetry export."""
        out: List[Tuple[int, int]] = [(-1, -1)] * self.num_links
        for endpoints, link in self._link_ids.items():
            out[link] = endpoints
        return out

    def link_id(self, src: int, dst: int) -> int:
        """Id of the directed link between two adjacent nodes."""
        try:
            return self._link_ids[(src, dst)]
        except KeyError:
            raise ValueError(f"nodes {src} and {dst} are not adjacent")

    def distance(self, a: int, b: int) -> int:
        """Manhattan distance (number of links an XY route traverses)."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def route(self, src: int, dst: int) -> List[int]:
        """XY route as a list of directed-link ids (may be empty).

        Dimension-ordered: travel along X first, then along Y -- the
        deterministic, deadlock-free routing of Table 1.
        """
        links: List[int] = []
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        node = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = self.node_at(x, y)
            links.append(self.link_id(node, nxt))
            node = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = self.node_at(x, y)
            links.append(self.link_id(node, nxt))
            node = nxt
        return links

    def nearest(self, node: int, candidates: List[int]) -> int:
        """The candidate node closest to ``node`` (ties: lowest id)."""
        if not candidates:
            raise ValueError("no candidate nodes")
        return min(candidates, key=lambda c: (self.distance(node, c), c))

    def __repr__(self) -> str:
        return f"Mesh({self.width}x{self.height})"
