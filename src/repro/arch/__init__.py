"""Architecture model: mesh topology, MC placement, L2-to-MC clustering."""

from repro.arch.clustering import (Cluster, L2ToMCMapping,
                                   balanced_mapping, grid_mapping,
                                   grid_shape_for, mapping_m1, mapping_m2,
                                   partial_grid_mapping)
from repro.arch.config import (CACHE_LINE_INTERLEAVING, MachineConfig,
                               PAGE_INTERLEAVING)
from repro.arch.placement import (PLACEMENTS, corners, diagonal,
                                  edge_midpoints, perimeter, place_mcs)
from repro.arch.topology import Mesh

__all__ = [
    "CACHE_LINE_INTERLEAVING", "Cluster", "L2ToMCMapping", "MachineConfig",
    "balanced_mapping",
    "Mesh", "PAGE_INTERLEAVING", "PLACEMENTS", "corners", "diagonal",
    "edge_midpoints", "grid_mapping", "grid_shape_for", "mapping_m1",
    "mapping_m2", "partial_grid_mapping", "perimeter", "place_mcs",
]
