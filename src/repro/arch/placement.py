"""Memory-controller placements on the mesh.

The paper's default places 4 MCs at the mesh corners (Figure 8a, Table 1)
and evaluates two alternates, P2 and P3 (Figure 26), as well as larger MC
counts of 8 and 16 (Figure 27).  The original figures are diagrams; we
encode the natural readings, which also match the placements studied by
Abts et al. [19]:

* ``P1`` -- four corners (the default of Figure 8a),
* ``P2`` -- one MC at the midpoint of each mesh edge ("diamond"), which
  lowers the average distance-to-controller, consistent with the paper's
  finding that P2 is slightly best,
* ``P3`` -- MCs spread along the main diagonal.

For the MC-count sweep (Figure 27) we keep the corner style and add
edge-midpoint controllers (8 MCs) and a perimeter spread (16 MCs).
"""

from __future__ import annotations

from typing import List

from repro.arch.topology import Mesh


def corners(mesh: Mesh) -> List[int]:
    """P1: the four mesh corners, ordered NW, NE, SW, SE (Figure 8a)."""
    w, h = mesh.width, mesh.height
    return [mesh.node_at(0, 0), mesh.node_at(w - 1, 0),
            mesh.node_at(0, h - 1), mesh.node_at(w - 1, h - 1)]


def edge_midpoints(mesh: Mesh) -> List[int]:
    """P2: one MC at the midpoint of each edge (N, W, E, S)."""
    w, h = mesh.width, mesh.height
    return [mesh.node_at(w // 2, 0), mesh.node_at(0, h // 2),
            mesh.node_at(w - 1, h // 2), mesh.node_at(w // 2, h - 1)]


def diagonal(mesh: Mesh, count: int = 4) -> List[int]:
    """P3: MCs spread evenly along the main diagonal."""
    w, h = mesh.width, mesh.height
    out = []
    for i in range(count):
        x = (i * (w - 1)) // max(1, count - 1) if count > 1 else w // 2
        y = (i * (h - 1)) // max(1, count - 1) if count > 1 else h // 2
        out.append(mesh.node_at(x, y))
    return out


def perimeter(mesh: Mesh, count: int) -> List[int]:
    """``count`` MCs spread evenly around the mesh perimeter.

    Used for the MC-count sweep (Figure 27): 8 MCs = corners plus edge
    midpoints, 16 MCs = a denser perimeter spread.  Positions are chosen
    by walking the perimeter clockwise from the NW corner and sampling at
    equal arc lengths.
    """
    w, h = mesh.width, mesh.height
    walk: List[int] = []
    for x in range(w):                       # north edge, west to east
        walk.append(mesh.node_at(x, 0))
    for y in range(1, h):                    # east edge, going south
        walk.append(mesh.node_at(w - 1, y))
    for x in range(w - 2, -1, -1):           # south edge, east to west
        walk.append(mesh.node_at(x, h - 1))
    for y in range(h - 2, 0, -1):            # west edge, going north
        walk.append(mesh.node_at(0, y))
    if count > len(walk):
        raise ValueError(
            f"cannot place {count} MCs on a perimeter of {len(walk)} nodes")
    picks = sorted({(i * len(walk)) // count for i in range(count)})
    return [walk[p] for p in picks]


PLACEMENTS = {
    "P1": corners,
    "P2": edge_midpoints,
    "P3": diagonal,
}

#: Prefix of the explicit-placement encoding, ``"custom:n0,n1,..."``:
#: MC node ids listed in hardware-index order.  A plain string so it
#: travels anywhere a placement name does (``MachineConfig`` fields,
#: sweep axes, wire requests, ``RunSpec.key()``) -- the design-space
#: search (:mod:`repro.search`) emits candidates in this form.
CUSTOM_PREFIX = "custom:"


def custom_placement(nodes: List[int]) -> str:
    """Encode explicit MC node ids as a placement string."""
    return CUSTOM_PREFIX + ",".join(str(n) for n in nodes)


def parse_custom(mesh: Mesh, placement: str, count: int) -> List[int]:
    """Decode and validate a ``"custom:..."`` placement string."""
    body = placement[len(CUSTOM_PREFIX):]
    try:
        nodes = [int(part) for part in body.split(",") if part.strip()]
    except ValueError:
        raise ValueError(f"bad custom placement {placement!r}: node "
                         f"ids must be integers")
    if len(nodes) != count:
        raise ValueError(f"custom placement {placement!r} names "
                         f"{len(nodes)} nodes but the machine has "
                         f"{count} MCs")
    if len(set(nodes)) != len(nodes):
        raise ValueError(f"custom placement {placement!r} repeats a "
                         f"node")
    for node in nodes:
        if not 0 <= node < mesh.num_nodes:
            raise ValueError(f"custom placement {placement!r}: node "
                             f"{node} outside the "
                             f"{mesh.width}x{mesh.height} mesh")
    return nodes


def place_mcs(mesh: Mesh, placement: str = "P1", count: int = 4
              ) -> List[int]:
    """Resolve a placement name to MC node ids.

    ``placement`` is one of P1/P2/P3 for 4 MCs, or an explicit
    ``"custom:n0,n1,..."`` node list for any count; for other counts
    the perimeter spread is used regardless of the name.
    """
    if placement.startswith(CUSTOM_PREFIX):
        return parse_custom(mesh, placement, count)
    if count == 4 and placement in PLACEMENTS:
        return PLACEMENTS[placement](mesh)
    if placement == "P3":
        return diagonal(mesh, count)
    return perimeter(mesh, count)
