"""Physical-address interpretation (Section 3, Figure 5).

With ``N`` memory controllers, ``log(N)`` physical-address bits select
the controller.  Taken just above the cache-block offset they give
*cache-line interleaving*; taken just above the page offset they give
*page interleaving*.  This module computes, from a physical address:

* the owning MC (``(paddr / unit) % num_mcs``),
* the DRAM bank and row inside that MC's devices (row-buffer granularity
  = 4 KB, Table 1), and
* for shared-L2 systems, the home L2 bank (``(addr / l2_line) % cores``,
  Eq. 4 -- computed on the *virtual* address, since with cache-line
  interleaving translation leaves the selection bits alone).

Everything is vectorized; the simulator precomputes these per access.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import MachineConfig


class AddressMap:
    """Address-bit interpretation for one machine configuration."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.unit = config.interleave_unit
        self.num_mcs = config.num_mcs
        self.row_bytes = config.row_buffer_bytes
        self.banks_per_mc = config.banks_per_mc

    def mc_of(self, paddr: np.ndarray) -> np.ndarray:
        """Owning MC (hardware index) per physical address."""
        return (np.asarray(paddr, dtype=np.int64) // self.unit) \
            % self.num_mcs

    def local_of(self, paddr: np.ndarray) -> np.ndarray:
        """MC-local address: the MC-select bits stripped out.

        Each controller addresses only its own share of the physical
        space; the hardware removes the ``log(N)`` selection bits before
        bank/row decoding, so an MC's consecutive interleave units are
        *contiguous* in its devices (this is what makes a localized
        sweep fill whole DRAM rows).
        """
        p = np.asarray(paddr, dtype=np.int64)
        return (p // self.unit // self.num_mcs) * self.unit + p % self.unit

    def bank_of(self, paddr: np.ndarray) -> np.ndarray:
        """DRAM bank (within the owning MC) per physical address.

        Consecutive row-buffer-sized regions of an MC's local address
        stream rotate across its banks, the usual bank interleaving.
        """
        rows = self.local_of(paddr) // self.row_bytes
        return rows % self.banks_per_mc

    def row_of(self, paddr: np.ndarray) -> np.ndarray:
        """DRAM row (within the bank) per physical address."""
        rows = self.local_of(paddr) // self.row_bytes
        return rows // self.banks_per_mc

    def home_bank_of(self, vaddr: np.ndarray, num_cores: int) -> np.ndarray:
        """Home L2 bank per virtual address (Eq. 4; shared L2 only)."""
        return (np.asarray(vaddr, dtype=np.int64) // self.config.l2_line) \
            % num_cores
