"""Memory controllers with banked DRAM and FR-FCFS-style service.

Each controller owns ``banks_per_mc`` DRAM banks with open-row (open-page)
policy and a shared data channel.  Timing follows Table 1's DDR3-1600
derivation: a row-buffer hit costs ``row_hit_cycles`` (CAS + burst), a row
miss ``row_miss_cycles`` (precharge + activate + CAS + burst), and every
request occupies the channel for ``channel_cycles``.

Scheduling: the paper uses FR-FCFS [16] -- row hits first, then oldest
first.  Our simulator resolves requests atomically in global arrival
order, so literal reordering is impossible; the scheduler's row-batching
is approximated instead: each bank remembers the rows it touched within
the recent scheduling window (``frfcfs_window_rows`` rows /
``frfcfs_window_cycles`` cycles).  A request to such a row is charged
row-hit latency, because a real FR-FCFS queue holding both requests
would have serviced them back to back off the open row.  This preserves
the effect the optimization changes: a localized layout puts ~16
consecutive lines of a thread's sweep in one local row (vs. ~4 under the
default interleaving), so activations per line drop even when several
threads' streams interleave at the controller.  Queueing is modeled with
busy-until banks and a shared data channel; the wait is charged to the
request's memory latency (the paper's "time spent in the queue"), and
bank-queue occupancy (Figure 18) is its time-integral.

The *optimal scheme* of Section 2 is a flag: every request is served at
row-hit latency with no queueing, modeling "always the nearest MC and no
additional latency due to bank contention".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.faults.models import ControllerFaultModel


@dataclass
class ControllerStats:
    """Aggregated per-controller statistics."""

    requests: int = 0
    row_hits: int = 0
    queue_wait_total: float = 0.0
    busy_total: float = 0.0
    first_arrival: float = math.inf
    last_finish: float = 0.0
    bank_remaps: int = 0        # requests redirected off a dead bank
    offline_waits: int = 0      # requests that stalled for an offline MC
    offline_wait_total: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0

    @property
    def busy_elapsed(self) -> float:
        """The window this controller actually had work: first request
        arrival to last request finish (0 with no requests)."""
        if not self.requests or math.isinf(self.first_arrival):
            return 0.0
        return max(0.0, self.last_finish - self.first_arrival)

    def queue_occupancy(self, elapsed: float) -> float:
        """Mean number of requests waiting in the bank queues (Little's
        law on the accumulated waiting time), over the *whole* run.

        This dilutes the occupancy of a controller that sat idle for
        most of the run; :meth:`queue_occupancy_busy` normalizes by the
        controller's own active window instead.  Figure 18 wants the
        run-wide average (system-level pressure); diagnosing a single
        hot controller wants the busy-window one.  Report both.
        """
        return self.queue_wait_total / elapsed if elapsed > 0 else 0.0

    def queue_occupancy_busy(self) -> float:
        """Mean waiting requests over this controller's busy window
        (first arrival to last finish) -- undiluted by idle time."""
        busy = self.busy_elapsed
        return self.queue_wait_total / busy if busy > 0 else 0.0


class MemoryController:
    """One MC: open-row banks + shared channel, busy-until semantics."""

    def __init__(self, config: MachineConfig, node: int,
                 optimal: bool = False,
                 faults: Optional[ControllerFaultModel] = None,
                 mc_index: int = 0,
                 telemetry=None):
        self.config = config
        self.node = node
        self.optimal = optimal
        self.faults = faults
        self.mc_index = mc_index
        banks = config.banks_per_mc
        self.bank_busy: List[float] = [0.0] * banks
        self.channel_free: float = 0.0
        # FR-FCFS window per bank: recently serviced rows and their last
        # service times, most recent last.
        self._recent_rows: List[List[int]] = [[] for _ in range(banks)]
        self._recent_times: List[List[float]] = [[] for _ in range(banks)]
        self.stats = ControllerStats()
        # Optional repro.obs telemetry (obs=full): per-MC queue-wait and
        # row-hit streams over simulated time, plus a run-wide queue-wait
        # histogram.  None keeps the hot path free of any publishing.
        self._ts_wait = self._ts_hit = self._hist_wait = None
        if telemetry is not None:
            self._ts_wait = telemetry.series(
                f"mc.{mc_index}.queue_wait")
            self._ts_hit = telemetry.series(f"mc.{mc_index}.row_hit")
            self._hist_wait = telemetry.histogram("mc.queue_wait_cycles")
            self._tel_requests = telemetry.counter(
                f"mc.{mc_index}.requests")
            self._tel_row_hits = telemetry.counter(
                f"mc.{mc_index}.row_hits")

    def _is_row_hit(self, bank: int, row: int, now: float) -> bool:
        """Open-row hit, or a row still inside the FR-FCFS batching
        window (see the module docstring)."""
        rows = self._recent_rows[bank]
        times = self._recent_times[bank]
        horizon = now - self.config.frfcfs_window_cycles
        try:
            idx = rows.index(row)
        except ValueError:
            return False
        return times[idx] >= horizon or idx == len(rows) - 1

    def _touch_row(self, bank: int, row: int, when: float) -> None:
        rows = self._recent_rows[bank]
        times = self._recent_times[bank]
        try:
            idx = rows.index(row)
            del rows[idx]
            del times[idx]
        except ValueError:
            pass
        rows.append(row)
        times.append(when)
        if len(rows) > self.config.frfcfs_window_rows:
            del rows[0]
            del times[0]

    def service(self, bank: int, row: int, arrival: float
                ) -> Tuple[float, float, bool]:
        """Serve one request; returns ``(finish, queue_wait, row_hit)``.

        ``queue_wait`` is the time between arrival and the start of bank
        service -- the queueing component of the paper's memory latency.
        """
        stats = self.stats
        stats.requests += 1
        if arrival < stats.first_arrival:
            stats.first_arrival = arrival
        if self.optimal:
            finish = arrival + self.config.row_hit_cycles
            stats.row_hits += 1
            stats.busy_total += self.config.row_hit_cycles
            stats.last_finish = max(stats.last_finish, finish)
            if self._ts_wait is not None:
                self._publish(arrival, 0.0, True)
            return finish, 0.0, True

        faults = self.faults
        factor = 1.0
        if faults is not None:
            remapped = faults.remap_bank(self.mc_index, bank)
            if remapped != bank:
                stats.bank_remaps += 1
                bank = remapped
            online = faults.next_online(self.mc_index, arrival)
            if online > arrival and not math.isinf(online):
                # The request arrived during an offline window: it
                # waits at the controller until service resumes (the
                # failover path in the simulator normally diverts it
                # first; this covers windows with no live alternate).
                stats.offline_waits += 1
                stats.offline_wait_total += online - arrival
                arrival = online
            # A request that was already in flight when a *permanent*
            # outage began (dispatched while the MC was healthy,
            # arriving after it died) completes normally: waiting for an
            # infinite window would poison every downstream timestamp.
            factor = faults.slowdown(self.mc_index, arrival)

        start = max(arrival, self.bank_busy[bank], self.channel_free)
        hit = self._is_row_hit(bank, row, start)
        latency = (self.config.row_hit_cycles if hit
                   else self.config.row_miss_cycles) * factor
        finish = start + latency
        self.bank_busy[bank] = finish
        # The channel carries one burst per request; banks overlap their
        # internal latencies but transfers serialize.
        self.channel_free = start + self.config.channel_cycles * factor
        self._touch_row(bank, row, finish)

        wait = start - arrival
        stats.row_hits += int(hit)
        stats.queue_wait_total += wait
        stats.busy_total += latency
        stats.last_finish = max(stats.last_finish, finish)
        if self._ts_wait is not None:
            self._publish(start, wait, hit)
        return finish, wait, hit

    def _publish(self, when: float, wait: float, hit: bool) -> None:
        """Fold one serviced request into the run's telemetry (only
        wired when the run observes at ``obs=full``)."""
        self._ts_wait.record(when, wait)
        self._ts_hit.record(when, 1.0 if hit else 0.0)
        self._hist_wait.observe(wait)
        self._tel_requests.inc()
        if hit:
            self._tel_row_hits.inc()
