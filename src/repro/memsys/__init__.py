"""Memory system: address interleaving, DRAM banks, FR-FCFS controllers."""

from repro.memsys.address import AddressMap
from repro.memsys.controller import ControllerStats, MemoryController

__all__ = ["AddressMap", "ControllerStats", "MemoryController"]
