"""repro: reproduction of "Optimizing Off-Chip Accesses in Multicores".

A compiler-guided data-layout transformation for NoC-based manycores
(Ding et al., PLDI 2015), together with every substrate the evaluation
needs: an affine-program IR, a 2D-mesh NoC simulator with link
contention, private/shared (SNUCA) cache hierarchies, banked DRAM with
FR-FCFS-style controllers, and an OS page-allocation model.

Quick start (the :mod:`repro.api` facade)::

    import repro
    from repro.workloads import build_workload

    program = build_workload("swim")
    comparison = repro.compare(program)
    print(f"execution-time reduction: "
          f"{comparison.exec_time_reduction:.1%}")

    # one fully specified run, and a parallel design-space sweep
    result = repro.run(program=program, optimized=True)
    report = repro.sweep(program, workers=4,
                         mapping=["M1", "M2"], num_mcs=[4, 8])
"""

from repro.arch.clustering import (Cluster, L2ToMCMapping, grid_mapping,
                                   mapping_m1, mapping_m2,
                                   partial_grid_mapping)
from repro.arch.config import (CACHE_LINE_INTERLEAVING, MachineConfig,
                               PAGE_INTERLEAVING)
from repro.arch.topology import Mesh
from repro.core.pipeline import (ArrayPlan, LayoutTransformer,
                                 TransformationResult, original_layouts)
from repro.errors import (FrontendError, LayoutError, ReproError,
                          RequestError, SimulationError,
                          SimulationTimeout, SolverError, StoreError,
                          ValidationError)
from repro.faults import (BankFault, FaultPlan, LinkDegradation, LinkFault,
                          MCFault, PagePressure)
from repro.program.ir import (AffineRef, ArrayDecl, IndexedRef, LoopNest,
                              Program, identity_ref, shifted_ref)
from repro.sim.metrics import Comparison, RunMetrics
from repro.sim.multiprogram import WeightedSpeedupResult, run_multiprogram
from repro.frontend.lower import compile_kernel
from repro.sim.harness import (HardenedSweep, HarnessConfig, RunOutcome,
                               SweepReport, run_hardened)
from repro.sim.run import (RunResult, RunSpec, run_optimal_pair, run_pair,
                           run_simulation)
from repro.sim.sweep import Sweep
from repro.api import (CompareRequest, Experiment, Result, RunRequest,
                       SearchRequest, SweepRequest, SweepResult,
                       compare, run, search, sweep)
from repro import api
from repro import validate

__version__ = "1.0.0"

__all__ = [
    "AffineRef", "ArrayDecl", "ArrayPlan", "BankFault",
    "CACHE_LINE_INTERLEAVING", "Cluster", "Comparison",
    "CompareRequest", "Experiment", "FaultPlan", "FrontendError",
    "HardenedSweep", "HarnessConfig", "IndexedRef", "L2ToMCMapping",
    "LayoutError", "LayoutTransformer", "LinkDegradation", "LinkFault",
    "LoopNest", "MCFault", "MachineConfig", "Mesh", "PAGE_INTERLEAVING",
    "PagePressure", "Program", "ReproError", "RequestError", "Result",
    "RunMetrics", "RunOutcome", "RunRequest", "RunResult", "RunSpec",
    "SearchRequest",
    "SimulationError", "SimulationTimeout", "SolverError", "StoreError",
    "Sweep", "SweepReport", "SweepRequest", "SweepResult",
    "TransformationResult", "ValidationError", "WeightedSpeedupResult",
    "api",
    "compare", "compile_kernel", "grid_mapping",
    "identity_ref", "mapping_m1", "mapping_m2", "original_layouts",
    "partial_grid_mapping", "run", "run_hardened", "run_multiprogram",
    "run_optimal_pair", "run_pair", "run_simulation", "search",
    "shifted_ref", "sweep", "validate",
]
