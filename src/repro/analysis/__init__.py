"""Figure-oriented analyses: hop CDFs, MC traffic maps, summary tables."""

from repro.analysis.cdf import merge_hop_cdfs, pooled_hop_cdf
from repro.analysis.distribution import mc_access_map, skew_toward_cluster
from repro.analysis.plots import (bar_chart, cdf_plot, grouped_bar_chart,
                                  heat_grid)
from repro.analysis.tables import (format_percent_table, geometric_mean,
                                   improvement_summary)

__all__ = [
    "bar_chart", "cdf_plot", "format_percent_table", "geometric_mean",
    "grouped_bar_chart", "heat_grid", "improvement_summary",
    "mc_access_map", "merge_hop_cdfs", "pooled_hop_cdf",
    "skew_toward_cluster",
]
