"""One-shot experiment reports: suite results as a markdown document.

``build_report`` runs (or reuses) baseline/optimized pairs for a set of
applications under one configuration and renders a self-contained
markdown report -- the per-application table, suite averages, ASCII bar
charts, and the run's coverage statistics.  The CLI exposes it as
``repro-cli report``; EXPERIMENTS.md for the full evaluation is produced
by the benchmark harness instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.plots import bar_chart
from repro.analysis.tables import format_percent_table, improvement_summary
from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.core.pipeline import LayoutTransformer
from repro.sim.metrics import Comparison
from repro.sim.run import run_pair
from repro.workloads import build_workload

METRICS = ["onchip_net", "offchip_net", "offchip_mem", "exec_time"]
LABELS = {
    "onchip_net": "on-chip network latency reduction",
    "offchip_net": "off-chip network latency reduction",
    "offchip_mem": "off-chip memory latency reduction",
    "exec_time": "execution-time reduction",
}


@dataclass
class SuiteReport:
    """Results of one suite evaluation, renderable as markdown."""

    config: MachineConfig
    comparisons: Dict[str, Comparison]
    coverage: Dict[str, Dict[str, float]]

    def summary(self) -> Dict[str, Dict[str, float]]:
        return improvement_summary(self.comparisons)

    def to_markdown(self, title: str = "Suite report") -> str:
        cfg = self.config
        lines: List[str] = [f"# {title}", ""]
        lines.append(
            f"Configuration: {cfg.mesh_width}x{cfg.mesh_height} mesh, "
            f"{cfg.num_mcs} MCs ({cfg.mc_placement}), "
            f"{'shared' if cfg.shared_l2 else 'private'} L2, "
            f"{cfg.interleaving} interleaving.")
        lines.append("")
        summary = self.summary()
        lines.append("```")
        lines.append(format_percent_table(summary, METRICS,
                                          title="reductions"))
        lines.append("```")
        lines.append("")
        lines.append("## Execution-time reductions")
        lines.append("")
        lines.append("```")
        lines.append(bar_chart(
            {app: c.exec_time_reduction
             for app, c in self.comparisons.items()}))
        lines.append("```")
        lines.append("")
        lines.append("## Pass coverage")
        lines.append("")
        lines.append("| application | arrays optimized | refs satisfied |")
        lines.append("|---|---|---|")
        for app, cov in self.coverage.items():
            lines.append(f"| {app} | {cov['arrays']:.0%} | "
                         f"{cov['refs']:.0%} |")
        return "\n".join(lines) + "\n"


def build_report(apps: Sequence[str], config: MachineConfig,
                 mapping: Optional[L2ToMCMapping] = None,
                 scale: float = 1.0) -> SuiteReport:
    """Run the pairs and collect coverage for the given applications."""
    comparisons: Dict[str, Comparison] = {}
    coverage: Dict[str, Dict[str, float]] = {}
    transformer = LayoutTransformer(config, mapping)
    for app in apps:
        program = build_workload(app, scale)
        _, _, comparison = run_pair(program, config, mapping=mapping)
        comparisons[app] = comparison
        result = transformer.run(program)
        coverage[app] = {"arrays": result.pct_arrays_optimized,
                         "refs": result.pct_refs_satisfied}
    return SuiteReport(config=config, comparisons=comparisons,
                       coverage=coverage)
