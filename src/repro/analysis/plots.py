"""Terminal plots: ASCII bar charts and CDF curves for the figures.

The benchmark harness prints tables; these helpers render the same data
the way the paper's figures do -- horizontal bars per application
(Figures 4/14/16/22), grouped bars (Figure 17), and step curves for the
hop CDFs (Figure 15) -- entirely in text, so results are inspectable in
any terminal or CI log.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def bar_chart(values: Mapping[str, float], title: str = "",
              width: int = 40, unit: str = "%",
              vmax: Optional[float] = None) -> str:
    """Horizontal bars, one per labeled value.

    Values may be negative (bars extend left of the axis).  ``vmax``
    fixes the scale; by default the largest magnitude fills the width.
    """
    if not values:
        return title
    scale = vmax if vmax is not None else \
        max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        frac = max(-1.0, min(1.0, value / scale))
        n = int(round(abs(frac) * width))
        bar = ("-" if value < 0 else "#") * n
        shown = value * 100 if unit == "%" else value
        lines.append(f"{label:<{label_width}} |{bar:<{width}} "
                     f"{shown:7.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(rows: Mapping[str, Mapping[str, float]],
                      series: Sequence[str], title: str = "",
                      width: int = 30) -> str:
    """Grouped horizontal bars: one group per row, one bar per series."""
    if not rows:
        return title
    scale = max((abs(v) for row in rows.values()
                 for v in row.values()), default=1.0) or 1.0
    label_width = max(len(k) for k in rows)
    series_width = max(len(s) for s in series)
    lines: List[str] = [title] if title else []
    for label, row in rows.items():
        for idx, key in enumerate(series):
            value = row.get(key, 0.0)
            n = int(round(min(1.0, abs(value) / scale) * width))
            bar = ("-" if value < 0 else "#") * n
            prefix = label if idx == 0 else ""
            lines.append(f"{prefix:<{label_width}} {key:<{series_width}}"
                         f" |{bar:<{width}} {value * 100:6.1f}%")
        lines.append("")
    return "\n".join(lines).rstrip()


def cdf_plot(series: Mapping[str, Sequence[float]], title: str = "",
             height: int = 10) -> str:
    """Step curves for CDFs over hop counts 0..N (Figure 15).

    Each series is a dense list of values in [0, 1]; distinct markers
    per series, ``*`` where curves overlap.
    """
    if not series:
        return title
    markers = "ox+@%&"
    length = max(len(v) for v in series.values())
    grid = [[" "] * length for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        for x, v in enumerate(values):
            y = height - 1 - int(round(min(1.0, max(0.0, v))
                                       * (height - 1)))
            grid[y][x] = "*" if grid[y][x] not in (" ", marker) \
                else marker
    lines: List[str] = [title] if title else []
    for row_idx, row in enumerate(grid):
        frac = 1.0 - row_idx / (height - 1)
        lines.append(f"{frac:4.1f} |" + "".join(row))
    lines.append("     +" + "-" * length)
    axis = [" "] * length
    for x in range(0, length, 4):
        for i, ch in enumerate(str(x)):
            if x + i < length:
                axis[x + i] = ch
    lines.append("      " + "".join(axis) + "  (hops)")
    legend = "  ".join(f"{m}={n}" for (n, _), m
                       in zip(series.items(), markers))
    lines.append(f"      {legend}")
    return "\n".join(lines)


def heat_grid(grid: Sequence[Sequence[float]], title: str = "") -> str:
    """Render a 2D fraction map (Figure 13) with density characters."""
    ramp = " .:-=+*#%@"
    flat = [v for row in grid for v in row]
    top = max(flat) or 1.0
    lines: List[str] = [title] if title else []
    for row in grid:
        cells = []
        for v in row:
            idx = int(round(min(1.0, v / top) * (len(ramp) - 1)))
            cells.append(ramp[idx] * 2)
        lines.append("".join(cells))
    lines.append(f"(scale: blank=0, '@'={top:.1%} of requests)")
    return "\n".join(lines)
