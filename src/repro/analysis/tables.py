"""Result-table helpers shared by the benchmark harness.

The benchmarks print the same rows the paper's figures chart: one row per
application with the four latency/time reductions, plus suite averages.
These helpers keep the formatting uniform and testable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.sim.metrics import Comparison


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 on empty input)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def improvement_summary(rows: Mapping[str, Comparison]
                        ) -> Dict[str, Dict[str, float]]:
    """Per-application four-metric reductions plus the arithmetic mean
    row the paper reports ("average improvements ... in that order")."""
    out: Dict[str, Dict[str, float]] = {}
    for name, comparison in rows.items():
        out[name] = comparison.as_row()
    if out:
        keys = ["onchip_net", "offchip_net", "offchip_mem", "exec_time"]
        out["average"] = {
            k: sum(row[k] for name, row in out.items()
                   if name != "average") / len(rows)
            for k in keys}
    return out


def format_percent_table(rows: Mapping[str, Mapping[str, float]],
                         columns: Sequence[str],
                         title: str = "") -> str:
    """Fixed-width text table with percentage cells."""
    lines: List[str] = []
    if title:
        lines.append(title)
    name_width = max([len(n) for n in rows] + [len("benchmark")])
    header = "benchmark".ljust(name_width) + "".join(
        f"{c:>16}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        cells = "".join(f"{row.get(c, 0.0):>15.1%} " for c in columns)
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)


def format_value_table(rows: Mapping[str, Mapping[str, float]],
                       columns: Sequence[str], title: str = "",
                       fmt: str = "{:>15.2f} ") -> str:
    """Fixed-width text table with plain numeric cells."""
    lines: List[str] = []
    if title:
        lines.append(title)
    name_width = max([len(n) for n in rows] + [len("benchmark")])
    header = "benchmark".ljust(name_width) + "".join(
        f"{c:>16}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        cells = "".join(fmt.format(row.get(c, 0.0)) for c in columns)
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)
