"""Hop-count CDFs: the data behind Figure 15.

Figure 15 pools all applications and plots, for on-chip and off-chip
requests separately, the fraction of requests traversing ``x`` or fewer
links in the original and optimized executions.  These helpers merge the
per-run hop histograms collected in :class:`~repro.sim.metrics.RunMetrics`
into such pooled CDFs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

from repro.sim.metrics import RunMetrics


def merge_hop_cdfs(counters: Iterable[Counter]) -> Dict[int, float]:
    """Pool hop histograms and return ``{hops: P(request <= hops)}``."""
    total_counter: Counter = Counter()
    for counter in counters:
        total_counter.update(counter)
    total = sum(total_counter.values())
    if total == 0:
        return {}
    cdf = {}
    running = 0
    for hops in range(max(total_counter) + 1):
        running += total_counter.get(hops, 0)
        cdf[hops] = running / total
    return cdf


def pooled_hop_cdf(runs: Sequence[RunMetrics], kind: str = "offchip"
                   ) -> Dict[int, float]:
    """CDF over all applications' requests of one kind."""
    if kind == "offchip":
        return merge_hop_cdfs(m.offchip_hops for m in runs)
    if kind == "onchip":
        return merge_hop_cdfs(m.onchip_hops for m in runs)
    raise ValueError(f"unknown request kind {kind!r}")


def cdf_rows(cdf: Dict[int, float], max_hops: int) -> List[float]:
    """Dense CDF values for hops 0..max_hops (plot-ready series)."""
    rows = []
    last = 0.0
    for hops in range(max_hops + 1):
        last = cdf.get(hops, last)
        rows.append(last)
    return rows
