"""Spatial distribution of off-chip requests (Figure 13).

Figure 13 plots, over the 8x8 node grid, the fraction of all off-chip
requests to one controller (MC1) that each node issued -- showing that
the optimization skews a controller's traffic toward its nearby cores.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.arch.clustering import L2ToMCMapping
from repro.sim.metrics import RunMetrics


def mc_access_map(metrics: RunMetrics, mc: int,
                  mesh_width: int, mesh_height: int) -> np.ndarray:
    """Per-node fraction of requests to controller ``mc``, as a 2D grid.

    ``result[y, x]`` is the fraction of all off-chip requests destined to
    ``mc`` that were issued by the node at ``(x, y)``.
    """
    if metrics.mc_node_requests is None:
        raise ValueError("run collected no per-node MC request counts")
    row = metrics.mc_node_requests[mc].astype(np.float64)
    total = row.sum()
    if total > 0:
        row = row / total
    return row.reshape(mesh_height, mesh_width)


def skew_toward_cluster(metrics: RunMetrics, mapping: L2ToMCMapping,
                        mc: int) -> float:
    """Fraction of a controller's requests issued from its own cluster.

    The summary statistic of Figure 13: near 1.0 after optimization,
    near ``cores_per_cluster / cores`` before.
    """
    if metrics.mc_node_requests is None:
        raise ValueError("run collected no per-node MC request counts")
    cluster = next(ci for ci, c in enumerate(mapping.clusters)
                   if mc in c.mc_indices)
    cores = set(mapping.clusters[cluster].cores)
    row = metrics.mc_node_requests[mc]
    total = int(row.sum())
    if total == 0:
        return 0.0
    local = int(sum(row[node] for node in cores))
    return local / total


def distance_weighted_hops(metrics: RunMetrics, mapping: L2ToMCMapping
                           ) -> float:
    """Mean request-weighted node-to-controller distance, all MCs."""
    if metrics.mc_node_requests is None:
        raise ValueError("run collected no per-node MC request counts")
    mesh = mapping.mesh
    total = 0
    weighted = 0.0
    for mc, node_counts in enumerate(metrics.mc_node_requests):
        mc_node = mapping.mc_nodes[mc]
        for node, count in enumerate(node_counts):
            if count:
                weighted += count * mesh.distance(node, mc_node)
                total += count
    return weighted / total if total else 0.0
