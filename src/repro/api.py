"""The unified experiment facade: ``repro.run`` / ``repro.sweep`` /
``repro.compare``.

Historically the public entry points were scattered --
:func:`repro.sim.run.run_simulation`, :class:`repro.sim.sweep.Sweep`,
:class:`repro.sim.harness.HardenedSweep`, and the CLI each with their
own conventions.  This module is the stable, documented surface over
all of them; the old import paths keep working as thin aliases.

Naming scheme
-------------
* :class:`Experiment` (= :class:`repro.sim.run.RunSpec`) -- everything
  one simulated execution needs, fully specified and picklable.
* :class:`Result` (= :class:`repro.sim.run.RunResult`) -- one
  experiment's metrics plus inspectable artifacts.
* :class:`SweepResult` (= :class:`repro.sim.harness.SweepReport`) --
  the rows, failures and resume statistics of a sweep; ``to_csv()``
  emits the one canonical schema regardless of which engine ran it.

Quick start::

    import repro
    from repro.workloads import build_workload

    program = build_workload("swim")
    result = repro.run(program=program, optimized=True)

    report = repro.sweep(program, workers=4,
                         mapping=["M1", "M2"], num_mcs=[4, 8])
    print(report.to_csv())

    comparison = repro.compare(program)
    print(f"{comparison.exec_time_reduction:.1%}")

Every sweep accepts ``workers=N`` to fan grid points out to a process
pool (see :mod:`repro.sim.executor`); results are bit-identical to a
serial run.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.faults.plan import FaultPlan
from repro.program.ir import Program
from repro.sim.harness import HardenedSweep, HarnessConfig, SweepReport
from repro.sim.metrics import Comparison
from repro.sim.run import (RunResult, RunSpec, run_pair, run_simulation)
from repro.sim.sweep import Sweep

__all__ = ["Experiment", "Result", "SweepResult", "compare", "run",
           "sweep"]

#: The documented names for the spec/result pair.
Experiment = RunSpec
Result = RunResult
SweepResult = SweepReport


def _default_config() -> MachineConfig:
    return MachineConfig.scaled_default().with_(interleaving="cache_line")


def run(experiment: Optional[Experiment] = None, *,
        program: Optional[Program] = None,
        config: Optional[MachineConfig] = None,
        **spec_kw) -> Result:
    """Execute one experiment end to end.

    Either pass a fully built :class:`Experiment`, or pass ``program=``
    (plus any :class:`Experiment` field as a keyword) and the facade
    assembles it with the default scaled machine::

        repro.run(repro.Experiment(program=p, config=c, optimized=True))
        repro.run(program=p, optimized=True, seed=3)

    ``validate="metrics"`` / ``validate="strict"`` runs the
    :mod:`repro.validate` invariant sanitizer over the finished run and
    raises :class:`~repro.errors.ValidationError` on any breach.
    ``obs="spans"`` / ``obs="full"`` observes the run (:mod:`repro.obs`)
    and attaches the resulting bundle as ``result.obs``.
    ``engine="reference"`` selects the original every-access event loop
    instead of the default hit-filtered fast loop; the two are
    bit-identical (see docs/performance.md).
    ``store="dir"`` consults the persistent result store
    (:mod:`repro.store`) before simulating and persists the result
    after; a warm hit replays bit-identical metrics with zero
    simulation work (see docs/robustness.md).
    """
    if experiment is not None:
        if program is not None or config is not None or spec_kw:
            raise ValueError(
                "pass either a built Experiment or keyword fields, "
                "not both")
        return run_simulation(experiment)
    if program is None:
        raise ValueError("run() needs an Experiment or a program=")
    return run_simulation(Experiment(program=program,
                                     config=config or _default_config(),
                                     **spec_kw))


def compare(program: Program,
            config: Optional[MachineConfig] = None, *,
            mapping: Optional[L2ToMCMapping] = None,
            page_policy: str = "auto",
            localize_offchip: bool = True) -> Comparison:
    """Baseline vs. optimized under one configuration -- the comparison
    every per-application bar of the paper's figures reports.  The two
    underlying :class:`Result`\\ s stay reachable through the returned
    comparison's ``base``/``opt`` metrics."""
    _, _, comparison = run_pair(program, config or _default_config(),
                                mapping=mapping, page_policy=page_policy,
                                localize_offchip=localize_offchip)
    return comparison


def sweep(program: Program, *,
          config: Optional[MachineConfig] = None,
          workers: int = 1,
          hardened: bool = False,
          checkpoint: Optional[str] = None,
          harness: Optional[HarnessConfig] = None,
          fault_plan: Optional[FaultPlan] = None,
          seed: int = 0,
          validate: str = "off",
          obs: str = "off",
          engine: str = "fast",
          store: Optional[str] = None,
          progress: Optional[Callable] = None,
          max_points: Optional[int] = None,
          **axes: Iterable) -> SweepResult:
    """Run a cartesian configuration sweep and return its
    :class:`SweepResult`.

    Axes are keyword lists (``mapping=["M1", "M2"], num_mcs=[4, 8]``;
    see :data:`repro.sim.executor.CONFIG_AXES`).  ``workers=N`` runs
    grid points on a process pool, bit-identical to serial.

    The plain engine memoizes and raises on failure; requesting
    ``hardened=True`` -- implied by ``checkpoint``, ``harness`` or
    ``max_points`` -- runs every point under the timeout/retry/
    checkpoint harness instead, collecting failures as rows in
    ``result.failures``.

    ``validate`` applies the :mod:`repro.validate` level to every run in
    the sweep; under the hardened engine a validation breach becomes a
    failure row (kind ``validation``) instead of aborting the sweep.

    ``obs`` applies the :mod:`repro.obs` level to every run; everything
    observed comes back merged as ``result.obs``, ready for the
    exporters (one Chrome trace with per-run lanes).  ``progress`` is
    the periodic reporting hook: under the hardened engine it receives
    ``(wave_index, done, failed, total)`` after every checkpoint wave,
    under the plain engine each completed
    :class:`~repro.sim.executor.PointOutcome`.

    ``engine`` selects the event-loop implementation for every run
    (``"fast"``, the default, or ``"reference"``); results are
    bit-identical either way.

    ``store`` names a persistent result-store directory
    (:mod:`repro.store`): every run in the sweep replays from it when
    a record exists and persists its result otherwise, and hardened
    sweeps additionally resume completed rows from it across
    processes.  Results are bit-identical with the store on or off;
    ``result.store_hits`` / ``result.store_misses`` report the
    traffic.
    """
    hardened = (hardened or checkpoint is not None
                or harness is not None or max_points is not None)
    if hardened:
        return HardenedSweep(program, config, harness=harness,
                             checkpoint=checkpoint, fault_plan=fault_plan,
                             seed=seed, workers=workers,
                             validate=validate, obs=obs, engine=engine,
                             store=store
                             ).run(max_points=max_points,
                                   progress=progress, **axes)
    runner = Sweep(program, config, workers=workers,
                   fault_plan=fault_plan, seed=seed, validate=validate,
                   obs=obs, engine=engine, store=store)
    points = runner.run(progress=progress, **axes)
    return SweepResult(rows=[point.row() for point in points],
                       points=list(points), obs=runner.collected_obs(),
                       store_hits=runner.store_hits,
                       store_misses=runner.store_misses)
