"""The compiler pass: the paper's primary contribution (Sections 4-5)."""

from repro.core.data_to_core import (DataToCoreResult, RefSystem,
                                     data_to_core_mapping,
                                     partition_vector,
                                     submatrix_without_column)
from repro.core.dependence import (DependenceResult, LegalityReport,
                                   check_parallelization, check_program)
from repro.core.layout import (ClusteredLayout, Layout, RowMajorLayout,
                               SharedL2Layout, TransformedLayout)
from repro.core.pipeline import (ArrayPlan, LayoutTransformer,
                                 TransformationResult, original_layouts)

__all__ = [
    "ArrayPlan", "ClusteredLayout", "DataToCoreResult",
    "DependenceResult", "LegalityReport", "Layout", "RefSystem",
    "check_parallelization", "check_program",
    "LayoutTransformer", "RowMajorLayout", "SharedL2Layout",
    "TransformationResult", "TransformedLayout", "data_to_core_mapping",
    "original_layouts", "partition_vector", "submatrix_without_column",
]
