"""Choosing among candidate L2-to-MC mappings (Section 4).

The paper notes that fully automatic derivation of the best L2-to-MC
mapping is impractical, but a compiler analysis can rank a *given set* of
candidate mappings by weighing two metrics:

1. **distance-to-MC** -- the mean hop count from a core to its cluster's
   controllers (lower = better locality), and
2. **memory-level parallelism** -- whether the banks behind a cluster's
   controllers can absorb the application's burst demand (insufficient
   banks = queueing; Figure 18).

Their preliminary evaluation shows the analysis correctly prefers M2 over
M1 for ``fma3d`` and ``minighost`` (high bank-queue occupancy) and M1 for
everything else.  We reproduce that: the MLP penalty is the shortfall
between the application's burst demand (a profile-derived property of the
:class:`~repro.program.ir.Program`) and the banks a cluster can reach,
scaled by a queueing weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.program.ir import Program


@dataclass(frozen=True)
class MappingScore:
    """Score breakdown for one candidate mapping (lower total = better)."""

    mapping: L2ToMCMapping
    distance: float
    mlp_penalty: float
    queue_weight: float

    @property
    def total(self) -> float:
        return self.distance + self.queue_weight * self.mlp_penalty


# How many concurrent requests one controller sustains before its queue
# builds up: its data channel pipelines roughly this many bank accesses
# (row misses considered -- raw bank count overstates it badly, see the
# bank-queue occupancies of Figure 18).
MC_CONCURRENCY = 4.0


def score_mapping(mapping: L2ToMCMapping, program: Program,
                  config: MachineConfig,
                  queue_weight: float = 2.0) -> MappingScore:
    """Score one mapping for one application.

    The distance term is the mean core-to-assigned-MC hop count.  The MLP
    penalty is ``max(0, demand - k * MC_CONCURRENCY)``: how many of the
    application's burst requests per cluster exceed what the cluster's
    controllers sustain without queueing.  ``queue_weight`` converts
    queued requests into equivalent hops (a queued request waits roughly
    a bank service time, which is worth a few hops of network latency).
    """
    sustained = mapping.mcs_per_cluster * MC_CONCURRENCY
    penalty = max(0.0, program.mlp_demand - sustained)
    return MappingScore(mapping=mapping,
                        distance=mapping.avg_distance_to_mc(),
                        mlp_penalty=penalty,
                        queue_weight=queue_weight)


def select_mapping(candidates: Sequence[L2ToMCMapping], program: Program,
                   config: MachineConfig,
                   queue_weight: float = 2.0) -> MappingScore:
    """Pick the best-scoring candidate (ties go to the earlier one)."""
    if not candidates:
        raise ValueError("no candidate mappings")
    scores = [score_mapping(m, program, config, queue_weight)
              for m in candidates]
    best = scores[0]
    for score in scores[1:]:
        if score.total < best.total:
            best = score
    return best


def rank_mappings(candidates: Sequence[L2ToMCMapping], program: Program,
                  config: MachineConfig,
                  queue_weight: float = 2.0) -> List[MappingScore]:
    """All candidates scored, best first (for reports and tests)."""
    scores = [score_mapping(m, program, config, queue_weight)
              for m in candidates]
    return sorted(scores, key=lambda s: s.total)
