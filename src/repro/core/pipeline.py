"""Algorithm 1: the end-to-end layout transformation pass.

For every array in the program (outer loop, Algorithm 1 line 16):

1. gather all references to it across all nests (Section 5.5: references
   from different nests are treated uniformly -- their weights accumulate
   per layout preference);
2. replace indexed references by profiled affine approximations, skipping
   those whose approximation error exceeds the gate (Section 5.4);
3. determine the Data-to-Core mapping ``U`` (Section 5.2) from the
   heaviest solvable homogeneous system;
4. customize the layout for the cache attribute (private vs shared L2)
   and the interleaving granularity (cache line vs page), per Section 5.3.

The result carries one :class:`~repro.core.layout.Layout` per array plus
the Table 2 statistics: which arrays were optimized and what fraction of
(dynamic) references the chosen layout satisfies.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.core.customization import private_l2_layout, shared_l2_layout
from repro.core.data_to_core import (DataToCoreResult, RefSystem,
                                     data_to_core_mapping)
from repro.core.indexed import (AffineApproximation, DEFAULT_ERROR_GATE,
                                approximate_indexed)
from repro.core.layout import Layout, RowMajorLayout
from repro.errors import LayoutError, ReproError, SolverError
from repro.obs.tracer import obs_span
from repro.program.ir import (AffineRef, ArrayDecl, IndexedRef, Program)


@dataclass
class ArrayPlan:
    """Per-array outcome of the pass."""

    array: ArrayDecl
    layout: Layout
    optimized: bool
    reason: str
    mapping_result: Optional[DataToCoreResult] = None
    satisfied_weight: int = 0
    total_weight: int = 0
    approximations: List[AffineApproximation] = field(default_factory=list)
    # Set when the pass degraded this array after a solver/customization
    # failure: the structured diagnostic explaining the downgrade.
    error: Optional[ReproError] = None

    @property
    def satisfaction(self) -> float:
        if self.total_weight == 0:
            return 0.0
        return self.satisfied_weight / self.total_weight


@dataclass
class TransformationResult:
    """The pass output: layouts plus the Table 2 coverage statistics."""

    program: Program
    plans: Dict[str, ArrayPlan]

    @property
    def layouts(self) -> Dict[str, Layout]:
        return {name: plan.layout for name, plan in self.plans.items()}

    @property
    def pct_arrays_optimized(self) -> float:
        """Table 2, second column: share of referenced arrays optimized."""
        referenced = [p for p in self.plans.values() if p.total_weight > 0]
        if not referenced:
            return 0.0
        return sum(1 for p in referenced if p.optimized) / len(referenced)

    @property
    def pct_refs_satisfied(self) -> float:
        """Table 2, third column: dynamically weighted reference
        satisfaction across all arrays."""
        total = sum(p.total_weight for p in self.plans.values())
        if total == 0:
            return 0.0
        satisfied = sum(p.satisfied_weight for p in self.plans.values())
        return satisfied / total

    @property
    def any_transformed(self) -> bool:
        return any(p.optimized for p in self.plans.values())

    @property
    def diagnostics(self) -> List[ReproError]:
        """Structured errors from arrays the pass degraded (in program
        array order); empty when every array planned cleanly."""
        return [p.error for p in self.plans.values() if p.error is not None]

    @property
    def degraded_arrays(self) -> List[str]:
        return [name for name, p in self.plans.items()
                if p.error is not None]


class LayoutTransformer:
    """The compiler pass (Algorithm 1), configured once and run per program.

    Parameters
    ----------
    config:
        Machine configuration; supplies the cache attribute (private or
        shared L2) and the interleaving granularity.
    mapping:
        The user-provided L2-to-MC mapping (defaults to M1 when omitted,
        as in Section 6.1).
    error_gate:
        Maximum tolerated relative error of an indexed-reference affine
        approximation (Section 5.4 cites 30%).
    localize_offchip:
        Shared-L2 only: apply the delta-skip that trades a little on-chip
        locality for off-chip locality.  ``False`` is the ablation.
    min_satisfaction:
        Profitability gate: when the best solvable system covers less
        than this fraction of an array's dynamic references (e.g. only a
        tiny initialization sweep is compatible while the hot compute
        loops are not), transforming would thrash the hot loops'
        locality, so the array is left in its original layout.
    """

    def __init__(self, config: MachineConfig,
                 mapping: Optional[L2ToMCMapping] = None,
                 error_gate: float = DEFAULT_ERROR_GATE,
                 localize_offchip: bool = True,
                 min_satisfaction: float = 0.5):
        self.config = config
        self.mapping = mapping or config.default_mapping()
        self.error_gate = error_gate
        self.localize_offchip = localize_offchip
        self.min_satisfaction = min_satisfaction

    @property
    def num_threads(self) -> int:
        return self.config.num_cores * self.config.threads_per_core

    def run(self, program: Program) -> TransformationResult:
        """Plan every array, degrading per array on failure.

        A solver or customization failure never aborts the pass: the
        affected array falls back to its original (row-major) layout
        with a structured diagnostic recorded on its plan, and every
        other array is still optimized -- the compile-side analogue of
        the simulator's graceful degradation.
        """
        plans: Dict[str, ArrayPlan] = {}
        for array in program.arrays:
            try:
                plans[array.name] = self._plan_array(program, array)
            except ReproError as err:
                if err.array is None:
                    err.array = array.name
                plans[array.name] = ArrayPlan(
                    array, RowMajorLayout(array), False,
                    f"degraded to original layout: {err}", error=err)
            except Exception as exc:  # defensive: solver bugs degrade too
                # The one catch-all in the pass.  The captured traceback
                # rides on the plan's error context, so the original
                # failure stays diagnosable after degradation.
                err = SolverError(f"unexpected failure: {exc}",
                                  array=array.name, cause=exc,
                                  traceback=traceback.format_exc())
                plans[array.name] = ArrayPlan(
                    array, RowMajorLayout(array), False,
                    f"degraded to original layout: {err}", error=err)
        return TransformationResult(program=program, plans=plans)

    # -- per-array ---------------------------------------------------------
    def _plan_array(self, program: Program, array: ArrayDecl) -> ArrayPlan:
        pairs = program.references_to(array)
        if not pairs:
            return ArrayPlan(array, RowMajorLayout(array), False,
                             "no references")

        systems: List[RefSystem] = []
        rejected_weight = 0
        approximations: List[AffineApproximation] = []
        for nest, ref in pairs:
            weight = nest.trip_weight
            lo = nest.bounds[nest.parallel_dim][0]
            if isinstance(ref, AffineRef):
                systems.append(RefSystem(ref.access, ref.offset,
                                         nest.parallel_dim, lo, weight))
            elif isinstance(ref, IndexedRef):
                try:
                    approx = approximate_indexed(nest, ref,
                                                 self.error_gate)
                except ReproError as exc:
                    # Known failure mode: re-raise with the array/nest
                    # attributed.  Anything else is a genuine bug and
                    # falls through to run()'s defensive catch-all.
                    raise SolverError(
                        f"affine approximation failed: {exc.message}",
                        array=array.name, nest=nest.name, cause=exc)
                approximations.append(approx)
                if approx.accepted:
                    systems.append(RefSystem(
                        approx.reference.access, approx.reference.offset,
                        nest.parallel_dim, lo, weight))
                else:
                    # The paper "simply does not optimize those
                    # references"; their weight counts as unsatisfied.
                    rejected_weight += weight

        total_weight = sum(r.weight for r in systems) + rejected_weight
        if not systems:
            return ArrayPlan(array, RowMajorLayout(array), False,
                             "all references are unapproximable indexed "
                             "accesses", total_weight=total_weight,
                             approximations=approximations)

        try:
            with obs_span("pipeline.solve", cat="compile",
                          array=array.name, systems=len(systems)):
                result = data_to_core_mapping(systems)
        except ReproError as exc:
            message = getattr(exc, "message", str(exc))
            raise SolverError(f"Data-to-Core solver failed: {message}",
                              array=array.name, cause=exc)
        if not result.optimized:
            return ArrayPlan(array, RowMajorLayout(array), False,
                             "no nontrivial partition vector",
                             mapping_result=result,
                             total_weight=total_weight,
                             approximations=approximations)
        if result.satisfaction < self.min_satisfaction:
            return ArrayPlan(array, RowMajorLayout(array), False,
                             "chosen layout satisfies too few references",
                             mapping_result=result,
                             total_weight=total_weight,
                             approximations=approximations)

        try:
            with obs_span("pipeline.customize", cat="compile",
                          array=array.name):
                layout = self._customize(array, result)
        except ReproError as exc:
            message = getattr(exc, "message", str(exc))
            raise LayoutError(f"layout customization failed: {message}",
                              array=array.name, cause=exc)
        return ArrayPlan(array, layout, True, "optimized",
                         mapping_result=result,
                         satisfied_weight=result.satisfied_weight,
                         total_weight=total_weight,
                         approximations=approximations)

    def _customize(self, array: ArrayDecl,
                   result: DataToCoreResult) -> Layout:
        if self.config.shared_l2:
            # Home banks interleave at L2-line granularity (Eq. 4); the
            # paper evaluates shared L2 with cache-line interleaving.
            return shared_l2_layout(
                array, result.transform, self.mapping,
                unit_bytes=self.config.l2_line,
                num_threads=self.num_threads,
                localize_offchip=self.localize_offchip,
                partition_anchor=result.partition_anchor)
        return private_l2_layout(
            array, result.transform, self.mapping,
            unit_bytes=self.config.interleave_unit,
            num_threads=self.num_threads,
            partition_anchor=result.partition_anchor)


def original_layouts(program: Program) -> Dict[str, Layout]:
    """Row-major layouts for every array: the unoptimized baseline."""
    return {a.name: RowMajorLayout(a) for a in program.arrays}
