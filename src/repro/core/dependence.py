"""Array dependence analysis: parallelization legality.

The paper's pipeline runs *after* "a loop transformation guided by array
dependence analysis" has parallelized the code (Section 6.1), and its
introduction argues for data transformations precisely because they are
"not affected by dependences".  A self-respecting source-to-source
translator still needs the analysis, for two jobs:

* **legality** -- verify that the loop a nest is parallelized on carries
  no dependence (so OpenMP-static chunking is safe), and
* **diagnostics** -- report which references conflict when it does.

We implement the classical conservative tests for affine subscripts:

* the **GCD test**: the dependence equation ``A1 i - A2 j = o2 - o1``
  has integer solutions only if the GCD of the coefficients divides the
  constant; otherwise the references never touch the same element.
* the **Banerjee bounds test**: the equation has *real* solutions within
  the loop bounds only if the constant lies between the expression's
  extreme values; otherwise independence again.
* a **distance test** for the common uniform case (``A1 == A2``): the
  dependence distance vector is constant and we can check directly
  whether the candidate parallel loop carries it.

All tests are conservative: "maybe dependent" is reported whenever
independence cannot be proven, exactly like production compilers.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import List, Optional, Sequence, Tuple

from repro.program.ir import AffineRef, IndexedRef, LoopNest, Program


@dataclass(frozen=True)
class DependenceResult:
    """Outcome of testing one pair of references."""

    independent: bool
    reason: str
    distance: Optional[Tuple[int, ...]] = None

    @property
    def maybe_dependent(self) -> bool:
        return not self.independent


def _row_gcd_test(coeffs: Sequence[int], constant: int) -> bool:
    """True when ``sum(c_k x_k) = constant`` has NO integer solution."""
    g = 0
    for c in coeffs:
        g = gcd(g, abs(int(c)))
    if g == 0:
        return constant != 0
    return constant % g != 0


def _row_banerjee_test(coeffs: Sequence[int], constant: int,
                       bounds: Sequence[Tuple[int, int]]) -> bool:
    """True when the row's value range cannot reach ``constant``.

    ``coeffs`` pair up with iteration variables whose (inclusive)
    ranges come from ``bounds``; the expression's min/max are computed
    per term.
    """
    low = 0
    high = 0
    for c, (lo, hi) in zip(coeffs, bounds):
        c = int(c)
        if c >= 0:
            low += c * lo
            high += c * hi
        else:
            low += c * hi
            high += c * lo
    return not (low <= constant <= high)


def test_dependence(ref1: AffineRef, ref2: AffineRef,
                    nest: LoopNest) -> DependenceResult:
    """Test whether two references in one nest may touch common elements.

    The dependence equation per array dimension ``d`` is
    ``A1[d] . i - A2[d] . j = o2[d] - o1[d]`` over iteration vectors
    ``i, j`` within the nest bounds.  If any dimension is proven
    unsolvable (GCD or Banerjee), the pair is independent.
    """
    if ref1.array.name != ref2.array.name:
        return DependenceResult(True, "different arrays")
    m = nest.depth
    # inclusive iteration ranges, duplicated for i and j
    ranges = [(lo, hi - 1) for lo, hi in nest.bounds]
    for d in range(ref1.array.rank):
        coeffs = [int(c) for c in ref1.access[d]] + \
                 [-int(c) for c in ref2.access[d]]
        constant = int(ref2.offset[d]) - int(ref1.offset[d])
        if _row_gcd_test(coeffs, constant):
            return DependenceResult(True, f"gcd test (dim {d})")
        if _row_banerjee_test(coeffs, constant, ranges + ranges):
            return DependenceResult(True, f"banerjee test (dim {d})")

    # Uniform dependences: equal access matrices make the distance
    # vector constant: A (i - j) = o2 - o1 has the unique "shift"
    # solution when A is a (partial) permutation of the iterators.
    if ref1.access == ref2.access:
        distance = _uniform_distance(ref1, ref2, m)
        if distance is not None:
            return DependenceResult(False, "uniform dependence",
                                    distance=distance)
    return DependenceResult(False, "dependence not disproven")


def _uniform_distance(ref1: AffineRef, ref2: AffineRef, depth: int
                      ) -> Optional[Tuple[int, ...]]:
    """Distance vector for equal-matrix references, when determined.

    Solves ``A d = o2 - o1`` for a unique integer ``d`` in the common
    case that every iterator appears in exactly one subscript with
    coefficient +/-1 (stencil references); returns ``None`` otherwise.
    """
    distance: List[Optional[int]] = [None] * depth
    for d in range(ref1.array.rank):
        row = [int(c) for c in ref1.access[d]]
        nonzero = [k for k, c in enumerate(row) if c != 0]
        diff = int(ref2.offset[d]) - int(ref1.offset[d])
        if len(nonzero) == 1 and abs(row[nonzero[0]]) == 1:
            k = nonzero[0]
            value = diff * row[k]  # row[k] in {1,-1}: divide == multiply
            if distance[k] is not None and distance[k] != value:
                return None  # inconsistent: no dependence at all
            distance[k] = value
        elif nonzero:
            return None  # coupled subscript: give up (conservative)
        elif diff != 0:
            return None  # contradiction: handled by GCD test anyway
    return tuple(0 if v is None else v for v in distance)


@dataclass(frozen=True)
class LegalityReport:
    """Parallelization-legality verdict for one nest."""

    nest_name: str
    parallel_dim: int
    legal: bool
    conflicts: Tuple[str, ...]


def check_parallelization(nest: LoopNest) -> LegalityReport:
    """Is the nest's parallel loop free of carried dependences?

    Write-write and read-write reference pairs are tested; a pair whose
    (known) distance vector has a nonzero entry at the parallel
    dimension carries a dependence across thread chunks, and any pair
    that cannot be disproven or resolved is reported conservatively.
    Pairs through index arrays are always conservative conflicts unless
    they never alias by array identity.
    """
    u = nest.parallel_dim
    conflicts: List[str] = []
    refs = list(nest.refs)
    for a in range(len(refs)):
        for b in range(a, len(refs)):
            r1, r2 = refs[a], refs[b]
            if not (r1.is_write or r2.is_write):
                continue
            if r1.array.name != r2.array.name:
                continue
            if a == b and isinstance(r1, AffineRef):
                continue  # a reference trivially depends on itself
            if isinstance(r1, IndexedRef) or isinstance(r2, IndexedRef):
                conflicts.append(
                    f"{r1.array.name}: indexed access (conservative)")
                continue
            result = test_dependence(r1, r2, nest)
            if result.independent:
                continue
            if result.distance is not None:
                if result.distance[u] != 0:
                    conflicts.append(
                        f"{r1.array.name}: carried distance "
                        f"{result.distance}")
            else:
                conflicts.append(
                    f"{r1.array.name}: {result.reason}")
    return LegalityReport(nest_name=nest.name, parallel_dim=u,
                          legal=not conflicts,
                          conflicts=tuple(conflicts))


def check_program(program: Program) -> List[LegalityReport]:
    """Legality reports for every nest of a program."""
    return [check_parallelization(nest) for nest in program.nests]
