"""Exact integer linear algebra for layout transformations.

The layout pass of the paper (Section 5.2, Algorithm 1) needs three exact
integer-matrix operations:

* solving the homogeneous system ``B^T g_v^T = 0`` by integer Gaussian
  elimination (we expose the full integer nullspace lattice basis),
* completing a primitive row vector ``g_v`` to a *unimodular* matrix ``U``
  (determinant +/-1) so that ``a' = U a`` is a bijective relabeling of the
  data space, and
* Hermite-normal-form correction of a candidate matrix that is not
  unimodular (Algorithm 1, lines 10-12).

Everything here works on plain Python ``int`` values (arbitrary precision),
represented as lists of lists, so there is no overflow and no floating-point
round-off.  Matrices are small (loop depths and array ranks are single
digits), so asymptotic efficiency is irrelevant; clarity and exactness win.
"""

from __future__ import annotations

from math import gcd
from typing import List, Optional, Sequence, Tuple

from repro.errors import SolverError

Matrix = List[List[int]]
Vector = List[int]


def copy_matrix(m: Sequence[Sequence[int]]) -> Matrix:
    """Return a deep copy of ``m`` as a list-of-lists of ints."""
    return [[int(x) for x in row] for row in m]


def identity(n: int) -> Matrix:
    """Return the n-by-n identity matrix."""
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


def zeros(rows: int, cols: int) -> Matrix:
    """Return a rows-by-cols zero matrix."""
    return [[0] * cols for _ in range(rows)]


def shape(m: Sequence[Sequence[int]]) -> Tuple[int, int]:
    """Return ``(rows, cols)`` of ``m``; a 0-row matrix has 0 columns."""
    rows = len(m)
    cols = len(m[0]) if rows else 0
    return rows, cols


def transpose(m: Sequence[Sequence[int]]) -> Matrix:
    """Return the transpose of ``m``."""
    rows, cols = shape(m)
    return [[int(m[i][j]) for i in range(rows)] for j in range(cols)]


def mat_mul(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> Matrix:
    """Exact integer matrix product ``a @ b``."""
    ra, ca = shape(a)
    rb, cb = shape(b)
    if ca != rb:
        raise ValueError(f"dimension mismatch: {ra}x{ca} @ {rb}x{cb}")
    out = zeros(ra, cb)
    for i in range(ra):
        arow = a[i]
        for k in range(ca):
            aik = arow[k]
            if aik == 0:
                continue
            brow = b[k]
            orow = out[i]
            for j in range(cb):
                orow[j] += aik * brow[j]
    return out


def mat_vec(a: Sequence[Sequence[int]], v: Sequence[int]) -> Vector:
    """Exact integer matrix-vector product ``a @ v``."""
    ra, ca = shape(a)
    if ca != len(v):
        raise ValueError(f"dimension mismatch: {ra}x{ca} @ len-{len(v)}")
    return [sum(a[i][j] * v[j] for j in range(ca)) for i in range(ra)]


def vec_gcd(v: Sequence[int]) -> int:
    """GCD of the absolute values of the entries of ``v`` (0 for all-zero)."""
    g = 0
    for x in v:
        g = gcd(g, abs(int(x)))
    return g


def is_zero_vector(v: Sequence[int]) -> bool:
    """True when every entry of ``v`` is zero."""
    return all(x == 0 for x in v)


def make_primitive(v: Sequence[int]) -> Vector:
    """Divide ``v`` by the GCD of its entries (primitive lattice vector).

    The leading nonzero entry is normalized to be positive so that callers
    get a canonical representative.  An all-zero vector is returned as-is.
    """
    g = vec_gcd(v)
    if g == 0:
        return [0] * len(v)
    out = [int(x) // g for x in v]
    for x in out:
        if x != 0:
            if x < 0:
                out = [-y for y in out]
            break
    return out


def determinant(m: Sequence[Sequence[int]]) -> int:
    """Exact determinant by fraction-free (Bareiss) elimination."""
    rows, cols = shape(m)
    if rows != cols:
        raise ValueError("determinant of a non-square matrix")
    if rows == 0:
        return 1
    a = copy_matrix(m)
    sign = 1
    prev = 1
    for k in range(rows - 1):
        if a[k][k] == 0:
            pivot_row = next(
                (i for i in range(k + 1, rows) if a[i][k] != 0), None)
            if pivot_row is None:
                return 0
            a[k], a[pivot_row] = a[pivot_row], a[k]
            sign = -sign
        for i in range(k + 1, rows):
            for j in range(k + 1, cols):
                a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) // prev
            a[i][k] = 0
        prev = a[k][k]
    return sign * a[rows - 1][rows - 1]


def is_unimodular(m: Sequence[Sequence[int]]) -> bool:
    """True when ``m`` is square with determinant +1 or -1."""
    rows, cols = shape(m)
    return rows == cols and determinant(m) in (1, -1)


def _swap_cols(m: Matrix, i: int, j: int) -> None:
    for row in m:
        row[i], row[j] = row[j], row[i]


def _add_col(m: Matrix, src: int, dst: int, factor: int) -> None:
    """Column operation ``col[dst] += factor * col[src]``."""
    for row in m:
        row[dst] += factor * row[src]


def _negate_col(m: Matrix, i: int) -> None:
    for row in m:
        row[i] = -row[i]


def column_hermite_normal_form(
        m: Sequence[Sequence[int]]) -> Tuple[Matrix, Matrix]:
    """Column-style Hermite normal form.

    Returns ``(h, v)`` with ``h = m @ v``, ``v`` unimodular, and ``h`` in
    lower-triangular column HNF: pivots positive, entries to the right of a
    pivot zero, entries to the left of a pivot reduced modulo the pivot.
    Zero columns (spanning the nullspace image) are pushed to the right.
    """
    rows, cols = shape(m)
    h = copy_matrix(m)
    v = identity(cols)
    pivot_col = 0
    for r in range(rows):
        if pivot_col >= cols:
            break
        # Reduce all columns >= pivot_col in row r to a single nonzero pivot
        # using the Euclidean algorithm expressed as column operations.
        while True:
            nonzero = [c for c in range(pivot_col, cols) if h[r][c] != 0]
            if not nonzero:
                break
            # Bring the column whose row-r entry has minimal magnitude to
            # the pivot position.
            best = min(nonzero, key=lambda c: abs(h[r][c]))
            if best != pivot_col:
                _swap_cols(h, pivot_col, best)
                _swap_cols(v, pivot_col, best)
            if h[r][pivot_col] < 0:
                _negate_col(h, pivot_col)
                _negate_col(v, pivot_col)
            pivot = h[r][pivot_col]
            done = True
            for c in range(pivot_col + 1, cols):
                if h[r][c] != 0:
                    q = h[r][c] // pivot
                    _add_col(h, pivot_col, c, -q)
                    _add_col(v, pivot_col, c, -q)
                    if h[r][c] != 0:
                        done = False
            if done:
                break
        if pivot_col < cols and h[r][pivot_col] != 0:
            pivot = h[r][pivot_col]
            # Reduce entries to the left of the pivot into [0, pivot).
            for c in range(pivot_col):
                q = h[r][c] // pivot
                if q:
                    _add_col(h, pivot_col, c, -q)
                    _add_col(v, pivot_col, c, -q)
            pivot_col += 1
    return h, v


def row_hermite_normal_form(
        m: Sequence[Sequence[int]]) -> Tuple[Matrix, Matrix]:
    """Row-style Hermite normal form: ``h = u @ m`` with ``u`` unimodular.

    This is the ``Hermit_Normal_Form`` helper of Algorithm 1 (lines 10-12),
    used to repair a candidate transformation matrix that came out
    non-unimodular: ``U <- H^{-1} U`` there is equivalent to using the
    unimodular factor ``u`` we return here.
    """
    ht, vt = column_hermite_normal_form(transpose(m))
    return transpose(ht), transpose(vt)


def integer_nullspace(m: Sequence[Sequence[int]]) -> List[Vector]:
    """Basis of the integer nullspace lattice ``{x : m @ x = 0}``.

    Computed from the column HNF ``m @ v = h``: the columns of ``v`` that
    correspond to zero columns of ``h`` form a basis (``v`` is unimodular,
    so these columns generate the full nullspace lattice, not a sublattice).
    Returns a list of primitive basis vectors; empty when the nullspace is
    trivial.
    """
    rows, cols = shape(m)
    if cols == 0:
        return []
    if rows == 0:
        return [row[:] for row in identity(cols)]
    h, v = column_hermite_normal_form(m)
    basis = []
    for c in range(cols):
        if all(h[r][c] == 0 for r in range(rows)):
            basis.append(make_primitive([v[r][c] for r in range(cols)]))
    return basis


def solve_homogeneous(m: Sequence[Sequence[int]]) -> Optional[Vector]:
    """One primitive non-trivial solution of ``m @ x = 0``, or ``None``.

    This is the ``Gaussian_Elimination`` + ``Forward_Substitution`` pair of
    Algorithm 1 (lines 5-6).  When the nullspace has dimension greater than
    one we prefer the basis vector with the smallest L1 norm, breaking
    ties toward the earliest nonzero position (so the original
    slowest-varying dimension is kept as the partition dimension when
    several choices are equivalent) and then lexicographically.
    """
    basis = integer_nullspace(m)
    if not basis:
        return None

    def first_nonzero(v: Sequence[int]) -> int:
        return next((i for i, x in enumerate(v) if x != 0), len(v))

    return min(basis, key=lambda v: (sum(abs(x) for x in v),
                                     first_nonzero(v), v))


def complete_to_unimodular(g: Sequence[int], row: int = 0) -> Matrix:
    """Extend a primitive vector ``g`` to a unimodular matrix.

    Returns an ``n x n`` unimodular matrix whose ``row``-th row equals
    ``g`` (Algorithm 1, line 7, ``Unimodular_Layout_Transformation``).

    Construction: column-reduce ``g`` to ``e_1^T`` with elementary
    unimodular column operations, accumulating the *inverse* operations on
    an identity matrix.  If ``g @ E_1 @ ... @ E_k = e_1^T`` then
    ``w = E_k^{-1} @ ... @ E_1^{-1}`` is unimodular with first row ``g``;
    finally the first row is swapped into position ``row``.

    Raises ``ValueError`` if ``g`` is zero or not primitive.
    """
    n = len(g)
    if n == 0:
        raise ValueError("cannot complete an empty vector")
    if is_zero_vector(g):
        raise ValueError("cannot complete the zero vector to unimodular")
    if vec_gcd(g) != 1:
        raise ValueError(
            f"vector {list(g)} is not primitive (gcd {vec_gcd(g)})")
    if not 0 <= row < n:
        raise ValueError(f"row index {row} out of range for size {n}")

    work = [list(map(int, g))]  # 1 x n, reduced by column ops
    w = identity(n)             # accumulates inverse ops: w = V^{-1}

    # Inverse of "col[dst] += f * col[src]" is "row[src] -= f * row[dst]"
    # acting on w from the left; inverse of a column swap is a row swap;
    # inverse of a column negation is a row negation.
    def add_col(src: int, dst: int, f: int) -> None:
        work[0][dst] += f * work[0][src]
        wd = w[dst]
        ws = w[src]
        for j in range(n):
            ws[j] -= f * wd[j]

    def swap(i: int, j: int) -> None:
        work[0][i], work[0][j] = work[0][j], work[0][i]
        w[i], w[j] = w[j], w[i]

    def negate(i: int) -> None:
        work[0][i] = -work[0][i]
        w[i] = [-x for x in w[i]]

    while True:
        nonzero = [c for c in range(n) if work[0][c] != 0]
        if len(nonzero) == 1:
            c = nonzero[0]
            if c != 0:
                swap(0, c)
            if work[0][0] < 0:
                negate(0)
            break
        best = min(nonzero, key=lambda c: abs(work[0][c]))
        if best != 0:
            swap(0, best)
        if work[0][0] < 0:
            negate(0)
        pivot = work[0][0]
        for c in range(1, n):
            if work[0][c] != 0:
                add_col(0, c, -(work[0][c] // pivot))

    # Postconditions raised as SolverError (not assert) so the checks
    # survive ``python -O``: a wrong completion here silently corrupts
    # every downstream layout.
    if work[0][0] != 1 or any(x != 0 for x in work[0][1:]):
        raise SolverError(
            f"unimodular completion did not reduce {list(g)} to a unit "
            f"vector (got {work[0]})")
    if row != 0:
        w[0], w[row] = w[row], w[0]
    if w[row] != list(map(int, g)):
        raise SolverError(
            f"unimodular completion lost the input vector: row {row} "
            f"of the result is {w[row]}, expected {list(g)}")
    return w


def smith_normal_form(
        m: Sequence[Sequence[int]]) -> Tuple[Matrix, Matrix, Matrix]:
    """Smith normal form: ``d = u @ m @ v`` with ``u``, ``v`` unimodular.

    ``d`` is diagonal with each diagonal entry dividing the next --
    the canonical decomposition of an integer matrix, used to reason
    about which Data-to-MC mappings a layout can realize exactly (the
    divisibility chain tells how the image lattice of an access matrix
    interleaves with the controller-selection modulus).
    """
    rows, cols = shape(m)
    d = copy_matrix(m)
    u = identity(rows)
    v = identity(cols)

    def swap_rows(a: Matrix, i: int, j: int) -> None:
        a[i], a[j] = a[j], a[i]

    def add_row(a: Matrix, src: int, dst: int, f: int) -> None:
        a[dst] = [x + f * y for x, y in zip(a[dst], a[src])]

    def negate_row(a: Matrix, i: int) -> None:
        a[i] = [-x for x in a[i]]

    k = 0
    while k < min(rows, cols):
        # find a nonzero pivot in the trailing submatrix
        pivot = None
        for i in range(k, rows):
            for j in range(k, cols):
                if d[i][j] != 0:
                    if pivot is None or abs(d[i][j]) < abs(
                            d[pivot[0]][pivot[1]]):
                        pivot = (i, j)
        if pivot is None:
            break
        pi, pj = pivot
        if pi != k:
            swap_rows(d, k, pi)
            swap_rows(u, k, pi)
        if pj != k:
            _swap_cols(d, k, pj)
            _swap_cols(v, k, pj)
        if d[k][k] < 0:
            negate_row(d, k)
            negate_row(u, k)
        # clear the pivot's row and column; repeat until stable (the
        # Euclidean steps can reintroduce entries)
        dirty = False
        for i in range(k + 1, rows):
            if d[i][k]:
                q = d[i][k] // d[k][k]
                add_row(d, k, i, -q)
                add_row(u, k, i, -q)
                if d[i][k]:
                    dirty = True
        for j in range(k + 1, cols):
            if d[k][j]:
                q = d[k][j] // d[k][k]
                _add_col(d, k, j, -q)
                _add_col(v, k, j, -q)
                if d[k][j]:
                    dirty = True
        if dirty:
            continue
        # enforce the divisibility chain d[k][k] | d[i][j]
        fixed = True
        for i in range(k + 1, rows):
            for j in range(k + 1, cols):
                if d[i][j] % d[k][k]:
                    add_row(d, i, k, 1)
                    add_row(u, i, k, 1)
                    fixed = False
                    break
            if not fixed:
                break
        if fixed:
            k += 1
    return d, u, v


def inverse_unimodular(m: Sequence[Sequence[int]]) -> Matrix:
    """Exact inverse of a unimodular integer matrix (also unimodular).

    Uses Gauss-Jordan elimination on ``[m | I]``; all pivots stay +/-1
    after the HNF-style reduction because ``det(m) = +/-1``.
    """
    rows, cols = shape(m)
    if rows != cols:
        raise ValueError("inverse of a non-square matrix")
    det = determinant(m)
    if det not in (1, -1):
        raise ValueError(f"matrix is not unimodular (det {det})")
    n = rows
    # Adjugate / Cramer via cofactors is fine at these sizes.
    out = zeros(n, n)
    for i in range(n):
        for j in range(n):
            minor = [[m[r][c] for c in range(n) if c != i]
                     for r in range(n) if r != j]
            cof = determinant(minor) if n > 1 else 1
            if (i + j) % 2 == 1:
                cof = -cof
            out[i][j] = cof * det  # det is +/-1 so division is multiplication
    return out
