"""Affine approximation of indexed array accesses (Section 5.4).

Applications like ``hpccg`` (CRS SpMV), ``minimd`` and ``ammp`` access
data arrays through index arrays.  The paper profiles such references,
extracts the "dense access pattern", and fits an affine function of the
enclosing loop iterators that approximates the generated addresses; the
approximate reference then drives the layout choice.  Over- or
under-approximation is safe (layouts only rename, they never break
correctness) but an inaccurate approximation can misplace data, so
references whose approximation error exceeds a gate (the paper cites 30%)
are simply not optimized.

We reproduce this with a least-squares fit per data dimension over a
profile sample: ``coord_d ~ c_d . i + o_d`` with coefficients rounded to
integers.  The *relative error* is variation-normalized: per dimension,
the mean absolute error of the fit divided by the mean absolute
deviation of the actual coordinates, averaged over dimensions.  A value
near 1 means the affine fit explains nothing beyond the mean (uniform
random indices); near 0 means the pattern is essentially affine (banded
CRS, tight neighbor lists).  The fitted reference is returned as an
ordinary :class:`AffineRef` so the rest of the pipeline needs no
special cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.program.ir import AffineRef, IndexedRef, LoopNest

DEFAULT_ERROR_GATE = 0.30


@dataclass
class AffineApproximation:
    """Result of profiling + fitting one indexed reference."""

    reference: Optional[AffineRef]
    relative_error: float
    accepted: bool

    @property
    def rejected(self) -> bool:
        return not self.accepted


def approximate_indexed(nest: LoopNest, ref: IndexedRef,
                        error_gate: float = DEFAULT_ERROR_GATE,
                        max_samples: int = 8192,
                        seed: int = 0) -> AffineApproximation:
    """Fit an affine reference to an indexed reference's profile.

    Samples up to ``max_samples`` iteration points (deterministically,
    via a seeded RNG -- this stands in for the paper's profiling run),
    solves one least-squares problem per data dimension, rounds the
    coefficients to integers, and measures the normalized error of the
    *rounded* affine function over the sample.
    """
    pts = nest.iteration_points()           # (m, K) in row-major order
    coords = ref.coords()                   # (n, K), aligned with pts
    total = pts.shape[1]
    if total == 0:
        return AffineApproximation(None, 1.0, False)
    if total > max_samples:
        rng = np.random.default_rng(seed)
        sample = rng.choice(total, size=max_samples, replace=False)
        pts = pts[:, sample]
        coords = coords[:, sample]

    m = pts.shape[0]
    design = np.vstack([pts.astype(np.float64),
                        np.ones((1, pts.shape[1]))]).T  # (K, m+1)
    access_rows: list = []
    offsets: list = []
    for d in range(coords.shape[0]):
        solution, *_ = np.linalg.lstsq(design, coords[d].astype(np.float64),
                                       rcond=None)
        access_rows.append(tuple(int(round(c)) for c in solution[:m]))
        offsets.append(int(round(solution[m])))

    fitted = AffineRef(ref.array, tuple(access_rows), tuple(offsets),
                       ref.is_write)
    predicted = fitted.apply(pts)
    abs_err = np.abs(predicted - coords).mean(axis=1)
    spread = np.abs(
        coords - coords.mean(axis=1, keepdims=True)).mean(axis=1)
    ratios = abs_err / np.maximum(spread, 1.0)
    err = float(ratios.mean())
    return AffineApproximation(fitted, err, err <= error_gate)
