"""Layout customization (Section 5.3): matching the desired Data-to-MC map.

The Data-to-Core step isolates each thread's data; customization then
rearranges the isolated slabs so that the hardware's fixed Data-to-MC
interleaving sends each element's off-chip requests to the controller(s)
the user's L2-to-MC mapping assigned to the thread's cluster.

* :func:`private_l2_layout` builds the :class:`ClusteredLayout` for
  per-core private L2s (local L2 issues the off-chip request, so the
  desired Data-to-MC mapping follows directly from Data-to-Core +
  L2-to-MC).
* :func:`shared_l2_layout` builds the :class:`SharedL2Layout` for SNUCA
  shared L2s, where the *home bank* issues off-chip requests and
  Eqs. (4)/(5) make simultaneous on-chip and off-chip localization
  impossible in general; on-chip wins and the delta-skip relaxation gets
  the MC as close as possible (desired or adjacent).
* :func:`assign_shared_slots` is that delta-skip, lifted from per-element
  address arithmetic to the slot level: phase 1 keeps every core whose
  own slot already maps to an acceptable MC (no displacement cascades);
  phase 2 matches the leftover cores to the leftover slots by minimum
  distance (the paper's delta counter, made global so one skip cannot
  shift every subsequent element).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.arch.clustering import L2ToMCMapping
from repro.core import linalg
from repro.core.layout import ClusteredLayout, SharedL2Layout
from repro.program.ir import ArrayDecl


def thread_clusters(mapping: L2ToMCMapping, num_threads: int) -> List[int]:
    """Cluster of each thread; threads beyond the core count wrap around
    (``threads_per_core > 1`` pins thread ``t`` to core ``t % cores``)."""
    cores = mapping.num_threads
    return [mapping.cluster_of_core(mapping.core_order[t % cores])
            for t in range(num_threads)]


def private_l2_layout(array: ArrayDecl, u: Optional[linalg.Matrix],
                      mapping: L2ToMCMapping, unit_bytes: int,
                      num_threads: Optional[int] = None,
                      partition_anchor: int = 0) -> ClusteredLayout:
    """The customized layout for private L2s (Algorithm 1 lines 38-42).

    ``unit_bytes`` is the hardware interleave unit -- the L2 line for
    cache-line interleaving or the page for page interleaving (Table 1's
    "Interleaving Unit").  The unit must be a multiple of the element
    size so lines hold whole elements.
    """
    if unit_bytes % array.element_size:
        raise ValueError(
            f"interleave unit {unit_bytes} not a multiple of element size "
            f"{array.element_size}")
    threads = num_threads if num_threads is not None else mapping.num_threads
    return ClusteredLayout(
        array=array,
        u=u,
        num_threads=threads,
        unit_elems=unit_bytes // array.element_size,
        thread_cluster=thread_clusters(mapping, threads),
        cluster_mcs=[c.mc_indices for c in mapping.clusters],
        num_mcs=mapping.num_mcs,
        partition_anchor=partition_anchor)


def allowed_mcs(mapping: L2ToMCMapping, core: int,
                adjacency: Optional[int] = None) -> Set[int]:
    """MCs acceptable for a core's data: the desired MC plus adjacent ones.

    ``adjacency`` is the mesh-distance threshold between controller nodes
    under which two MCs count as adjacent; the default (one mesh edge
    length) makes corner MCs on a shared edge adjacent but diagonally
    opposite ones not -- the complement is the set ``C`` the paper's
    delta counter skips over.
    """
    mesh = mapping.mesh
    if adjacency is None:
        adjacency = max(mesh.width, mesh.height) - 1
    desired = mapping.desired_mc_index(core)
    desired_node = mapping.mc_nodes[desired]
    return {j for j, node in enumerate(mapping.mc_nodes)
            if j == desired or mesh.distance(node, desired_node) <= adjacency}


def assign_shared_slots(mapping: L2ToMCMapping, num_threads: int,
                        adjacency: Optional[int] = None) -> List[int]:
    """Home-bank slots per thread for the shared-L2 layout.

    Thread ``t`` wants slot = its own core (perfect on-chip locality).
    If the MC induced by that slot (``slot % N'``) is not in the allowed
    set for the core, walk forward to the next free slot whose MC is --
    the delta-skip of Section 5.3, lifted from per-element address
    arithmetic to the slot level (every element of the thread shifts by
    the same delta, preserving injectivity).  When more threads than
    cores exist, co-located threads share their core's slot (the layout
    interleaves their line groups).
    """
    cores = mapping.num_threads
    num_banks = mapping.mesh.num_nodes
    num_mcs = mapping.num_mcs
    mesh = mapping.mesh
    allowed_of = {core: allowed_mcs(mapping, core, adjacency)
                  for core in mapping.core_order}

    # Phase 1: a core whose own slot already maps to an acceptable MC
    # keeps it -- perfect on-chip locality for those cores, and no
    # displacement cascades.
    slot_of_core: dict = {}
    stuck: List[int] = []
    for core in sorted(mapping.core_order):
        if (core % num_mcs) in allowed_of[core]:
            slot_of_core[core] = core
        else:
            stuck.append(core)

    # Phase 2: the stuck cores split the leftover slots (each other's own
    # slots) by minimum-distance matching, never taking a slot whose MC
    # is disallowed for them.  This bounds the home-bank displacement to
    # a few hops for a small minority of cores instead of shifting every
    # core on the chip.
    if stuck:
        free = sorted(set(range(num_banks)) - set(slot_of_core.values()))
        big = 10 ** 6
        cost = [[mesh.distance(core, slot)
                 if (slot % num_mcs) in allowed_of[core] else big
                 for slot in free] for core in stuck]
        try:
            from scipy.optimize import linear_sum_assignment
            import numpy as np
            rows, cols = linear_sum_assignment(np.asarray(cost))
            pairs = list(zip(rows.tolist(), cols.tolist()))
        except ImportError:  # pragma: no cover - scipy is a dependency
            pairs = [(i, i) for i in range(len(stuck))]
        assigned_cols: Set[int] = set()
        for i, j in pairs:
            if cost[i][j] >= big:
                j = min((c for c in range(len(free))
                         if c not in assigned_cols),
                        key=lambda c: cost[i][c])
            slot_of_core[stuck[i]] = free[j]
            assigned_cols.add(j)
    return [slot_of_core[mapping.core_order[t % cores]]
            for t in range(num_threads)]


def shared_l2_layout(array: ArrayDecl, u: Optional[linalg.Matrix],
                     mapping: L2ToMCMapping, unit_bytes: int,
                     num_threads: Optional[int] = None,
                     adjacency: Optional[int] = None,
                     localize_offchip: bool = True,
                     partition_anchor: int = 0) -> SharedL2Layout:
    """The customized layout for a shared SNUCA L2 (lines 43-56).

    ``unit_bytes`` is the L2 line size (home banks interleave at line
    granularity, Eq. 4).  ``localize_offchip=False`` disables the
    delta-skip and keeps pure on-chip localization (slot = own core) --
    the ablation called out in DESIGN.md.
    """
    if unit_bytes % array.element_size:
        raise ValueError(
            f"interleave unit {unit_bytes} not a multiple of element size "
            f"{array.element_size}")
    threads = num_threads if num_threads is not None else mapping.num_threads
    if localize_offchip:
        slots = assign_shared_slots(mapping, threads, adjacency)
    else:
        cores = mapping.num_threads
        slots = [mapping.core_order[t % cores] for t in range(threads)]
    return SharedL2Layout(
        array=array,
        u=u,
        num_threads=threads,
        unit_elems=unit_bytes // array.element_size,
        thread_slot=slots,
        num_banks=mapping.mesh.num_nodes,
        num_mcs=mapping.num_mcs,
        partition_anchor=partition_anchor)
