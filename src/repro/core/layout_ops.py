"""Composable index-space transformations: strip-mine, permute, pad.

Section 5.3 builds the customized layouts from two classical layout
transformations -- *strip-mining* (split a dimension of extent ``N_i``
into ``N_i / s`` by ``s``, turning a subscript ``r_i`` into
``(r_i / s, r_i % s)``) and *permutation* (swap dimension positions) --
plus *padding* (round a dimension up so strip-mining divides evenly and
array bases stay aligned).  The production layouts in
:mod:`repro.core.layout` use closed-form address formulas for speed; this
module provides the individual transformations so tests and examples can
build the paper's expressions step by step (e.g. Figure 9(c)) and
cross-check the closed forms.

Each transformation maps an :class:`IndexSpace` to a new one together
with a vectorized coordinate map; compose them with :class:`Composition`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

CoordMap = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class IndexSpace:
    """A rectangular integer index space with row-major addressing."""

    extents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.extents or any(e <= 0 for e in self.extents):
            raise ValueError(f"bad extents {self.extents}")

    @property
    def rank(self) -> int:
        return len(self.extents)

    @property
    def size(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n

    def linearize(self, coords: np.ndarray) -> np.ndarray:
        """Row-major offsets for coordinates of shape ``(rank, K)``."""
        c = np.asarray(coords, dtype=np.int64)
        strides = np.ones(self.rank, dtype=np.int64)
        for i in range(self.rank - 2, -1, -1):
            strides[i] = strides[i + 1] * self.extents[i + 1]
        return strides @ c


@dataclass(frozen=True)
class Transformation:
    """An index-space transformation with its coordinate map."""

    source: IndexSpace
    target: IndexSpace
    apply: CoordMap


def strip_mine(space: IndexSpace, dim: int, s: int) -> Transformation:
    """Split dimension ``dim`` into (outer, inner) of extents
    ``(ceil(N/s), s)``; subscript ``r`` becomes ``(r / s, r % s)``.

    When ``s`` does not divide the extent the outer extent is rounded up
    -- this is exactly the intra-array padding of Section 5.3 ("align
    data elements within an array to make the strip-mined dimension
    divisible by s").
    """
    if not 0 <= dim < space.rank:
        raise ValueError(f"dim {dim} out of range")
    if s < 1:
        raise ValueError("strip size must be >= 1")
    n = space.extents[dim]
    outer = -(-n // s)
    new_extents = space.extents[:dim] + (outer, s) + space.extents[dim + 1:]

    def apply(coords: np.ndarray) -> np.ndarray:
        c = np.asarray(coords, dtype=np.int64)
        return np.vstack([c[:dim], c[dim] // s, c[dim] % s, c[dim + 1:]])

    return Transformation(space, IndexSpace(new_extents), apply)


def permute(space: IndexSpace, order: Sequence[int]) -> Transformation:
    """Reorder dimensions: new dimension ``i`` is old dimension
    ``order[i]`` (a full permutation; the paper's pairwise swap is the
    special case of a transposition)."""
    if sorted(order) != list(range(space.rank)):
        raise ValueError(f"{order} is not a permutation of the dims")
    new_extents = tuple(space.extents[o] for o in order)
    idx = np.asarray(order, dtype=np.int64)

    def apply(coords: np.ndarray) -> np.ndarray:
        return np.asarray(coords, dtype=np.int64)[idx]

    return Transformation(space, IndexSpace(new_extents), apply)


def pad(space: IndexSpace, dim: int, multiple: int) -> Transformation:
    """Round dimension ``dim`` up to a multiple; coordinates unchanged.

    Pure padding [11]: the index map is the identity, only the addressing
    extent grows, leaving alignment holes.
    """
    if not 0 <= dim < space.rank:
        raise ValueError(f"dim {dim} out of range")
    if multiple < 1:
        raise ValueError("multiple must be >= 1")
    n = space.extents[dim]
    padded = -(-n // multiple) * multiple
    new_extents = space.extents[:dim] + (padded,) + space.extents[dim + 1:]

    def apply(coords: np.ndarray) -> np.ndarray:
        return np.asarray(coords, dtype=np.int64)

    return Transformation(space, IndexSpace(new_extents), apply)


class Composition:
    """A chain of transformations applied left to right."""

    def __init__(self, space: IndexSpace):
        self.source = space
        self.target = space
        self._steps: List[Transformation] = []

    def then(self, make: Callable[[IndexSpace], Transformation]
             ) -> "Composition":
        step = make(self.target)
        if step.source != self.target:
            raise ValueError("transformation chained onto the wrong space")
        self._steps.append(step)
        self.target = step.target
        return self

    def strip_mine(self, dim: int, s: int) -> "Composition":
        return self.then(lambda sp: strip_mine(sp, dim, s))

    def permute(self, order: Sequence[int]) -> "Composition":
        return self.then(lambda sp: permute(sp, order))

    def pad(self, dim: int, multiple: int) -> "Composition":
        return self.then(lambda sp: pad(sp, dim, multiple))

    def apply(self, coords: np.ndarray) -> np.ndarray:
        c = np.asarray(coords, dtype=np.int64)
        for step in self._steps:
            c = step.apply(c)
        return c

    def linearize(self, coords: np.ndarray) -> np.ndarray:
        """Row-major offsets in the final transformed space."""
        return self.target.linearize(self.apply(coords))
