"""Hyperplanes over iteration and data spaces (Section 5.1).

A hyperplane in a k-dimensional polyhedron is the solution set of
``h . p = c`` for a row vector ``h`` (the *hyperplane vector*) and constant
``c`` (the *offset*).  The paper partitions the iteration space with the
parallel hyperplanes orthogonal to the iteration partition dimension ``u``
(``h_I = e_u``) and wants the transformed data space partitioned by
hyperplanes orthogonal to the data partition dimension ``v``
(``h_A = e_v``).  This module provides the small amount of geometry the
pass and its tests need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Hyperplane:
    """The set of integer points ``p`` with ``vector . p == offset``."""

    vector: Tuple[int, ...]
    offset: int = 0

    def __post_init__(self) -> None:
        if all(x == 0 for x in self.vector):
            raise ValueError("hyperplane vector must be nonzero")

    @property
    def dim(self) -> int:
        return len(self.vector)

    def contains(self, point: Sequence[int]) -> bool:
        if len(point) != self.dim:
            raise ValueError("point dimension mismatch")
        return sum(h * p for h, p in zip(self.vector, point)) == self.offset

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """``vector . p - offset`` for points of shape ``(dim, K)``."""
        v = np.asarray(self.vector, dtype=np.int64)
        return v @ np.asarray(points, dtype=np.int64) - self.offset

    def parallel_at(self, offset: int) -> "Hyperplane":
        """The parallel hyperplane with a different offset."""
        return Hyperplane(self.vector, offset)


def unit_hyperplane(dim: int, axis: int, offset: int = 0) -> Hyperplane:
    """The axis-orthogonal hyperplane ``p[axis] == offset``.

    These are the only hyperplanes the block distribution of Section 5.1
    uses: ``h_I = e_u`` on the iteration space, ``h_A = e_v`` on the data
    space.
    """
    if not 0 <= axis < dim:
        raise ValueError(f"axis {axis} out of range for dim {dim}")
    vector = tuple(1 if i == axis else 0 for i in range(dim))
    return Hyperplane(vector, offset)


def same_hyperplane_family(points: np.ndarray, vector: Sequence[int]
                           ) -> np.ndarray:
    """Group labels: which hyperplane of the family each point lies on.

    For points of shape ``(dim, K)`` returns the length-K array of
    ``vector . p`` values; two points share a hyperplane of the family iff
    their labels are equal.  Used by tests to check that iterations on one
    iteration hyperplane touch data on one data hyperplane (Eq. 1-2).
    """
    v = np.asarray(vector, dtype=np.int64)
    return v @ np.asarray(points, dtype=np.int64)
