"""Memory layouts: mapping data coordinates to virtual-address offsets.

A *layout* realizes an array's placement in the linear virtual address
space.  The compiler pass produces layouts; trace generation evaluates
them in bulk.  Every layout maps an ``(n, K)`` block of integer data
coordinates to ``K`` element offsets inside the array's (possibly padded)
footprint, and is injective over the array's index domain -- layout
transformation is "a kind of renaming" (Section 1) and must never alias
two elements.

Implemented layouts:

* :class:`RowMajorLayout` -- the original, canonical C layout.
* :class:`TransformedLayout` -- a unimodular relabeling ``a' = U a``
  followed by row-major placement over the transformed bounding box (the
  output of the Data-to-Core step alone, before customization).
* :class:`ClusteredLayout` -- the private-L2 customization of Section
  5.3: strip-mining and permutation arrange the address stream so that
  every run of ``k * p`` consecutive elements belongs to one cluster and
  lands, under the hardware's ``(addr / p) % N'`` interleaving, on that
  cluster's ``k`` controllers in round-robin.
* :class:`SharedL2Layout` -- the shared-L2 (SNUCA) customization: first
  localize on-chip (home bank of each element = the core that computes on
  it), then shift each thread's *slot* by the delta-skip of Section 5.3
  so the element's MC is the desired one or adjacent to it.

Offsets are *element* offsets; multiply by ``element_size`` for bytes.
Padding shows up as holes: ``size_elements`` can exceed
``array.num_elements`` (the paper pads to align bases and strip-mined
dimensions; the measured cost of padding and index arithmetic is charged
separately as the transformation overhead).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import linalg
from repro.program.ir import ArrayDecl


def transformed_bounds(u: linalg.Matrix, dims: Sequence[int]
                       ) -> Tuple[List[int], List[int]]:
    """Bounding box of ``U @ [0, d) x ...``: returns (mins, extents).

    Exact: a linear image of a box attains per-coordinate extrema at box
    vertices, so evaluating the 2^n corners suffices.
    """
    n = len(dims)
    mins = [0] * n
    maxs = [0] * n
    first = True
    for corner in itertools.product(*[(0, d - 1) for d in dims]):
        image = linalg.mat_vec(u, list(corner))
        for i, x in enumerate(image):
            if first:
                mins[i] = maxs[i] = x
            else:
                mins[i] = min(mins[i], x)
                maxs[i] = max(maxs[i], x)
        first = False
    extents = [maxs[i] - mins[i] + 1 for i in range(n)]
    return mins, extents


def _row_major_strides(extents: Sequence[int]) -> np.ndarray:
    strides = np.ones(len(extents), dtype=np.int64)
    for i in range(len(extents) - 2, -1, -1):
        strides[i] = strides[i + 1] * extents[i + 1]
    return strides


class Layout:
    """Base class: an injective map from data coordinates to offsets."""

    def __init__(self, array: ArrayDecl):
        self.array = array

    # -- interface ---------------------------------------------------------
    def element_offsets(self, coords: np.ndarray) -> np.ndarray:
        """Map ``(n, K)`` data coordinates to ``K`` element offsets."""
        raise NotImplementedError

    @property
    def size_elements(self) -> int:
        """Footprint in elements, padding included."""
        raise NotImplementedError

    @property
    def transformed(self) -> bool:
        """True when this layout differs from the original row-major."""
        return True

    # -- conveniences --------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.size_elements * self.array.element_size

    def byte_offsets(self, coords: np.ndarray) -> np.ndarray:
        return self.element_offsets(coords) * self.array.element_size

    def offset_of(self, coords: Sequence[int]) -> int:
        """Single-element convenience (tests, examples)."""
        pts = np.asarray(coords, dtype=np.int64).reshape(-1, 1)
        return int(self.element_offsets(pts)[0])

    def desired_mc_of_relative_page(self, rel_page: int) -> Optional[int]:
        """Hardware MC index this layout wants for a footprint-relative
        page, or None when the layout expresses no preference.  Consumed
        by the MC-aware page-allocation policy (Section 5.3, Figure 12).
        """
        return None


class RowMajorLayout(Layout):
    """The original layout: row-major over the declared dims."""

    def __init__(self, array: ArrayDecl):
        super().__init__(array)
        self._strides = _row_major_strides(array.dims)

    def element_offsets(self, coords: np.ndarray) -> np.ndarray:
        c = np.asarray(coords, dtype=np.int64)
        return self._strides @ c

    @property
    def size_elements(self) -> int:
        return self.array.num_elements

    @property
    def transformed(self) -> bool:
        return False


class TransformedLayout(Layout):
    """Unimodular relabeling ``a' = U a``, then row-major on the box.

    This is what the Data-to-Core step alone yields: threads own
    contiguous slabs along the slowest dimension, but the hardware's
    Data-to-MC interleaving is not yet matched (used as an ablation and as
    the substrate the customized layouts build on).
    """

    def __init__(self, array: ArrayDecl, u: linalg.Matrix):
        super().__init__(array)
        if len(u) != array.rank:
            raise ValueError("transform rank mismatch")
        if not linalg.is_unimodular(u):
            raise ValueError("layout transform must be unimodular")
        self.u = linalg.copy_matrix(u)
        mins, extents = transformed_bounds(u, array.dims)
        self._u_np = np.asarray(u, dtype=np.int64)
        self._mins = np.asarray(mins, dtype=np.int64).reshape(-1, 1)
        self.extents = tuple(extents)
        self._strides = _row_major_strides(extents)

    def transformed_coords(self, coords: np.ndarray) -> np.ndarray:
        """``U a`` shifted into the non-negative bounding box."""
        c = np.asarray(coords, dtype=np.int64)
        return self._u_np @ c - self._mins

    def element_offsets(self, coords: np.ndarray) -> np.ndarray:
        return self._strides @ self.transformed_coords(coords)

    @property
    def size_elements(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n


class _PartitionedBase(TransformedLayout):
    """Shared machinery: thread ownership along the partition dimension.

    ``partition_anchor`` is the untransformed-origin partition coordinate
    where thread 0's slab begins (from the Data-to-Core step); slabs are
    aligned to it so loop lower bounds -- stencil halos starting at 1 --
    do not smear each thread's data across two slots.  Coordinates below
    the anchor (boundary rows no thread's chunk owns) wrap to the end of
    the slab space, which keeps the map injective because the slab space
    ``block * num_threads`` covers the whole extent.
    """

    def __init__(self, array: ArrayDecl, u: Optional[linalg.Matrix],
                 num_threads: int, partition_anchor: int = 0):
        super().__init__(array, u if u is not None
                         else linalg.identity(array.rank))
        if num_threads < 1:
            raise ValueError("need at least one thread")
        self.num_threads = num_threads
        # b: elements per thread along the (slowest) partition dimension,
        # rounded up -- the implicit padding of Section 5.3.
        self.block = -(-self.extents[0] // num_threads)
        # anchor relative to the shifted (non-negative) bounding box
        self.partition_offset = int(partition_anchor) \
            - int(self._mins[0, 0])
        self._rest_strides = _row_major_strides(self.extents[1:]) \
            if len(self.extents) > 1 else np.zeros(0, dtype=np.int64)
        self.rest = 1
        for e in self.extents[1:]:
            self.rest *= e

    def _split(self, coords: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(thread, within-block index w, rest index) per point."""
        tc = self.transformed_coords(coords)
        span = self.block * self.num_threads
        adjusted = (tc[0] - self.partition_offset) % span
        thread = adjusted // self.block
        w = adjusted % self.block
        if tc.shape[0] > 1:
            rest_idx = self._rest_strides @ tc[1:]
        else:
            rest_idx = np.zeros(tc.shape[1], dtype=np.int64)
        return thread, w, rest_idx

    def owning_thread(self, coords: np.ndarray) -> np.ndarray:
        """The thread whose slab each element falls in (Data-to-Core)."""
        return self._split(coords)[0]


class ClusteredLayout(_PartitionedBase):
    """Private-L2 customization (Section 5.3, "Private L2 Case").

    Construction (equivalent to the paper's reference rewriting
    ``(..., r_n/(k*p), R(r_v), r_n % (k*p))`` read row-major, generalized
    to arbitrary cluster geometry):

    1. enumerate each cluster's elements row-major as
       ``e = (rank_in_cluster * b + w) * rest + rest_index``;
    2. split into lines ``lam = e / p`` and line offsets ``o = e % p``;
    3. place cluster ``c``'s ``lam``-th line at the global line
       ``L = (lam / k) * N' + M_c[lam % k]``, where ``M_c`` is the sorted
       tuple of hardware MC indices assigned to ``c``.

    Under the hardware mapping ``MC = L % N'`` every line of cluster ``c``
    then lands on one of ``M_c`` -- the desired Data-to-MC mapping -- and
    a thread's stream sweeps its MCs round-robin (memory-level
    parallelism inside the cluster is preserved).  Because the clusters'
    MC sets partition ``[0, N')``, the map is injective.
    """

    def __init__(self, array: ArrayDecl, u: Optional[linalg.Matrix],
                 num_threads: int, unit_elems: int,
                 thread_cluster: Sequence[int],
                 cluster_mcs: Sequence[Sequence[int]], num_mcs: int,
                 partition_anchor: int = 0):
        super().__init__(array, u, num_threads, partition_anchor)
        if unit_elems < 1:
            raise ValueError("interleave unit must be >= 1 element")
        self.unit_elems = unit_elems
        self.num_mcs = num_mcs
        self.num_clusters = len(cluster_mcs)
        ks = {len(m) for m in cluster_mcs}
        if len(ks) != 1:
            raise ValueError("clusters must own equally many MCs")
        self.k = ks.pop()
        if self.k * self.num_clusters > num_mcs:
            raise ValueError("more cluster MC slots than MCs")
        if len(thread_cluster) != num_threads:
            raise ValueError("thread_cluster must cover every thread")

        self._thread_cluster = np.asarray(thread_cluster, dtype=np.int64)
        self._mc_slot = np.asarray(
            [sorted(int(x) for x in mcs) for mcs in cluster_mcs],
            dtype=np.int64)
        seen = sorted(int(x) for row in cluster_mcs for x in row)
        if len(set(seen)) != len(seen) or \
                any(not 0 <= x < num_mcs for x in seen):
            # Disjointness keeps the map injective; a *partial* MC cover
            # (fewer cluster slots than MCs) just leaves address holes --
            # used when an application owns a sub-region of the chip
            # (multiprogrammed workloads, Figure 25).
            raise ValueError("cluster MC sets must be disjoint subsets of "
                             "[0, num_mcs)")
        # rank of each thread inside its cluster, in thread order
        ranks = np.zeros(num_threads, dtype=np.int64)
        counter: Dict[int, int] = {}
        for t, c in enumerate(thread_cluster):
            ranks[t] = counter.get(int(c), 0)
            counter[int(c)] = ranks[t] + 1
        sizes = set(counter.values())
        if len(sizes) != 1:
            raise ValueError("clusters must have equally many threads")
        self.threads_per_cluster = sizes.pop()
        self._rank = ranks

    @property
    def cluster_elements(self) -> int:
        """Per-cluster enumeration span (padding included)."""
        return self.threads_per_cluster * self.block * self.rest

    def element_offsets(self, coords: np.ndarray) -> np.ndarray:
        thread, w, rest_idx = self._split(coords)
        cluster = self._thread_cluster[thread]
        rank = self._rank[thread]
        e = (rank * self.block + w) * self.rest + rest_idx
        lam = e // self.unit_elems
        o = e % self.unit_elems
        line = (lam // self.k) * self.num_mcs + \
            self._mc_slot[cluster, lam % self.k]
        return line * self.unit_elems + o

    def target_mc(self, coords: np.ndarray) -> np.ndarray:
        """Hardware MC index each element's line maps to (for tests)."""
        return (self.element_offsets(coords) // self.unit_elems) \
            % self.num_mcs

    @property
    def size_elements(self) -> int:
        s = self.cluster_elements
        if s == 0:
            return 0
        last_lam = (s - 1) // self.unit_elems
        return (last_lam // self.k + 1) * self.num_mcs * self.unit_elems

    def desired_mc_of_relative_page(self, rel_page: int) -> Optional[int]:
        # By construction line L targets hardware MC L % N'; with a page
        # interleave unit, relative page == line index.
        return int(rel_page % self.num_mcs)


class SharedL2Layout(_PartitionedBase):
    """Shared-L2 (SNUCA) customization (Section 5.3, "Shared L2 Case").

    On-chip localization first: thread ``t``'s elements are packed into
    lines whose home bank -- ``(addr / p) % N`` -- is a chosen *slot*
    ``s_t``, normally the core running ``t``.  The delta-skip of the paper
    (move an element forward past addresses whose MC is not adjacent to
    the desired MC) is realized by the slot assignment: slots are chosen
    per-thread so that the induced MC ``s_t % N'`` is the desired MC or
    adjacent to it, at the cost of a (small) home-bank displacement.  The
    assignment itself lives in :func:`repro.core.customization.
    assign_shared_slots`; this class just applies it.

    With ``g`` threads per core the line groups of co-located threads are
    interleaved (``L = (lam * g + sub) * N + s``), preserving injectivity.
    """

    def __init__(self, array: ArrayDecl, u: Optional[linalg.Matrix],
                 num_threads: int, unit_elems: int,
                 thread_slot: Sequence[int], num_banks: int, num_mcs: int,
                 partition_anchor: int = 0):
        super().__init__(array, u, num_threads, partition_anchor)
        if len(thread_slot) != num_threads:
            raise ValueError("thread_slot must cover every thread")
        self.unit_elems = unit_elems
        self.num_banks = num_banks
        self.num_mcs = num_mcs
        self._slot = np.asarray(thread_slot, dtype=np.int64)
        if np.any((self._slot < 0) | (self._slot >= num_banks)):
            raise ValueError("slots must be in [0, num_banks)")
        # sub-index among threads sharing a slot
        subs = np.zeros(num_threads, dtype=np.int64)
        counter: Dict[int, int] = {}
        for t, s in enumerate(thread_slot):
            subs[t] = counter.get(int(s), 0)
            counter[int(s)] = subs[t] + 1
        self._sub = subs
        self.groups_per_slot = max(counter.values()) if counter else 1

    def element_offsets(self, coords: np.ndarray) -> np.ndarray:
        thread, w, rest_idx = self._split(coords)
        e = w * self.rest + rest_idx
        lam = e // self.unit_elems
        o = e % self.unit_elems
        line = (lam * self.groups_per_slot + self._sub[thread]) \
            * self.num_banks + self._slot[thread]
        return line * self.unit_elems + o

    def home_bank(self, coords: np.ndarray) -> np.ndarray:
        """Home L2 bank of each element: ``(addr / p) % N`` (Eq. 4)."""
        return (self.element_offsets(coords) // self.unit_elems) \
            % self.num_banks

    def target_mc(self, coords: np.ndarray) -> np.ndarray:
        """MC of each element: ``(addr / p) % N'`` (Eq. 5)."""
        return (self.element_offsets(coords) // self.unit_elems) \
            % self.num_mcs

    @property
    def size_elements(self) -> int:
        per_thread = self.block * self.rest
        if per_thread == 0:
            return 0
        last_lam = (per_thread - 1) // self.unit_elems
        lines = (last_lam + 1) * self.groups_per_slot * self.num_banks
        return lines * self.unit_elems
