"""Determining the Data-to-Core mapping (Section 5.2, Algorithm 1 lines 1-29).

The goal: a unimodular transformation ``U`` of an array's data space such
that, after transformation, the elements touched by one thread form a
contiguous slab of hyperplanes orthogonal to the data partition dimension.

Derivation (single reference ``r = A i + o`` in a nest parallelized along
iteration dimension ``u``):  two iterations on one iteration hyperplane
(``i_1 - i_2`` in the span of the ``e_i, i != u``) must touch data on one
transformed data hyperplane, i.e. ``g_v A (i_1 - i_2) = 0`` where ``g_v``
is the partition row of ``U``.  Equivalently ``B^T g_v^T = 0`` with ``B``
the access matrix minus its ``u``-th column.  We solve by exact integer
elimination and complete ``g_v`` to unimodular.

With multiple references, each distinct submatrix ``B_i`` gets a weight --
the total dynamic occurrence count (trip-count products) of the references
sharing it -- and the heaviest solvable system wins; references whose
system the winner also satisfies are counted as *satisfied* (Table 2's
third column).

We always put the partition row first (``v = 0``), so the partition
dimension is the slowest-varying dimension of the transformed space --
the paper's footnote 3 choice, which minimizes padding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import linalg

# The data partition dimension: always the slowest-varying (footnote 3).
PARTITION_DIM = 0


@dataclass(frozen=True)
class RefSystem:
    """One reference occurrence, as the solver sees it.

    ``access``/``offset`` come from the reference, ``u`` is the enclosing
    nest's parallel dimension, ``lo`` the parallel loop's lower bound, and
    ``weight`` the nest's dynamic trip count (Section 5.2's ``n_j``).
    """

    access: Tuple[Tuple[int, ...], ...]
    offset: Tuple[int, ...]
    u: int
    lo: int
    weight: int

    def submatrix(self) -> linalg.Matrix:
        return submatrix_without_column(self.access, self.u)

    def alpha(self, g: Sequence[int]) -> int:
        """``d a'_v / d i_u``: how fast the partition coordinate moves
        with the parallel iterator, under partition row ``g``."""
        column = [row[self.u] for row in self.access]
        return sum(gi * ci for gi, ci in zip(g, column))

    def anchor(self, g: Sequence[int]) -> int:
        """``a'_v`` at the first parallel iteration (``i_u = lo``,
        other iterators 0): where thread 0's data slab begins."""
        base = sum(gi * oi for gi, oi in zip(g, self.offset))
        return base + self.alpha(g) * self.lo


def submatrix_without_column(access: Sequence[Sequence[int]], u: int
                             ) -> linalg.Matrix:
    """``B``: the access matrix with its ``u``-th column removed."""
    rows = len(access)
    cols = len(access[0]) if rows else 0
    if not 0 <= u < cols:
        raise ValueError(f"column {u} out of range for {rows}x{cols}")
    return [[int(row[j]) for j in range(cols) if j != u] for row in access]


def partition_vector(b: linalg.Matrix) -> Optional[linalg.Vector]:
    """Solve ``B^T g^T = 0`` for a primitive nontrivial ``g``, or None.

    A ``None`` result means every candidate hyperplane family mixes data
    from different threads -- the array cannot be partitioned for this
    reference and is left in its original layout (one source of the <100%
    "arrays optimized" column of Table 2).
    """
    bt = linalg.transpose(b)
    if not bt:  # depth-1 nest: B has no columns, any g works
        n = len(b)
        return [1] + [0] * (n - 1)
    return linalg.solve_homogeneous(bt)


def build_unimodular(g: linalg.Vector) -> linalg.Matrix:
    """Complete ``g`` to a unimodular ``U`` with ``g`` as its first row;
    Hermite-normal-form correction guards the invariant exactly as
    Algorithm 1 lines 10-12 do.  The sign of ``g`` is preserved (the
    caller orients it so thread slabs run in thread order)."""
    divisor = linalg.vec_gcd(g)
    if divisor == 0:
        raise ValueError("cannot build a transform from the zero vector")
    g = [int(x) // divisor for x in g]
    u = linalg.complete_to_unimodular(g, row=PARTITION_DIM)
    if not linalg.is_unimodular(u):  # pragma: no cover - construction
        _, q = linalg.row_hermite_normal_form(u)
        u = linalg.mat_mul(q, u)
    return u


@dataclass(frozen=True)
class WeightedSystem:
    """One distinct submatrix with its accumulated dynamic weight."""

    submatrix: Tuple[Tuple[int, ...], ...]
    weight: int
    num_references: int


@dataclass
class DataToCoreResult:
    """Outcome of the Data-to-Core mapping step for one array.

    ``transform`` is ``None`` when no reference admitted a nontrivial
    partition vector.  ``satisfied_weight / total_weight`` is the fraction
    of dynamic references whose hyperplane constraint the chosen ``g``
    satisfies (Table 2, third column).  ``partition_anchor`` is the
    (untransformed-origin) value of the partition coordinate at thread
    0's first iteration -- the customized layouts align their thread
    slabs to it, so loop lower bounds (stencil halos) do not smear a
    thread's data across two slots.
    """

    transform: Optional[linalg.Matrix]
    partition_row: Optional[linalg.Vector]
    systems: List[WeightedSystem] = field(default_factory=list)
    satisfied_weight: int = 0
    total_weight: int = 0
    partition_anchor: int = 0

    @property
    def optimized(self) -> bool:
        return self.transform is not None

    @property
    def satisfaction(self) -> float:
        if self.total_weight == 0:
            return 0.0
        return self.satisfied_weight / self.total_weight


def _satisfies(g: linalg.Vector, b: linalg.Matrix) -> bool:
    """True when ``B^T g^T = 0``."""
    if not b or not b[0]:
        return True
    bt = linalg.transpose(b)
    return all(sum(row[j] * g[j] for j in range(len(g))) == 0 for row in bt)


def data_to_core_mapping(references: Sequence[RefSystem]
                         ) -> DataToCoreResult:
    """Choose ``U`` for one array from all its references.

    ``references`` holds one :class:`RefSystem` per textual reference.
    References from different nests are deliberately treated identically
    (Section 5.5): weights simply accumulate per distinct submatrix.

    The chosen partition row is *oriented*: ``g`` is negated when the
    heaviest satisfied reference's partition coordinate would decrease
    with the parallel iterator, so thread slabs always run in thread
    order, and its ``partition_anchor`` records where thread 0's slab
    starts.
    """
    if not references:
        return DataToCoreResult(None, None)

    by_submatrix: Dict[Tuple[Tuple[int, ...], ...],
                       List[RefSystem]] = {}
    for ref in references:
        key = tuple(tuple(row) for row in ref.submatrix())
        by_submatrix.setdefault(key, []).append(ref)

    systems = [WeightedSystem(key, sum(r.weight for r in refs), len(refs))
               for key, refs in by_submatrix.items()]
    systems.sort(key=lambda s: (-s.weight, s.submatrix))
    total_weight = sum(s.weight for s in systems)

    chosen_g: Optional[linalg.Vector] = None
    winner: Optional[WeightedSystem] = None
    for system in systems:  # heaviest solvable system wins
        g = partition_vector([list(row) for row in system.submatrix])
        if g is not None:
            chosen_g = g
            winner = system
            break

    if chosen_g is None:
        return DataToCoreResult(None, None, systems=systems,
                                total_weight=total_weight)

    chosen_g = linalg.make_primitive(chosen_g)
    # Orient g by the heaviest reference of the winning system, then
    # anchor thread 0's slab at the weighted modal anchor -- for a
    # stencil, the center reference's starting coordinate, so the +/-1
    # halo taps split evenly across the slab boundaries.
    winners = by_submatrix[winner.submatrix]
    rep = max(winners, key=lambda r: r.weight)
    if rep.alpha(chosen_g) < 0:
        chosen_g = [-x for x in chosen_g]
    votes: Dict[int, int] = {}
    for r in winners:
        votes[r.anchor(chosen_g)] = votes.get(r.anchor(chosen_g), 0) \
            + r.weight
    best = max(votes.values())
    tied = sorted(a for a, v in votes.items() if v == best)
    anchor = tied[len(tied) // 2]  # tie -> the central (stencil) tap

    satisfied = sum(
        s.weight for s in systems
        if _satisfies(chosen_g, [list(row) for row in s.submatrix]))
    u_matrix = build_unimodular(chosen_g)
    return DataToCoreResult(
        transform=u_matrix,
        partition_row=list(chosen_g),
        systems=systems,
        satisfied_weight=satisfied,
        total_weight=total_weight,
        partition_anchor=anchor)
