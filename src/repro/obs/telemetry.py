"""Telemetry registry: counters, gauges, histograms, time series.

Where the tracer answers "where did the wall-clock go", telemetry
answers "what did the simulated hardware do over simulated time": how
many flits crossed each mesh link, how deep each memory controller's
bank queues ran, how the row-hit rate evolved.  Publishers (the NoC,
the memory controllers, the page table, the caches) create metrics in
one :class:`TelemetryRegistry` per run and update them inline; the
registry is a plain picklable object, so per-worker registries from a
parallel sweep travel back to the parent and merge.

Metric types:

* :class:`Counter` -- a monotone total (``noc.messages``).
* :class:`Gauge` -- a last-written value with min/max (``mem.pages``).
* :class:`Histogram` -- exponential buckets (powers of ``base``); one
  ``observe`` per sample, O(1), for long-tailed quantities like queue
  waits.
* :class:`TimeSeries` -- values bucketed over *simulated* cycles
  (sum/count/max per bucket), the shape behind per-MC queue-depth
  timelines and row-hit-rate streams.  Buckets are a dict, so a sparse
  run costs memory proportional to activity, not to duration.

Everything here is deliberately dependency-free and single-writer per
run: a run's simulator owns its registry exclusively (the isolation the
multiprogram tests assert), and cross-run aggregation goes through
:meth:`TelemetryRegistry.merge`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "TelemetryRegistry",
           "TimeSeries"]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    # Plain __slots__ classes need explicit pickle support.
    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state


class Gauge:
    """A last-written value, with the min/max ever written."""

    kind = "gauge"
    __slots__ = ("value", "min", "max", "writes")

    def __init__(self) -> None:
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = value
        self.writes += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Gauge") -> None:
        if other.writes:
            self.value = other.value
            self.writes += other.writes
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value,
                "min": (None if math.isinf(self.min) else self.min),
                "max": (None if math.isinf(self.max) else self.max)}

    def __getstate__(self):
        return (self.value, self.min, self.max, self.writes)

    def __setstate__(self, state):
        self.value, self.min, self.max, self.writes = state


class Histogram:
    """Exponential-bucket histogram: bucket ``i`` counts samples with
    ``base**(i-1) < v <= base**i`` (bucket 0 holds ``v <= 1``)."""

    kind = "histogram"
    __slots__ = ("base", "buckets", "count", "sum")

    def __init__(self, base: float = 2.0):
        if base <= 1.0:
            raise ValueError("histogram base must be > 1")
        self.base = base
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value <= 1.0:
            index = 0
        else:
            index = int(math.ceil(math.log(value, self.base) - 1e-12))
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def upper_bound(self, index: int) -> float:
        return self.base ** index

    def merge(self, other: "Histogram") -> None:
        if other.base != self.base:
            raise ValueError(
                f"cannot merge histograms with bases {self.base} "
                f"and {other.base}")
        self.count += other.count
        self.sum += other.sum
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` per occupied bucket, in
        bound order -- the Prometheus ``le`` series."""
        running = 0
        out = []
        for index in sorted(self.buckets):
            running += self.buckets[index]
            out.append((self.upper_bound(index), running))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "base": self.base,
                "count": self.count, "sum": self.sum,
                "buckets": {str(self.upper_bound(i)): c
                            for i, c in sorted(self.buckets.items())}}

    def __getstate__(self):
        return (self.base, self.buckets, self.count, self.sum)

    def __setstate__(self, state):
        self.base, self.buckets, self.count, self.sum = state


class TimeSeries:
    """Values bucketed over simulated time: ``record(t, v)`` folds the
    sample into bucket ``int(t // bucket_cycles)`` (sum, count, max)."""

    kind = "series"
    __slots__ = ("bucket_cycles", "buckets", "count", "sum")

    def __init__(self, bucket_cycles: float = 1000.0):
        if bucket_cycles <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_cycles = bucket_cycles
        # bucket index -> [sum, count, max]
        self.buckets: Dict[int, List[float]] = {}
        self.count = 0
        self.sum = 0.0

    def record(self, t: float, value: float) -> None:
        self.count += 1
        self.sum += value
        index = int(t // self.bucket_cycles)
        slot = self.buckets.get(index)
        if slot is None:
            self.buckets[index] = [value, 1.0, value]
        else:
            slot[0] += value
            slot[1] += 1.0
            if value > slot[2]:
                slot[2] = value

    def merge(self, other: "TimeSeries") -> None:
        if other.bucket_cycles != self.bucket_cycles:
            raise ValueError(
                f"cannot merge series with bucket widths "
                f"{self.bucket_cycles} and {other.bucket_cycles}")
        self.count += other.count
        self.sum += other.sum
        for index, (vsum, vcount, vmax) in other.buckets.items():
            slot = self.buckets.get(index)
            if slot is None:
                self.buckets[index] = [vsum, vcount, vmax]
            else:
                slot[0] += vsum
                slot[1] += vcount
                if vmax > slot[2]:
                    slot[2] = vmax

    def points(self) -> Iterator[Tuple[float, float, int, float]]:
        """``(bucket_start_cycle, mean, count, max)`` in time order."""
        for index in sorted(self.buckets):
            vsum, vcount, vmax = self.buckets[index]
            yield (index * self.bucket_cycles, vsum / vcount,
                   int(vcount), vmax)

    @property
    def span(self) -> Tuple[float, float]:
        """First and one-past-last cycle covered by any bucket."""
        if not self.buckets:
            return 0.0, 0.0
        lo = min(self.buckets) * self.bucket_cycles
        hi = (max(self.buckets) + 1) * self.bucket_cycles
        return lo, hi

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "bucket_cycles": self.bucket_cycles,
                "count": self.count, "sum": self.sum,
                "points": [[t, mean, count, vmax]
                           for t, mean, count, vmax in self.points()]}

    def __getstate__(self):
        return (self.bucket_cycles, self.buckets, self.count, self.sum)

    def __setstate__(self, state):
        (self.bucket_cycles, self.buckets,
         self.count, self.sum) = state


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "series": TimeSeries}


class TelemetryRegistry:
    """One run's metrics by name.  Accessors are get-or-create, so a
    publisher never has to know whether another layer already claimed
    the name -- but a name's type is fixed on first use."""

    def __init__(self) -> None:
        self.metrics: Dict[str, object] = {}

    # -- get-or-create accessors --------------------------------------------
    def _get(self, name: str, kind: str, factory):
        metric = self.metrics.get(name)
        if metric is None:
            metric = factory()
            self.metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"telemetry metric {name!r} is a {metric.kind}, "
                f"not a {kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", Gauge)

    def histogram(self, name: str, base: float = 2.0) -> Histogram:
        return self._get(name, "histogram", lambda: Histogram(base))

    def series(self, name: str,
               bucket_cycles: float = 1000.0) -> TimeSeries:
        return self._get(name, "series",
                         lambda: TimeSeries(bucket_cycles))

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Bump the counter ``name`` -- the one-liner for event-shaped
        publishers (store corruption/recovery counts, degradations)."""
        self.counter(name).inc(amount)

    # -- reading ------------------------------------------------------------
    def get(self, name: str):
        return self.metrics.get(name)

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self.metrics if n.startswith(prefix))

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar view of a metric: counter/gauge value, histogram and
        series sum.  Missing metrics read as ``default``."""
        metric = self.metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        return metric.sum

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable snapshot of every metric."""
        return {name: metric.as_dict()
                for name, metric in sorted(self.metrics.items())}

    # -- aggregation --------------------------------------------------------
    def merge(self, other: "TelemetryRegistry") -> "TelemetryRegistry":
        """Fold another registry into this one (same-named metrics must
        have the same type); returns self."""
        for name, metric in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = self._clone(metric)
            elif mine.kind != metric.kind:
                raise ValueError(
                    f"cannot merge metric {name!r}: {mine.kind} "
                    f"vs {metric.kind}")
            else:
                mine.merge(metric)
        return self

    @staticmethod
    def _clone(metric):
        fresh = _TYPES[metric.kind].__new__(_TYPES[metric.kind])
        fresh.__setstate__(metric.__getstate__())
        # Deep-copy mutable bucket state so merges never alias.
        if isinstance(fresh, Histogram):
            fresh.buckets = dict(fresh.buckets)
        elif isinstance(fresh, TimeSeries):
            fresh.buckets = {k: list(v) for k, v in fresh.buckets.items()}
        return fresh
