"""Exporters: spans and telemetry out, in formats tools already read.

* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` JSON that ``chrome://tracing`` and Perfetto load.
  Wall-clock spans become one process lane per run; simulated-time
  telemetry (per-MC queue depth, row-hit rate) becomes counter tracks
  in a separate ``simulated time`` process, and fault windows render as
  spans there, so "MC 2 went offline" lines up with the queue-depth
  spike it caused.
* :func:`jsonl_events` -- one JSON object per line (spans, then
  telemetry samples): the format log pipelines ingest.
* :func:`prometheus_text` -- the Prometheus exposition format, for
  scraping sweep fleets.
* :func:`link_heatmap` / :func:`link_heatmap_csv` -- the NoC link
  occupancy map (the paper's Figure 13 intuition, per link instead of
  per controller) as ASCII art or CSV.
* :func:`mc_timeline` / :func:`mc_timeline_csv` -- per-MC bank-queue
  occupancy over simulated time (Figure 18, time-resolved).
* :func:`profile_table` -- the ``repro-cli profile`` top-N span table.

All functions take :class:`~repro.obs.data.ObsData` (or a list -- runs
become lanes) and return strings/dicts; nothing here touches the
simulator, so exporting costs nothing unless called.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.data import ObsData

#: Intensity ramp for ASCII heatmaps/timelines, low to high.
RAMP = " .:-=+*#%@"


def _as_parts(obs) -> List[ObsData]:
    if isinstance(obs, ObsData):
        return [obs]
    return [part for part in obs if part is not None]


def _scaled(value: float, peak: float) -> str:
    if peak <= 0 or value <= 0:
        return RAMP[0]
    index = int(round((len(RAMP) - 1) * min(1.0, value / peak)))
    return RAMP[max(1, index)] if value > 0 else RAMP[0]


# ---------------------------------------------------------------------------
# Chrome trace_event JSON

#: pid of the synthetic "simulated time" process in a Chrome trace.
SIM_PID = 1000


def chrome_trace(obs) -> Dict[str, object]:
    """Build the ``trace_event`` dict for one or more observed runs."""
    parts = _as_parts(obs)
    events: List[Dict[str, object]] = []
    for pid, part in enumerate(parts):
        label = part.label or f"run{pid}"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": label}})
        if not part.spans:
            continue
        base = min(record.start for record in part.spans)
        tids: Dict[int, int] = {}
        for record in part.spans:
            tid = tids.setdefault(record.tid, len(tids))
            event = {"name": record.name,
                     "cat": record.cat or "repro",
                     "ph": "X",
                     "ts": round((record.start - base) * 1e6, 3),
                     "dur": round(record.duration * 1e6, 3),
                     "pid": pid, "tid": tid}
            if record.args:
                event["args"] = dict(record.args)
            events.append(event)
        for ident, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid,
                           "args": {"name": f"thread-{tid}"}})
    events.extend(_sim_time_events(parts))
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs",
                          "runs": [part.label for part in parts]}}


def _sim_time_events(parts: Sequence[ObsData]) -> List[Dict[str, object]]:
    """Counter tracks + fault-window spans in simulated cycles, one
    ``simulated time`` process per run (pid ``SIM_PID + run``)."""
    events: List[Dict[str, object]] = []
    for run, part in enumerate(parts):
        pid = SIM_PID + run
        named = False
        registry = part.telemetry
        if registry is not None:
            for name in registry.names():
                metric = registry.get(name)
                if metric.kind != "series":
                    continue
                for t, mean, _count, _vmax in metric.points():
                    events.append({"name": name, "ph": "C", "ts": t,
                                   "pid": pid,
                                   "args": {"mean": round(mean, 4)}})
                named = named or bool(metric.buckets)
        for window in part.meta.get("fault_windows", ()):  # type: ignore
            end = window.get("end")
            start = float(window.get("start", 0.0))
            duration = (float(end) - start if end is not None
                        else float(part.meta.get("exec_time", start)
                                   or start) - start)
            events.append({"name": window.get("name", "fault"),
                           "cat": "fault", "ph": "X", "ts": start,
                           "dur": max(duration, 0.0), "pid": pid,
                           "tid": 0, "args": dict(window)})
            named = True
        if named:
            label = part.label or f"run{run}"
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": f"simulated time: {label}"}})
    return events


def write_chrome_trace(path: str, obs) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    trace = chrome_trace(obs)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return len(trace["traceEvents"])


# ---------------------------------------------------------------------------
# JSONL event stream

def jsonl_events(obs) -> str:
    """One JSON object per line: spans, then telemetry snapshots."""
    lines = []
    for part in _as_parts(obs):
        for record in part.spans:
            event = {"event": "span", "run": record.run or part.label,
                     "name": record.name, "cat": record.cat,
                     "start": record.start, "duration": record.duration,
                     "tid": record.tid}
            if record.args:
                event["args"] = record.args
            lines.append(json.dumps(event, default=str))
        if part.telemetry is not None:
            for name, snapshot in part.telemetry.as_dict().items():
                lines.append(json.dumps(
                    {"event": "metric", "run": part.label, "name": name,
                     **snapshot}, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Prometheus exposition format

def _prom_name(name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def process_registry() -> "TelemetryRegistry":
    """Process-wide operational counters as a fresh registry.

    Gathers the state that lives outside any single run's
    :class:`~repro.obs.data.ObsData`:

    * ``store.*`` -- every live result store's shared
      :class:`~repro.store.base.StoreStats` (gets/hits/misses/puts,
      corruption, quarantine, degradations), summed across paths.
      Every field is published, zeros included, so the exposition set
      is stable from the first scrape.
    * ``store.remote.*`` -- the network store client's counters
      (:class:`~repro.store.remote.RemoteStats`: retries, timeouts,
      breaker transitions), summed across remote stores, plus a
      ``store.remote.breaker_state`` gauge (0=closed, 1=half-open,
      2=open; the worst state across clients).
    * ``supervision.*`` -- the pool supervisor's recovery counters
      (:func:`repro.sim.executor.supervision_stats`: worker restarts,
      re-enqueued points, hang detections).
    * ``shm.*`` -- the shared artifact plane's counters
      (:func:`repro.sim.shm.shm_stats`: segments published and their
      bytes, worker attaches, checksum-corrupt entries skipped,
      segments unlinked/reaped).
    * ``steal.*`` -- the work-stealing scheduler's counters
      (:func:`repro.sim.executor.steal_stats`: batches and tasks
      handed to workers, points re-enqueued after a loss).
    * ``harness.abandoned_threads`` (gauge) /
      ``harness.abandoned_threads_total`` (counter) -- worker threads
      the hardened harness abandoned on timeout
      (:func:`repro.sim.harness.abandoned_threads`).

    Before this existed these counters only surfaced in the CLI's
    stderr summary and ``obs=full`` run telemetry; the service's
    ``GET /metrics`` endpoint merges this registry into its own so a
    scraper sees them continuously.
    """
    from repro.obs.telemetry import TelemetryRegistry
    from repro.sim.executor import steal_stats, supervision_stats
    from repro.sim.harness import abandoned_threads
    from repro.sim.shm import shm_stats
    from repro.store import base as store_base
    from repro.store.remote import RemoteStats

    registry = TelemetryRegistry()
    from repro.store.base import StoreStats
    totals = {name: 0 for name in StoreStats.FIELDS}
    remote_totals = {name: 0 for name in RemoteStats.FIELDS}
    breaker_state = 0
    for store in store_base.instances().values():
        for name, value in store.stats.snapshot().items():
            totals[name] = totals.get(name, 0) + value
        primary = getattr(store, "primary", store)
        remote = getattr(primary, "remote_stats", None)
        if remote is not None:
            for name, value in remote.snapshot().items():
                remote_totals[name] = remote_totals.get(name, 0) + value
            breaker_state = max(breaker_state,
                                primary.breaker.state_value())
    for name in StoreStats.FIELDS:
        registry.counter(f"store.{name}").inc(totals[name])
    for name in RemoteStats.FIELDS:
        registry.counter(f"store.remote.{name}").inc(remote_totals[name])
    registry.gauge("store.remote.breaker_state").set(breaker_state)
    for name, value in supervision_stats().items():
        registry.counter(f"supervision.{name}").inc(value)
    for name, value in shm_stats().items():
        registry.counter(f"shm.{name}").inc(value)
    for name, value in steal_stats().items():
        registry.counter(f"steal.{name}").inc(value)
    strays = abandoned_threads()
    registry.gauge("harness.abandoned_threads").set(strays["live"])
    registry.counter("harness.abandoned_threads_total").inc(
        strays["total"])
    return registry


def process_obs(label: str = "process") -> ObsData:
    """:func:`process_registry` wrapped as an :class:`ObsData` part,
    ready for :func:`prometheus_text` (labelled so process-wide
    counters stay distinguishable from per-run telemetry)."""
    return ObsData(level="full", label=label,
                   telemetry=process_registry())


def prometheus_text(obs) -> str:
    """Render telemetry in the Prometheus text exposition format.
    Series flatten to ``_sum``/``_count`` pairs (their time axis is
    simulated cycles, which a scraper cannot replay)."""
    lines: List[str] = []
    for part in _as_parts(obs):
        registry = part.telemetry
        if registry is None:
            continue
        label = f'{{run="{part.label}"}}' if part.label else ""
        for name in registry.names():
            metric = registry.get(name)
            prom = _prom_name(name)
            if metric.kind == "counter":
                lines.append(f"# TYPE {prom} counter")
                lines.append(f"{prom}{label} {metric.value:g}")
            elif metric.kind == "gauge":
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom}{label} {metric.value:g}")
            elif metric.kind == "histogram":
                lines.append(f"# TYPE {prom} histogram")
                run_label = (f'run="{part.label}",' if part.label else "")
                for bound, cumulative in metric.cumulative():
                    lines.append(f'{prom}_bucket{{{run_label}le="{bound:g}"'
                                 f'}} {cumulative}')
                lines.append(f'{prom}_bucket{{{run_label}le="+Inf"}} '
                             f'{metric.count}')
                lines.append(f"{prom}_sum{label} {metric.sum:g}")
                lines.append(f"{prom}_count{label} {metric.count}")
            else:  # series
                lines.append(f"# TYPE {prom}_sum counter")
                lines.append(f"{prom}_sum{label} {metric.sum:g}")
                lines.append(f"{prom}_count{label} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# NoC link heatmap

def _link_loads(part: ObsData) -> Optional[Tuple[int, int, Dict[Tuple[int,
                                                                      int],
                                                                float]]]:
    """``(width, height, {(src, dst): flits})`` from one run, or None
    when the run carries no mesh telemetry."""
    registry = part.telemetry
    mesh_dims = part.meta.get("mesh")
    if registry is None or not mesh_dims:
        return None
    from repro.arch.topology import Mesh
    width, height = int(mesh_dims[0]), int(mesh_dims[1])
    mesh = Mesh(width, height)
    loads: Dict[Tuple[int, int], float] = {}
    for link, (src, dst) in enumerate(mesh.links()):
        flits = registry.value(f"noc.link.{link}.flits")
        if flits:
            loads[(src, dst)] = flits
    return width, height, loads


def link_heatmap(obs, char_width: int = 3) -> str:
    """ASCII heatmap of per-link flit occupancy over the mesh.

    Nodes are ``[..]`` cells; the characters between adjacent cells
    encode the busier direction of that link pair on the ``RAMP``
    scale, normalized to the busiest link in the run.
    """
    blocks = []
    for part in _as_parts(obs):
        resolved = _link_loads(part)
        if resolved is None:
            continue
        width, height, loads = resolved
        peak = max(loads.values(), default=0.0)
        pair = {}
        for (src, dst), flits in loads.items():
            key = (min(src, dst), max(src, dst))
            pair[key] = max(pair.get(key, 0.0), flits)

        def cell(x: int, y: int) -> int:
            return y * width + x

        lines = [f"NoC link occupancy (flit-hops), peak={peak:g}"
                 + (f" [{part.label}]" if part.label else "")]
        for y in range(height):
            row = []
            for x in range(width):
                row.append(f"[{cell(x, y):>2d}]")
                if x + 1 < width:
                    load = pair.get((cell(x, y), cell(x + 1, y)), 0.0)
                    row.append(_scaled(load, peak) * char_width)
            lines.append("".join(row))
            if y + 1 < height:
                row = []
                for x in range(width):
                    load = pair.get((cell(x, y), cell(x, y + 1)), 0.0)
                    row.append(f" {_scaled(load, peak)}{_scaled(load, peak)} ")
                    if x + 1 < width:
                        row.append(" " * char_width)
                lines.append("".join(row))
        lines.append(f"scale: '{RAMP}' (idle -> saturated)")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + ("\n" if blocks else "")


def link_heatmap_csv(obs) -> str:
    """Per-link occupancy as CSV: run,link,src,dst,flit_hops."""
    lines = ["run,link,src,dst,flit_hops"]
    for part in _as_parts(obs):
        resolved = _link_loads(part)
        if resolved is None:
            continue
        width, height, loads = resolved
        from repro.arch.topology import Mesh
        mesh = Mesh(width, height)
        for link, (src, dst) in enumerate(mesh.links()):
            flits = loads.get((src, dst), 0.0)
            lines.append(f"{part.label},{link},{src},{dst},{flits:g}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# MC occupancy timeline

def _mc_series(part: ObsData) -> List[Tuple[int, object]]:
    registry = part.telemetry
    if registry is None:
        return []
    out = []
    for name in registry.names("mc."):
        if name.endswith(".queue_wait"):
            mc = int(name.split(".")[1])
            out.append((mc, registry.get(name)))
    return sorted(out)


def mc_timeline(obs, width: int = 60) -> str:
    """ASCII per-MC queue-occupancy timeline over simulated cycles.

    Each cell is the mean number of waiting requests at that controller
    during the cell's time slice (Little's law: accumulated wait in the
    slice / slice length), on the ``RAMP`` scale normalized to the
    busiest slice of any controller.
    """
    blocks = []
    for part in _as_parts(obs):
        series = _mc_series(part)
        if not series:
            continue
        horizon = max((s.span[1] for _, s in series), default=0.0)
        horizon = max(horizon,
                      float(part.meta.get("exec_time", 0.0) or 0.0))
        if horizon <= 0:
            continue
        slice_cycles = horizon / width
        rows = {}
        peak = 0.0
        for mc, metric in series:
            cells = [0.0] * width
            for index, (vsum, _count, _vmax) in metric.buckets.items():
                t = index * metric.bucket_cycles
                cells[min(width - 1, int(t / slice_cycles))] += vsum
            cells = [c / slice_cycles for c in cells]
            rows[mc] = cells
            peak = max(peak, max(cells))
        lines = [f"MC bank-queue occupancy over {horizon:g} cycles "
                 f"(peak {peak:.2f} waiting)"
                 + (f" [{part.label}]" if part.label else "")]
        for mc, cells in sorted(rows.items()):
            body = "".join(_scaled(c, peak) for c in cells)
            lines.append(f"  MC{mc:<2d} |{body}|")
        lines.append(f"scale: '{RAMP}' (idle -> peak)")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + ("\n" if blocks else "")


def mc_timeline_csv(obs) -> str:
    """Per-MC queue-wait series as CSV:
    run,mc,bucket_start_cycle,mean_wait,samples,max_wait."""
    lines = ["run,mc,bucket_start_cycle,mean_wait,samples,max_wait"]
    for part in _as_parts(obs):
        for mc, metric in _mc_series(part):
            for t, mean, count, vmax in metric.points():
                lines.append(f"{part.label},{mc},{t:g},{mean:g},"
                             f"{count},{vmax:g}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Span profile

def profile_table(obs, top: int = 15) -> str:
    """The ``repro-cli profile`` table: top spans by total time."""
    merged = ObsData.merged(_as_parts(obs)) if not isinstance(obs, ObsData) \
        else obs
    totals = merged.span_totals()
    if not totals:
        return "no spans recorded (is obs enabled?)\n"
    whole = sum(slot["total"] for name, slot in totals.items()
                if name == "run") or \
        sum(slot["total"] for slot in totals.values())
    order = sorted(totals.items(), key=lambda kv: -kv[1]["total"])[:top]
    name_width = max(len("span"), max(len(name) for name, _ in order))
    lines = [f"{'span':<{name_width}}  {'calls':>6} {'total ms':>10} "
             f"{'mean us':>10} {'max us':>10} {'share':>7}"]
    for name, slot in order:
        share = slot["total"] / whole if whole > 0 else 0.0
        lines.append(
            f"{name:<{name_width}}  {slot['calls']:>6d} "
            f"{slot['total'] * 1e3:>10.3f} {slot['mean'] * 1e6:>10.1f} "
            f"{slot['max'] * 1e6:>10.1f} {share:>6.1%}")
    return "\n".join(lines) + "\n"
