"""repro.obs: span tracing, telemetry, and trace/heatmap export.

The observability subsystem behind ``RunSpec.obs``:

* :mod:`repro.obs.tracer` -- nested wall-clock spans with counters,
  context-manager and decorator APIs, thread- and process-safe.
* :mod:`repro.obs.telemetry` -- counters, gauges, exponential-bucket
  histograms and simulated-time series the NoC, memory controllers,
  page table and caches publish into.
* :mod:`repro.obs.export` -- Chrome ``trace_event`` JSON, JSONL,
  Prometheus text, ASCII/CSV NoC link heatmaps and per-MC occupancy
  timelines.

Levels (:data:`OBS_LEVELS`): ``off`` (default -- measurably free, see
``benchmarks/bench_obs_overhead.py``), ``spans`` (wall-clock phase
tracing), ``full`` (spans + hardware telemetry).  Like
``RunSpec.validate``, the level is an observation knob, not a
simulation input: it is excluded from :meth:`RunSpec.key`, so observed
and unobserved runs share cache identity.
"""

from repro.obs.data import OBS_LEVELS, ObsData
from repro.obs.export import (chrome_trace, jsonl_events, link_heatmap,
                              link_heatmap_csv, mc_timeline,
                              mc_timeline_csv, process_obs,
                              process_registry, profile_table,
                              prometheus_text, write_chrome_trace)
from repro.obs.telemetry import (Counter, Gauge, Histogram,
                                 TelemetryRegistry, TimeSeries)
from repro.obs.tracer import (SpanRecord, Tracer, activate,
                              current_tracer, obs_instant, obs_span,
                              traced)

__all__ = [
    "Counter", "Gauge", "Histogram", "OBS_LEVELS", "ObsData",
    "SpanRecord", "TelemetryRegistry", "TimeSeries", "Tracer",
    "activate", "chrome_trace", "current_tracer", "jsonl_events",
    "link_heatmap", "link_heatmap_csv", "mc_timeline",
    "mc_timeline_csv", "obs_instant", "obs_span", "process_obs",
    "process_registry", "profile_table", "prometheus_text", "traced",
    "write_chrome_trace",
]
