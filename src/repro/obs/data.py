"""The per-run observability bundle: spans + telemetry + metadata.

:class:`ObsData` is what a run hands back when ``RunSpec.obs`` is not
``"off"``: the tracer's merged spans, the telemetry registry (``full``
level only), and run metadata the exporters want (label, simulated
exec time, fault windows).  It is plain data -- picklable, so parallel
sweep workers return it across process boundaries -- and mergeable, so
a sweep can be profiled as one trace with per-run lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.telemetry import TelemetryRegistry
from repro.obs.tracer import SpanRecord

#: Observability levels, in increasing coverage order: ``off`` costs
#: nothing, ``spans`` traces wall-clock phases, ``full`` additionally
#: collects hardware telemetry (per-link occupancy, per-MC series).
OBS_LEVELS = ("off", "spans", "full")


@dataclass
class ObsData:
    """Everything one observed run produced."""

    level: str = "spans"
    label: str = ""
    spans: List[SpanRecord] = field(default_factory=list)
    telemetry: Optional[TelemetryRegistry] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return self.level != "off"

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregate spans by name: calls, total/mean/max seconds."""
        totals: Dict[str, Dict[str, float]] = {}
        for record in self.spans:
            slot = totals.setdefault(
                record.name, {"calls": 0, "total": 0.0, "max": 0.0})
            slot["calls"] += 1
            slot["total"] += record.duration
            if record.duration > slot["max"]:
                slot["max"] = record.duration
        for slot in totals.values():
            slot["mean"] = slot["total"] / slot["calls"]
        return totals

    @classmethod
    def merged(cls, parts: Iterable["ObsData"],
               label: str = "merged") -> "ObsData":
        """Combine several runs' bundles: spans concatenate (each span
        already carries its run label), telemetry registries fold
        together, and per-run metadata nests under ``meta["runs"]``."""
        parts = [p for p in parts if p is not None]
        out = cls(level=max((p.level for p in parts),
                            key=OBS_LEVELS.index, default="spans"),
                  label=label)
        registries = [p.telemetry for p in parts if p.telemetry]
        if registries:
            out.telemetry = TelemetryRegistry()
            for registry in registries:
                out.telemetry.merge(registry)
        runs = []
        for part in parts:
            out.spans.extend(part.spans)
            runs.append({"label": part.label, "level": part.level,
                         **part.meta})
        out.spans.sort(key=lambda r: (r.run, r.start))
        out.meta["runs"] = runs
        return out
