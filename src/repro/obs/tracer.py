"""Zero-dependency span tracer: where wall-clock time goes, nested.

A *span* is one timed region of work -- a compiler phase, a simulator
stage, a harness attempt -- with a name, a category, optional counters,
and the thread it ran on.  :class:`Tracer` collects spans into
per-thread buffers (appends never contend across threads) and merges
them on demand, so instrumented code can run under the parallel sweep
executor or a multi-threaded harness without locks on the hot path.

Instrumented code never holds a tracer reference.  It calls
:func:`obs_span` (or decorates with :func:`traced`), which looks up the
*active* tracer in a :class:`contextvars.ContextVar`: one lookup, and a
shared no-op context manager when tracing is off.  Context variables
are inherited per thread and per task, so two runs traced concurrently
-- co-scheduled workloads, parallel sweep points -- each see only their
own tracer and can never interleave spans (the isolation
``tests/test_obs.py`` asserts).

The clock is :func:`time.perf_counter`; span records carry absolute
values and the exporters normalize per tracer, so merging tracers from
one process keeps true relative timing while cross-process merges
simply share an origin.
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["SpanRecord", "Tracer", "activate", "current_tracer",
           "obs_instant", "obs_span", "traced"]


@dataclass
class SpanRecord:
    """One completed span: a named, timed region on one thread."""

    name: str
    cat: str = ""
    start: float = 0.0
    end: float = 0.0
    tid: int = 0
    run: str = ""
    args: Optional[Dict[str, object]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class _SpanHandle:
    """Context manager for one open span (also usable re-entrantly)."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self._record = record

    def add(self, **counters: object) -> "_SpanHandle":
        """Attach counters/attributes to the span (e.g. retries=2)."""
        record = self._record
        if record.args is None:
            record.args = {}
        record.args.update(counters)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._record.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        record = self._record
        record.end = time.perf_counter()
        record.tid = threading.get_ident()
        self._tracer._append(record)


class _NullSpan:
    """The shared no-op span: what :func:`obs_span` returns when no
    tracer is active.  Every method is a no-op so instrumented code
    never branches on whether tracing is on."""

    __slots__ = ()

    def add(self, **counters: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into per-thread buffers; merged by :meth:`spans`.

    ``label`` names the run the spans belong to (stamped on every
    record, so merged traces from many runs stay attributable).
    """

    def __init__(self, label: str = ""):
        self.label = label
        self.epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._buffers: List[List[SpanRecord]] = []
        self._absorbed: List[SpanRecord] = []

    # -- recording ----------------------------------------------------------
    def _buffer(self) -> List[SpanRecord]:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = []
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    def _append(self, record: SpanRecord) -> None:
        self._buffer().append(record)

    def span(self, name: str, cat: str = "",
             **args: object) -> _SpanHandle:
        """A context manager timing one region::

            with tracer.span("pipeline.solve", array="Z"):
                ...
        """
        record = SpanRecord(name=name, cat=cat, run=self.label,
                            args=dict(args) if args else None)
        return _SpanHandle(self, record)

    def instant(self, name: str, cat: str = "", **args: object) -> None:
        """Record a zero-duration event (e.g. a fault activation)."""
        now = time.perf_counter()
        self._append(SpanRecord(
            name=name, cat=cat, start=now, end=now,
            tid=threading.get_ident(), run=self.label,
            args=dict(args) if args else None))

    # -- collection ---------------------------------------------------------
    def spans(self) -> List[SpanRecord]:
        """All completed spans, merged across threads, by start time."""
        with self._lock:
            merged = [record for buf in self._buffers for record in buf]
            merged.extend(self._absorbed)
        merged.sort(key=lambda r: (r.start, r.end))
        return merged

    def absorb(self, records: Iterable[SpanRecord]) -> None:
        """Adopt finished spans from another tracer (e.g. a per-run
        tracer reporting up to a CLI-level collector)."""
        records = list(records)
        with self._lock:
            self._absorbed.extend(records)

    def activate(self) -> "_Activation":
        """Make this the tracer :func:`obs_span` resolves to, within
        the ``with`` block (per thread / per context)."""
        return _Activation(self)


_ACTIVE: contextvars.ContextVar[Optional[Tracer]] = contextvars.ContextVar(
    "repro_obs_tracer", default=None)


class _Activation:
    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> Optional[Tracer]:
        self._token = _ACTIVE.set(self._tracer)
        return self._tracer

    def __exit__(self, *exc) -> None:
        _ACTIVE.reset(self._token)


def activate(tracer: Optional[Tracer]) -> _Activation:
    """Context manager installing ``tracer`` as the active tracer
    (``None`` deactivates tracing within the block)."""
    return _Activation(tracer)


def current_tracer() -> Optional[Tracer]:
    """The tracer :func:`obs_span` would record into, or ``None``."""
    return _ACTIVE.get()


def obs_span(name: str, cat: str = "", **args: object):
    """Span on the active tracer -- the one call instrumented code
    makes.  With no active tracer this returns the shared no-op span,
    so the disabled cost is one context-variable read."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, cat, **args)


def obs_instant(name: str, cat: str = "", **args: object) -> None:
    """Instant event on the active tracer (no-op when tracing is off)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.instant(name, cat, **args)


def traced(name: Optional[str] = None, cat: str = ""):
    """Decorator form of :func:`obs_span`::

        @traced("analysis.report")
        def build_report(...): ...
    """
    def deco(func):
        span_name = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with obs_span(span_name, cat):
                return func(*args, **kwargs)
        return wrapper
    return deco
