"""Event-approximate wormhole NoC with per-link contention.

Messages traverse XY routes hop by hop.  Each directed link is a
busy-until resource: a message arriving at a busy link waits, then holds
the link for its serialization time (``flits`` cycles -- one flit per
link-width chunk per cycle) while its header moves on after
``hop_latency`` cycles (Table 1: 2-cycle router pipeline + link, modeled
as the combined per-hop latency).  End-to-end latency of an
uncontended message is therefore ``hops * hop_latency + flits`` -- the
standard wormhole approximation -- and contention adds waiting at each
link.

This captures exactly the effects the paper leans on: off-chip requests
that travel farther hold more links for longer, which both slows them
down and delays unrelated on-chip traffic sharing those links.

When a :class:`~repro.faults.models.NetworkFaultModel` is attached,
messages route around dead links on turn-model (west-first) detours
instead of crashing or deadlocking, and degraded links serialize flits
more slowly; the extra hops and waits show up in the stats, so the
metrics expose exactly how much a damaged fabric costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.arch.topology import Mesh
from repro.faults.models import NetworkFaultModel


@dataclass
class NetworkStats:
    """Aggregate traffic statistics."""

    messages: int = 0
    total_hops: int = 0
    flit_hops: int = 0
    wait_cycles: float = 0.0
    detoured: int = 0          # messages rerouted around dead links
    detour_extra_hops: int = 0  # hops beyond the Manhattan distance

    @property
    def avg_hops(self) -> float:
        return self.total_hops / self.messages if self.messages else 0.0


class Network:
    """The mesh interconnect with busy-until links.

    Two virtual networks (request/control and response/data) share the
    physical topology but arbitrate separately, as real protocols require
    for deadlock freedom -- this also prevents single-flit control
    messages from waiting head-of-line behind multi-flit data bursts.
    """

    NUM_VNETS = 2
    VNET_CONTROL = 0
    VNET_DATA = 1

    def __init__(self, mesh: Mesh, config: MachineConfig,
                 faults: Optional[NetworkFaultModel] = None,
                 audit=None, telemetry=None):
        self.mesh = mesh
        self.config = config
        self.faults = faults
        # Optional repro.validate.NetworkAudit: strict validation attaches
        # one so route-shape and link-monotonicity invariants are checked
        # inline, where the per-message evidence still exists.
        self.audit = audit
        self.link_free: List[List[float]] = [
            [0.0] * mesh.num_links for _ in range(self.NUM_VNETS)]
        self._routes: Dict[Tuple[int, int], List[int]] = {}
        self.stats = NetworkStats()
        # Optional repro.obs telemetry (obs=full): per-link flit
        # occupancy totals plus a time-resolved traffic series.  The
        # per-link vector stays a plain list on the hot path and is
        # published into the registry by publish_telemetry().
        self._telemetry = telemetry
        self._link_flits: Optional[List[float]] = None
        self._ts_traffic = None
        if telemetry is not None:
            self._link_flits = [0.0] * mesh.num_links
            self._ts_traffic = telemetry.series("noc.flit_hops")

    def route(self, src: int, dst: int, now: float = 0.0) -> List[int]:
        """The link sequence a message takes from ``src`` to ``dst``.

        Fault-free routes are deterministic XY paths, so they are
        computed once per ``(src, dst)`` pair and memoized in
        :attr:`_routes` for the lifetime of the network; a simulation
        re-sends along the same few hundred pairs tens of thousands of
        times.  With a fault model attached routes are time-dependent
        (detours around dead links) and are never cached.
        """
        if self.faults is not None:
            links, extra = self.faults.route(src, dst, now)
            if extra:
                self.stats.detoured += 1
                self.stats.detour_extra_hops += extra
            return links
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is None:
            cached = self.mesh.route(src, dst)
            self._routes[key] = cached
        return cached

    def send(self, src: int, dst: int, flits: int, depart: float,
             vnet: int = VNET_DATA) -> Tuple[float, int]:
        """Deliver a message; returns ``(arrival_time, hops)``.

        A local delivery (``src == dst``) takes no network time.
        """
        stats = self.stats
        stats.messages += 1
        if src == dst:
            return depart, 0
        t = depart
        hop_latency = self.config.hop_latency
        link_free = self.link_free[vnet]
        links = self.route(src, dst, depart)
        audit = self.audit
        if audit is not None:
            audit.check_message(src, dst, links)
        faults = self.faults
        degraded = faults is not None and faults.degrades
        for link in links:
            free_at = link_free[link]
            if free_at > t:
                stats.wait_cycles += free_at - t
                t = free_at
            hold = flits
            if degraded:
                hold = flits * faults.degradation(link, t)
            if audit is not None and t + hold < free_at:
                audit.link_regression(link, free_at, t + hold)
            link_free[link] = t + hold
            t += hop_latency
        # Critical-word-first: the receiver proceeds as soon as the
        # needed flits arrive; the tail only consumes link bandwidth.
        t += min(flits, self.config.critical_word_flits)
        hops = len(links)
        stats.total_hops += hops
        stats.flit_hops += hops * flits
        link_flits = self._link_flits
        if link_flits is not None:
            for link in links:
                link_flits[link] += flits
            self._ts_traffic.record(depart, hops * flits)
        return t, hops

    def warm_routes(self, pairs=None) -> int:
        """Populate the route memo ahead of the event loop.

        ``pairs`` is an iterable of ``(src, dst)`` node pairs; ``None``
        warms every ordered pair in the mesh.  Returns the number of
        routes now cached.  A no-op when a fault model is attached
        (routes are time-dependent and uncacheable).  Warming is never
        required for correctness -- :meth:`route` fills the memo lazily
        -- but lets callers that know their traffic matrix (e.g. the
        fast engine's node->MC pairs) pay the route construction cost
        outside the timed region.
        """
        if self.faults is not None:
            return 0
        routes = self._routes
        mesh_route = self.mesh.route
        if pairs is None:
            n = self.mesh.num_nodes
            pairs = ((s, d) for s in range(n) for d in range(n) if s != d)
        for key in pairs:
            if key not in routes:
                routes[key] = mesh_route(*key)
        return len(routes)

    def route_table(self) -> Dict[Tuple[int, int], Tuple[int, ...]]:
        """A snapshot of the memoized fault-free routes, as immutable
        tuples keyed by ``(src, dst)``.  Analysis-facing: the internal
        memo stays lists of link ids because the send loop iterates
        them directly."""
        return {key: tuple(links) for key, links in self._routes.items()}

    def link_occupancy(self, vnet: Optional[int] = None) -> "np.ndarray":
        """Busy-until times per directed link as a float64 array.

        ``vnet`` selects one virtual network; ``None`` returns a
        ``(NUM_VNETS, num_links)`` matrix.  This is an *export* helper
        for analyses and plots: internally :attr:`link_free` stays
        nested Python lists because the send loop touches one scalar
        slot per hop, and CPython list indexing beats NumPy scalar
        indexing 2-3x at that granularity (measured; see
        docs/performance.md).  The returned array is a copy -- mutating
        it does not perturb the simulation.
        """
        import numpy as np
        if vnet is not None:
            return np.asarray(self.link_free[vnet], dtype=np.float64)
        return np.asarray(self.link_free, dtype=np.float64)

    def link_flit_totals(self) -> "np.ndarray":
        """Per-link flit totals as a float64 array (zeros when telemetry
        is off and the per-link accumulator was never allocated)."""
        import numpy as np
        if self._link_flits is None:
            return np.zeros(self.mesh.num_links, dtype=np.float64)
        return np.asarray(self._link_flits, dtype=np.float64)

    def publish_telemetry(self) -> None:
        """Flush accumulated per-link occupancy and aggregate traffic
        stats into the attached registry (no-op without one)."""
        registry = self._telemetry
        if registry is None:
            return
        for link, flits in enumerate(self._link_flits):
            if flits:
                registry.counter(f"noc.link.{link}.flits").inc(flits)
        registry.counter("noc.messages").inc(self.stats.messages)
        registry.counter("noc.total_hops").inc(self.stats.total_hops)
        registry.counter("noc.wait_cycles").inc(self.stats.wait_cycles)
        registry.counter("noc.detours").inc(self.stats.detoured)

    def latency_estimate(self, src: int, dst: int, flits: int) -> float:
        """Zero-load latency (no contention), for analyses and tests."""
        hops = self.mesh.distance(src, dst)
        if hops == 0:
            return 0.0
        return hops * self.config.hop_latency \
            + min(flits, self.config.critical_word_flits)
