"""Event-approximate wormhole NoC simulator."""

from repro.noc.network import Network, NetworkStats

__all__ = ["Network", "NetworkStats"]
