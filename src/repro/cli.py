"""Command-line interface: the tool a downstream user actually drives.

Subcommands::

    repro-cli transform kernel.krn        # run the pass, print C output
    repro-cli legality kernel.krn         # dependence / legality report
    repro-cli run --app swim              # simulate one configuration
    repro-cli compare --app swim          # baseline vs optimized
    repro-cli suite                       # the 13-application table
    repro-cli sweep --app swim --axis mapping=M1,M2 --workers 4
                                          # parallel CSV design sweep
    repro-cli search --app swim --mesh 4x4 --top-k 4
                                          # analytic placement search
                                          # (see docs/search.md)
    repro-cli trace --app swim --output t.npz         # save traces
    repro-cli trace matmul --out trace.json
                                          # observed run -> Chrome trace
    repro-cli profile matmul              # where the time goes (spans)
    repro-cli report --output report.md   # markdown suite report
    repro-cli list                        # available workload models
    repro-cli doctor                      # install/config/model self-check
    repro-cli fuzz --cases 200            # frontend never-crash fuzzing
    repro-cli store stats results/        # result-store inventory
    repro-cli store verify results/       # re-checksum every record
    repro-cli store gc results/           # drop quarantine + temp debris
    repro-cli serve --store results/      # HTTP experiment service
                                          # (see docs/service.md)

``run``, ``compare`` and ``sweep`` build the same typed request
objects (:mod:`repro.api.requests`) the Python facade and the
experiment service use, so an experiment means the same thing -- and
keys the same store record -- no matter which door it came through.

Exit codes: 0 success, 1 generic failure, 2 argparse usage.  A
:class:`~repro.errors.ReproError` exits with its family's code from
:data:`repro.errors.EXIT_CODES` (request 3, frontend 4, solver 5,
layout 6, simulation 7, validation 8, store 9, other 10), matching
the service's HTTP status mapping so shell scripts and HTTP clients
classify the same failure the same way.

``run`` and ``sweep`` take ``--store DIR`` to replay/persist results
through the crash-safe store (:mod:`repro.store`); ``sweep --store``
prints a ``[store] hits=... misses=...`` summary on stderr.

``run`` and ``sweep`` additionally take ``--validate
{off,metrics,strict}`` to run the :mod:`repro.validate` invariant
sanitizer over every simulation.  ``sweep`` takes ``--progress``
(periodic progress lines on stderr) or ``--quiet`` (suppress the final
summary line).

``trace`` and ``profile`` accept a positional workload resolved in
order: suite application name, ``.krn`` kernel file path, then built-in
demo kernel (``matmul``).  ``trace WORKLOAD --out trace.json`` runs one
observed simulation (``obs=full``) and writes a Chrome ``trace_event``
file loadable in ``chrome://tracing`` / Perfetto; ``--heatmap`` /
``--timeline`` additionally print the ASCII NoC-link heatmap and per-MC
queue-occupancy timeline.

All simulation-facing commands share the machine flags:
``--interleaving {cache_line,page}``, ``--shared-l2``, ``--mapping
{M1,M2}``, ``--placement {P1,P2,P3}``, ``--mcs N``, ``--mesh WxH``,
``--scale F`` (workload scale).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro import MachineConfig
from repro.analysis.tables import format_percent_table, improvement_summary
from repro.api.requests import (CompareRequest, RunRequest, SweepRequest)
from repro.errors import ReproError, ValidationError, exit_code
from repro.core.dependence import check_program
from repro.core.pipeline import LayoutTransformer
from repro.frontend import compile_kernel, emit_program
from repro.program.address_space import AddressSpace
from repro.program.trace import generate_traces
from repro.program.tracefile import save_traces
from repro.sim.executor import default_workers, resolve_mapping
from repro.sim.run import RunSpec, run_simulation
from repro.sim.sweep import Sweep
from repro.workloads import SUITE_ORDER, build_workload

METRIC_COLUMNS = ["onchip_net", "offchip_net", "offchip_mem", "exec_time"]


def _machine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--interleaving", default="cache_line",
                        choices=["cache_line", "page"])
    parser.add_argument("--shared-l2", action="store_true")
    parser.add_argument("--mapping", default="M1", choices=["M1", "M2"])
    parser.add_argument("--placement", default="P1",
                        choices=["P1", "P2", "P3"])
    parser.add_argument("--mcs", type=int, default=4)
    parser.add_argument("--mesh", default="8x8",
                        help="mesh dimensions, e.g. 8x8")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor")


def _config(args: argparse.Namespace) -> MachineConfig:
    width, _, height = args.mesh.partition("x")
    return MachineConfig.scaled_default().with_(
        interleaving=args.interleaving, shared_l2=args.shared_l2,
        mc_placement=args.placement, num_mcs=args.mcs,
        mesh_width=int(width), mesh_height=int(height or width))


def _mapping(config: MachineConfig, name: str):
    # One canonical preset resolver, shared with the sweep engine.
    return resolve_mapping(config, name)


def _load_program(args: argparse.Namespace):
    if getattr(args, "app", None):
        return build_workload(args.app, args.scale)
    with open(args.kernel) as handle:
        source = handle.read()
    return compile_kernel(source, name=args.kernel.rsplit("/", 1)[-1]
                          .split(".")[0])


def _resolve_program(args: argparse.Namespace):
    """Load the program for verbs taking a positional ``workload``:
    suite application name, then kernel file path, then demo kernel."""
    token = getattr(args, "workload", None)
    if not token:
        if getattr(args, "app", None) or getattr(args, "kernel", None):
            return _load_program(args)
        raise SystemExit(f"repro-cli {args.command}: name a workload "
                         f"(positionally, or via --app/--kernel)")
    if getattr(args, "app", None) or getattr(args, "kernel", None):
        raise SystemExit(f"repro-cli {args.command}: pass either a "
                         f"positional workload or --app/--kernel, "
                         f"not both")
    from repro.workloads import (DEMO_KERNELS, WORKLOADS,
                                 build_demo_kernel)
    if token in WORKLOADS:
        return build_workload(token, args.scale)
    if os.path.exists(token):
        with open(token) as handle:
            source = handle.read()
        return compile_kernel(source, name=token.rsplit("/", 1)[-1]
                              .split(".")[0])
    if token in DEMO_KERNELS:
        return build_demo_kernel(token, args.scale)
    raise SystemExit(
        f"repro-cli {args.command}: unknown workload {token!r} -- not "
        f"a suite application ({', '.join(WORKLOADS)}), not a kernel "
        f"file, and not a demo kernel ({', '.join(DEMO_KERNELS)})")


def _print_metrics(metrics, out) -> None:
    print(f"total accesses:     {metrics.total_accesses:>12,}", file=out)
    print(f"off-chip fraction:  {metrics.offchip_fraction:>12.1%}",
          file=out)
    print(f"on-chip net latency:  "
          f"{metrics.avg_onchip_net_latency:>10.1f} cycles", file=out)
    print(f"off-chip net latency: "
          f"{metrics.avg_offchip_net_latency:>10.1f} cycles", file=out)
    print(f"off-chip mem latency: "
          f"{metrics.avg_offchip_mem_latency:>10.1f} cycles", file=out)
    print(f"DRAM row-hit rate:  {metrics.row_hit_rate:>12.1%}", file=out)
    print(f"execution time:     {metrics.exec_time:>12,.0f} cycles",
          file=out)


# -- subcommands -------------------------------------------------------------

def cmd_transform(args: argparse.Namespace, out) -> int:
    program = _load_program(args)
    config = _config(args)
    transformer = LayoutTransformer(config, _mapping(config, args.mapping))
    result = transformer.run(program)
    print(f"arrays optimized: {result.pct_arrays_optimized:.0%}, "
          f"references satisfied: {result.pct_refs_satisfied:.0%}",
          file=out)
    for name, plan in result.plans.items():
        print(f"  {name}: {plan.reason}", file=out)
    if args.emit in ("original", "both"):
        print("", file=out)
        print(emit_program(program), file=out)
    if args.emit in ("transformed", "both"):
        print("", file=out)
        print(emit_program(program, result), file=out)
    return 0


def cmd_legality(args: argparse.Namespace, out) -> int:
    program = _load_program(args)
    status = 0
    for report in check_program(program):
        verdict = "legal" if report.legal else "NOT PROVEN LEGAL"
        print(f"nest {report.nest_name} (parallel dim "
              f"{report.parallel_dim}): {verdict}", file=out)
        for conflict in report.conflicts:
            print(f"    {conflict}", file=out)
            status = 1
    return status


def _load_fault_plan(path: str):
    if not path:
        return None
    from repro.faults import FaultPlan
    try:
        with open(path) as handle:
            return FaultPlan.from_json(handle.read())
    except (OSError, ValueError, KeyError, TypeError) as err:
        raise SystemExit(f"repro-cli: cannot load fault plan "
                         f"{path!r}: {err}")


def cmd_run(args: argparse.Namespace, out) -> int:
    program = _load_program(args)
    config = _config(args)
    plan = _load_fault_plan(args.fault_plan)
    request = RunRequest.from_objects(
        program=program, config=config,
        mapping=_mapping(config, args.mapping),
        optimized=args.optimized, optimal=args.optimal,
        fault_plan=plan, seed=args.seed, validate=args.validate,
        engine=args.engine, store=args.store or None)
    result = request.execute()
    kind = "optimal" if args.optimal else (
        "optimized" if args.optimized else "baseline")
    print(f"{program.name} ({kind}):", file=out)
    _print_metrics(result.metrics, out)
    if args.validate != "off":
        print(f"validation:         "
              f"{result.metrics.validation_checks:>12,} checks "
              f"({args.validate}), all invariants hold", file=out)
    if plan is not None:
        m = result.metrics
        print(f"fault events:       {m.fault_events:>12,}  "
              f"(failovers {m.mc_failovers}, detours {m.link_detours}, "
              f"bank remaps {m.bank_remaps}, "
              f"page fallbacks {m.page_fallbacks})", file=out)
    return 0


def cmd_compare(args: argparse.Namespace, out) -> int:
    program = _load_program(args)
    config = _config(args)
    comparison = CompareRequest.from_objects(
        program=program, config=config,
        mapping=_mapping(config, args.mapping)).execute()
    print(f"{program.name}: baseline vs optimized", file=out)
    labels = {
        "onchip_net": "on-chip network latency",
        "offchip_net": "off-chip network latency",
        "offchip_mem": "off-chip memory latency",
        "exec_time": "execution time",
    }
    for key, value in comparison.as_row().items():
        bar = "#" * max(0, int(round(value * 40)))
        print(f"  {labels[key]:<26} {value:>7.1%}  {bar}", file=out)
    return 0


def cmd_suite(args: argparse.Namespace, out) -> int:
    config = _config(args)
    mapping = _mapping(config, args.mapping)
    rows = {}
    for app in SUITE_ORDER:
        program = build_workload(app, args.scale)
        comparison = CompareRequest.from_objects(
            program=program, config=config, mapping=mapping).execute()
        rows[app] = comparison
        print(f"  {app}: exec {comparison.exec_time_reduction:+.1%}",
              file=out)
    summary = improvement_summary(rows)
    print(format_percent_table(summary, METRIC_COLUMNS,
                               title="suite reductions"), file=out)
    return 0


def _parse_axes(specs: List[str]) -> dict:
    """Parse repeated ``--axis name=v1,v2`` flags, failing fast with a
    one-line diagnostic that names the offending axis/value and lists
    the known axes (a typo must not abort a sweep mid-run with a
    traceback)."""
    known = Sweep.CONFIG_AXES + ("mapping",)
    axes = {}
    for spec in specs:
        name, _, values = spec.partition("=")
        if not name or not values:
            raise SystemExit(
                f"repro-cli sweep: bad axis spec {spec!r}; "
                f"expected name=v1,v2 with name one of: "
                f"{', '.join(known)}")
        if name not in known:
            raise SystemExit(
                f"repro-cli sweep: unknown axis {name!r} "
                f"(in {spec!r}); known axes: {', '.join(known)}")
        parsed = []
        for v in values.split(","):
            if not v:
                raise SystemExit(
                    f"repro-cli sweep: empty value for axis {name!r} "
                    f"(in {spec!r})")
            if v.lower() in ("true", "false"):
                parsed.append(v.lower() == "true")
            else:
                try:
                    parsed.append(int(v))
                except ValueError:
                    parsed.append(v)
        axes[name] = parsed
    return axes


def cmd_sweep(args: argparse.Namespace, out) -> int:
    program = _load_program(args)
    workers = args.workers if args.workers is not None else \
        default_workers()
    if workers < 1:
        raise SystemExit(f"repro-cli sweep: --workers must be >= 1, "
                         f"got {workers}")
    axes = _parse_axes(args.axis)
    progress = None
    state = {"done": 0, "failed": 0, "started": time.monotonic()}
    if args.progress:
        from repro.sim.executor import grid_settings, validate_axes
        validate_axes(axes)
        total = len(grid_settings(axes))

        def progress(outcome):
            state["done"] += 1
            if not getattr(outcome, "ok", True):
                state["failed"] += 1
            wave = (state["done"] - 1) // max(workers, 1)
            print(f"[sweep] wave {wave}: {state['done']}/{total} "
                  f"points done, {state['failed']} failed",
                  file=sys.stderr)
    from repro.sim.executor import steal_stats
    from repro.sim.shm import shm_stats
    shm_before = shm_stats()
    steal_before = steal_stats()
    try:
        request = SweepRequest.from_objects(
            program=program, config=_config(args), axes=axes,
            workers=workers, validate=args.validate,
            engine=args.engine, store=args.store or None)
        report = request.execute(progress=progress,
                                 batch=args.batch or None,
                                 shm=False if args.no_shm else None)
    except ValidationError:
        raise  # main() maps it to the validation exit code
    except ValueError as err:  # e.g. unknown mapping preset value
        raise SystemExit(f"repro-cli sweep: {err}")
    if not args.quiet:
        elapsed = time.monotonic() - state["started"]
        print(f"[sweep] {report.completed} points ({state['done']} "
              f"simulated) in {elapsed:.1f}s", file=sys.stderr)
        if args.store:
            # The CI smoke job greps this line to prove a shared store
            # actually served records across processes.
            print(f"[store] hits={report.store_hits} "
                  f"misses={report.store_misses} dir={args.store}",
                  file=sys.stderr)
        if workers > 1:
            # The CI scaling job greps these two lines to prove workers
            # attached the shared artifact plane and stole batches.
            shm_now = shm_stats()
            steal_now = steal_stats()
            print(f"[shm] published="
                  f"{shm_now['published'] - shm_before['published']} "
                  f"attached="
                  f"{shm_now['attached'] - shm_before['attached']} "
                  f"bytes={shm_now['bytes'] - shm_before['bytes']} "
                  f"corrupt="
                  f"{shm_now['corrupt'] - shm_before['corrupt']}",
                  file=sys.stderr)
            print(f"[steal] batches="
                  f"{steal_now['batches'] - steal_before['batches']} "
                  f"tasks={steal_now['tasks'] - steal_before['tasks']} "
                  f"requeued="
                  f"{steal_now['requeued'] - steal_before['requeued']}",
                  file=sys.stderr)
    print(report.to_csv(), end="", file=out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    program = _resolve_program(args)
    config = _config(args)
    mapping = _mapping(config, args.mapping)
    if not args.out and not args.output:
        raise SystemExit("repro-cli trace: pass --out trace.json "
                         "(Chrome trace) and/or --output traces.npz")
    if args.output:
        if args.optimized:
            transformer = LayoutTransformer(config, mapping)
            layouts = transformer.run(program).layouts
        else:
            from repro.core.pipeline import original_layouts
            layouts = original_layouts(program)
        bases = AddressSpace(config).place_all(layouts)
        threads = config.num_cores * config.threads_per_core
        traces = generate_traces(program, layouts, bases, threads)
        save_traces(args.output, traces,
                    metadata={"program": program.name,
                              "optimized": args.optimized,
                              "threads": threads})
        total = sum(t.num_accesses for t in traces)
        print(f"wrote {total:,} accesses over {threads} threads to "
              f"{args.output}", file=out)
    if args.out:
        from repro.obs import (link_heatmap, mc_timeline,
                               write_chrome_trace)
        spec = RunSpec(program=program, config=config, mapping=mapping,
                       optimized=args.optimized, obs="full")
        result = run_simulation(spec)
        count = write_chrome_trace(args.out, result.obs)
        print(f"wrote Chrome trace ({len(result.obs.spans)} spans, "
              f"{count} events) to {args.out} -- load it in "
              f"chrome://tracing or Perfetto", file=out)
        if args.heatmap:
            print(link_heatmap(result.obs), file=out)
        if args.timeline:
            print(mc_timeline(result.obs), file=out)
    return 0


def cmd_profile(args: argparse.Namespace, out) -> int:
    program = _resolve_program(args)
    config = _config(args)
    mapping = _mapping(config, args.mapping)
    spec = RunSpec(program=program, config=config, mapping=mapping,
                   optimized=args.optimized, obs=args.obs)
    result = run_simulation(spec)
    from repro.obs import profile_table
    print(profile_table(result.obs, top=args.top), file=out)
    return 0


def cmd_report(args: argparse.Namespace, out) -> int:
    from repro.analysis.report import build_report
    config = _config(args)
    apps = args.apps.split(",") if args.apps else list(SUITE_ORDER)
    report = build_report(apps, config,
                          mapping=_mapping(config, args.mapping),
                          scale=args.scale)
    text = report.to_markdown(
        title=f"Off-chip localization report ({config.interleaving})")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=out)
    else:
        print(text, file=out)
    return 0


def cmd_doctor(args: argparse.Namespace, out) -> int:
    from repro.validate.doctor import run_doctor
    apps = args.apps.split(",") if args.apps else None
    report = run_doctor(scale=args.scale, apps=apps,
                        smoke=not args.skip_runs)
    for check in report.checks:
        mark = "ok  " if check.ok else "FAIL"
        print(f"  {mark} {check.name:<16} {check.detail} "
              f"({check.elapsed:.2f}s)", file=out)
    print(report.summary(), file=out)
    return 0 if report.ok else 1


def cmd_fuzz(args: argparse.Namespace, out) -> int:
    from repro.validate.fuzz import fuzz_frontend, load_corpus
    corpus = load_corpus(args.kernel) if args.kernel else None
    report = fuzz_frontend(cases=args.cases, seed=args.seed,
                           corpus=corpus, run_pass=not args.no_pass)
    print(report.summary(), file=out)
    for case in report.crashes:
        print(f"  CRASH case {case.index} "
              f"(mutations: {', '.join(case.mutations)}): "
              f"{case.detail}", file=out)
        print("  ---- source ----", file=out)
        for line in case.source.splitlines():
            print(f"  | {line}", file=out)
    return 0 if report.ok else 1


def cmd_store(args: argparse.Namespace, out) -> int:
    from repro.store import DiskStore, FallbackStore, open_store
    if args.action == "ping":
        from repro.errors import EXIT_CODES
        from repro.store import RemoteStore
        if not str(args.dir).startswith(("http://", "https://")):
            raise SystemExit(f"repro-cli store ping: {args.dir!r} is "
                             f"not a store-server URL "
                             f"(expected http://host:port)")
        report = RemoteStore.from_url(args.dir).ping()
        print(f"url:          {report['url']}", file=out)
        print(f"reachable:    {'yes' if report['ok'] else 'no'}",
              file=out)
        if report.get("latency_ms") is not None:
            print(f"latency_ms:   {report['latency_ms']:.1f}", file=out)
        print(f"breaker:      {report['breaker']}", file=out)
        if "server_store" in report:
            print(f"server_store: {report['server_store']}", file=out)
        if "error" in report:
            print(f"error:        {report['error']}", file=out)
        return 0 if report["ok"] else EXIT_CODES["store"]
    store = open_store(args.dir)
    backend = store.primary if isinstance(store, FallbackStore) \
        else store
    if not isinstance(backend, DiskStore):
        raise SystemExit(f"repro-cli store: {args.dir!r} is not a "
                         f"usable store directory "
                         f"({store.description})")
    if args.action == "stats":
        summary = backend.stats_summary()
        print(f"store {summary['root']} (format v{summary['version']})",
              file=out)
        for kind, count in sorted(summary["records"].items()):
            print(f"  {kind + ' records:':<20} {count}", file=out)
        print(f"  {'bytes:':<20} {summary['bytes']:,}", file=out)
        # Quarantined corrupt records are their own line item, never
        # folded into misses: a miss is a record that was never there.
        print(f"  {'quarantined:':<20} {summary['quarantined']}",
              file=out)
        print(f"  {'misses (session):':<20} {summary['misses']}",
              file=out)
        print(f"  {'corrupt (session):':<20} {summary['corrupt']}",
              file=out)
        return 0
    if args.action == "verify":
        report = backend.verify()
        print(f"checked {report['checked']} records: "
              f"{report['bad']} bad (quarantined)", file=out)
        return 1 if report["bad"] else 0
    report = backend.gc()
    print(f"removed {report['removed']} quarantined/orphaned files "
          f"({report['bytes']:,} bytes)", file=out)
    return 0


def cmd_search(args: argparse.Namespace, out) -> int:
    import json as json_mod

    from repro.api.requests import SearchRequest
    from repro.search import PLACEMENT_POOLS

    program = _load_program(args)
    width, _, height = args.mesh.partition("x")
    config = MachineConfig.scaled_default().with_(
        num_mcs=args.mcs, mesh_width=int(width),
        mesh_height=int(height or width))
    placements = (args.placements
                  if args.placements in PLACEMENT_POOLS
                  else [p for p in args.placements.split(",") if p])
    mappings = ([m for m in args.mappings.split(",") if m]
                if args.mappings else None)
    interleavings = [i for i in args.interleavings.split(",") if i]
    request = SearchRequest.from_objects(
        program=program, config=config, mode=args.mode,
        placements=placements, mappings=mappings,
        interleavings=interleavings, top_k=args.top_k,
        steps=args.steps, seed=args.seed,
        resimulate=not args.no_resim)
    if args.workers < 1:
        raise SystemExit(f"repro-cli search: --workers must be >= 1, "
                         f"got {args.workers}")
    result = request.execute(workers=args.workers)
    if not args.quiet:
        accept = ("" if result.acceptance_rate is None else
                  f", acceptance {result.acceptance_rate:.0%}")
        print(f"[search] {result.mode}: "
              f"{result.candidates_evaluated}/{result.space_size} "
              f"candidates screened, top {len(result.rows)} "
              f"re-simulated{accept}", file=sys.stderr)
    if args.json:
        print(json_mod.dumps(result.to_doc(), indent=2), file=out)
    else:
        print(result.to_csv(), end="", file=out)
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.serve import serve_forever
    from repro.serve.wire import DEFAULT_READ_TIMEOUT
    read_timeout = args.read_timeout
    if read_timeout is None:
        read_timeout = DEFAULT_READ_TIMEOUT
    elif read_timeout <= 0:
        read_timeout = None  # explicit 0 disables the guard
    try:
        return asyncio.run(serve_forever(
            host=args.host, port=args.port, store=args.store or None,
            job_threads=args.job_threads, max_queued=args.max_queued,
            read_timeout=read_timeout,
            analytic_admission=args.analytic_admission, out=out))
    except KeyboardInterrupt:
        return 0


def cmd_list(args: argparse.Namespace, out) -> int:
    for app in SUITE_ORDER:
        program = build_workload(app, 0.2)
        print(f"  {app:<11} arrays={len(program.arrays)} "
              f"nests={len(program.nests)} "
              f"mlp_demand={program.mlp_demand}", file=out)
    return 0


# -- driver ------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Off-chip access localization: compile, analyze, "
                    "simulate.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("transform", help="run the layout pass on a "
                                         "kernel file and emit C")
    p.add_argument("kernel")
    p.add_argument("--emit", default="transformed",
                   choices=["original", "transformed", "both", "none"])
    _machine_flags(p)
    p.set_defaults(func=cmd_transform)

    p = sub.add_parser("legality", help="dependence / legality report")
    p.add_argument("kernel")
    _machine_flags(p)
    p.set_defaults(func=cmd_legality)

    for name, func in (("run", cmd_run), ("compare", cmd_compare)):
        p = sub.add_parser(name)
        target = p.add_mutually_exclusive_group(required=True)
        target.add_argument("--app", choices=list(SUITE_ORDER))
        target.add_argument("--kernel")
        if name == "run":
            p.add_argument("--optimized", action="store_true")
            p.add_argument("--optimal", action="store_true")
            p.add_argument("--fault-plan", default="",
                           help="JSON fault plan to inject "
                                "(see repro.faults.FaultPlan)")
            p.add_argument("--seed", type=int, default=0,
                           help="seed for stochastic tie-breaks")
            p.add_argument("--validate", default="off",
                           choices=["off", "metrics", "strict"],
                           help="invariant-sanitizer level "
                                "(repro.validate)")
            p.add_argument("--engine", default="fast",
                           choices=["fast", "reference"],
                           help="event-loop engine (bit-identical; "
                                "'fast' filters cache hits out of the "
                                "global heap)")
            p.add_argument("--store", default="",
                           help="persistent result store: a directory "
                                "or a store-server URL "
                                "(http://host:port; replay hits, "
                                "persist misses; bit-identical either "
                                "way)")
        _machine_flags(p)
        p.set_defaults(func=func)

    p = sub.add_parser("suite", help="run all 13 applications")
    _machine_flags(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("sweep", help="cartesian configuration sweep "
                                     "(CSV to stdout)")
    target = p.add_mutually_exclusive_group(required=True)
    target.add_argument("--app", choices=list(SUITE_ORDER))
    target.add_argument("--kernel")
    p.add_argument("--axis", action="append", default=[],
                   help="axis spec name=v1,v2 (repeatable), e.g. "
                        "mapping=M1,M2 num_mcs=4,8")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel worker processes for grid points "
                        "(default: one per CPU; 1 = in-process)")
    p.add_argument("--batch", type=int, default=0,
                   help="points per stolen batch (default: sized "
                        "automatically from grid and pool)")
    p.add_argument("--no-shm", action="store_true",
                   help="disable the shared-memory artifact plane "
                        "(workers recompile/regenerate per point; "
                        "bit-identical, just slower)")
    p.add_argument("--validate", default="off",
                   choices=["off", "metrics", "strict"],
                   help="invariant-sanitizer level for every run")
    p.add_argument("--engine", default="fast",
                   choices=["fast", "reference"],
                   help="event-loop engine for every run "
                        "(bit-identical)")
    p.add_argument("--store", default="",
                   help="persistent result store shared across "
                        "processes: a directory, or a store-server "
                        "URL (http://host:port) to share one store "
                        "over the network (replay hits, persist "
                        "misses)")
    verbosity = p.add_mutually_exclusive_group()
    verbosity.add_argument("--progress", action="store_true",
                           help="periodic progress lines on stderr "
                                "(wave index, points done/failed)")
    verbosity.add_argument("--quiet", action="store_true",
                           help="suppress the final summary line")
    _machine_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("search", help="design-space placement search: "
                                      "analytic screen + bit-exact "
                                      "frontier re-simulation (CSV to "
                                      "stdout; see docs/search.md)")
    target = p.add_mutually_exclusive_group(required=True)
    target.add_argument("--app", choices=list(SUITE_ORDER))
    target.add_argument("--kernel")
    p.add_argument("--mode", default="auto",
                   choices=["auto", "exhaustive", "anneal"],
                   help="auto enumerates small spaces and anneals "
                        "large ones")
    p.add_argument("--placements", default="named",
                   help="candidate pool: named (P1/P2/P3), perimeter, "
                        "all, or explicit comma-separated placements "
                        "(e.g. P1,custom:0,...)")
    p.add_argument("--mappings", default="",
                   help="comma-separated mapping presets to consider "
                        "(default: every preset valid for the "
                        "machine)")
    p.add_argument("--interleavings", default="cache_line,page",
                   help="comma-separated interleavings to consider")
    p.add_argument("--top-k", type=int, default=4,
                   help="frontier size kept and re-simulated")
    p.add_argument("--steps", type=int, default=128,
                   help="annealing proposals (anneal mode)")
    p.add_argument("--seed", type=int, default=0,
                   help="search seed; same seed, same frontier, "
                        "byte-identical CSV")
    p.add_argument("--no-resim", action="store_true",
                   help="skip the bit-exact frontier re-simulation "
                        "(analytic estimates only)")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel worker processes for the frontier "
                        "re-simulation (byte-identical CSV)")
    p.add_argument("--json", action="store_true",
                   help="emit the JSON summary instead of CSV")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the stderr summary line")
    p.add_argument("--mcs", type=int, default=4)
    p.add_argument("--mesh", default="8x8",
                   help="mesh dimensions, e.g. 8x8")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale factor")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("trace", help="save access traces (--output "
                                     ".npz) and/or record an observed "
                                     "run as a Chrome trace (--out)")
    p.add_argument("workload", nargs="?", default="",
                   help="suite app, kernel file, or demo kernel "
                        "(e.g. matmul)")
    target = p.add_mutually_exclusive_group()
    target.add_argument("--app", choices=list(SUITE_ORDER))
    target.add_argument("--kernel")
    p.add_argument("--output", default="", help="output .npz path "
                                                "(raw access traces)")
    p.add_argument("--out", default="",
                   help="Chrome trace_event JSON path (obs=full run; "
                        "open in chrome://tracing / Perfetto)")
    p.add_argument("--heatmap", action="store_true",
                   help="also print the ASCII NoC-link heatmap")
    p.add_argument("--timeline", action="store_true",
                   help="also print the per-MC occupancy timeline")
    p.add_argument("--optimized", action="store_true")
    _machine_flags(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("profile", help="run one observed simulation "
                                       "and print where the time goes")
    p.add_argument("workload", nargs="?", default="matmul",
                   help="suite app, kernel file, or demo kernel "
                        "(default: matmul)")
    p.add_argument("--top", type=int, default=15,
                   help="rows in the span table")
    p.add_argument("--obs", default="full", choices=["spans", "full"],
                   help="observation level for the run")
    p.add_argument("--optimized", action="store_true")
    _machine_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report", help="markdown suite report")
    p.add_argument("--apps", default="",
                   help="comma-separated subset (default: all 13)")
    p.add_argument("--output", default="", help="write to a file")
    _machine_flags(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("doctor", help="self-check: install, config "
                                      "presets, one strict-validated "
                                      "smoke run per workload")
    p.add_argument("--scale", type=float, default=0.25,
                   help="workload scale for the smoke runs")
    p.add_argument("--apps", default="",
                   help="comma-separated subset to smoke-run "
                        "(default: all 13)")
    p.add_argument("--skip-runs", action="store_true",
                   help="skip the smoke simulations (fast static "
                        "checks only)")
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser("fuzz", help="fuzz the frontend's never-crash "
                                    "contract with mutated kernels")
    p.add_argument("--cases", type=int, default=200,
                   help="number of mutated kernels to try")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (campaigns are reproducible)")
    p.add_argument("--kernel", action="append", default=[],
                   help="extra corpus file or directory of .krn "
                        "kernels (repeatable)")
    p.add_argument("--no-pass", action="store_true",
                   help="compile only; skip the layout-pass "
                        "degradation check")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("store", help="inspect/maintain a persistent "
                                     "result store (directory or "
                                     "store-server URL)")
    p.add_argument("action", choices=["stats", "verify", "gc", "ping"],
                   help="stats: inventory; verify: re-checksum every "
                        "record (damaged ones are quarantined); gc: "
                        "drop quarantined records and orphaned temp "
                        "files; ping: one health round trip to a "
                        "store-server URL (reports latency and the "
                        "client circuit-breaker state)")
    p.add_argument("dir", help="store root directory, or a store-"
                               "server URL (http://host:port) for "
                               "ping")
    p.set_defaults(func=cmd_store)

    p = sub.add_parser("serve", help="run the HTTP experiment service "
                                     "(typed schema-v1 requests; see "
                                     "docs/service.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (default: loopback)")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port; 0 picks an ephemeral port, printed "
                        "on the listening line")
    p.add_argument("--store", default="",
                   help="persistent result-store directory every "
                        "request dedupes through (strongly "
                        "recommended; without it only in-flight "
                        "coalescing dedupes work).  Also serves the "
                        "store over GET/PUT /v1/store/... -- remote "
                        "workers share it by running with "
                        "--store http://host:port")
    p.add_argument("--job-threads", type=int, default=2,
                   help="concurrent jobs (each may fan out to the "
                        "process pool via its request's workers=)")
    p.add_argument("--max-queued", type=int, default=32,
                   help="bounded job queue; submissions past this "
                        "answer HTTP 429")
    p.add_argument("--read-timeout", type=float, default=None,
                   help="seconds to receive one whole HTTP request "
                        "before answering 408 (default 30; slow-loris "
                        "guard)")
    p.add_argument("--analytic-admission", action="store_true",
                   help="cost run/compare submissions with the "
                        "analytic engine so admission control "
                        "predicts queue wait per job size instead of "
                        "one flat average (see docs/search.md)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("list", help="list workload models")
    p.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.func(args, out)
    except BrokenPipeError:
        # downstream consumer (head, less) closed the pipe: not an error
        return 0
    except ReproError as err:
        # One classification for scripts and the service alike: each
        # error family exits with its repro.errors.EXIT_CODES code,
        # mirroring the HTTP status mapping of repro.serve.
        print(f"repro-cli {args.command}: {err}", file=sys.stderr)
        if isinstance(err, ValidationError):
            for violation in err.violations:
                print(f"  {violation}", file=sys.stderr)
        return exit_code(err)


if __name__ == "__main__":
    raise SystemExit(main())
