"""The job registry: single-flight execution behind the service.

Every POST becomes a :class:`Job`.  Identity is the request's
canonical key (== the memo/store key, :mod:`repro.api.requests`), and
the registry enforces the service's two core guarantees around it:

* **Single-flight coalescing** -- while a job for a key is queued or
  running, further submissions for the same key join it instead of
  spawning duplicate work.  Combined with the persistent store (which
  serves everything already *finished*), the simulator executes each
  distinct experiment at most once no matter how many clients ask.
* **Backpressure** -- the queue of not-yet-running jobs is bounded;
  past the bound, :meth:`JobRegistry.submit` raises
  :class:`QueueFullError` and the wire layer answers 429 instead of
  accepting unbounded work.

Jobs run on a thread pool.  The simulation itself fans out to the
process pool via :func:`repro.sim.executor.execute_points` under the
existing supervision policy, so job threads spend their time waiting,
not computing -- a small pool goes a long way.

Never-crash contract: a job's failure is captured as a structured
error document (taxonomy kind + message) on the job, never propagated
into the server loop.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.errors import DeadlineError, ReproError, SimulationTimeout
from repro.obs.telemetry import TelemetryRegistry
from repro.sim.harness import HarnessConfig, _attempt
from repro.sim.run import run_simulation
from repro.sim.metrics import Comparison
from repro.store.records import metrics_to_doc

__all__ = ["DeadlineRejectedError", "Job", "JobRegistry",
           "QueueFullError"]

#: Job lifecycle states.  ``expired`` is terminal like ``failed``, but
#: structured: the job's ``deadline_ms`` ran out before (or while) it
#: executed, and the wire layer answers 504, not 422.
QUEUED, RUNNING, DONE, FAILED, EXPIRED = (
    "queued", "running", "done", "failed", "expired")

#: Conservative per-job cost floor (seconds) for admission control
#: before any job has completed in this process -- even a fully warm
#: store replay pays this much.  With history, an EWMA of observed job
#: durations replaces it.
MIN_JOB_ESTIMATE = 0.05
#: EWMA weight for the newest completed job's duration.
JOB_ESTIMATE_ALPHA = 0.2
#: EWMA weight for the newest observed seconds-per-analytic-cycle
#: calibration sample (``analytic_admission=True`` registries).
CYCLE_RATE_ALPHA = 0.3


class QueueFullError(Exception):
    """The bounded job queue is at capacity -- backpressure, not a
    bug.  The wire layer maps this to HTTP 429."""


class DeadlineRejectedError(QueueFullError):
    """Admission control: the estimated queue wait already exceeds the
    request's ``deadline_ms``, so queueing it would only burn a thread
    slot on work destined to expire.  Maps to 429 with a
    ``Retry-After`` hint (seconds)."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = retry_after


class Job:
    """One submitted request and everything observable about it."""

    _COUNTER = [0]
    _COUNTER_LOCK = threading.Lock()

    def __init__(self, kind: str, key: str, request):
        with self._COUNTER_LOCK:
            self._COUNTER[0] += 1
            self.id = f"j{self._COUNTER[0]:06d}"
        self.kind = kind
        self.key = key
        self.request = request
        self.state = QUEUED
        self.created = time.time()
        #: End-to-end deadline from the request envelope (absolute
        #: wall-clock seconds; None = unbounded, the default).
        self.deadline_ms: Optional[int] = getattr(request,
                                                  "deadline_ms", None)
        self.deadline: Optional[float] = (
            None if self.deadline_ms is None
            else self.created + self.deadline_ms / 1000.0)
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: How many extra submissions joined this computation.
        self.coalesced = 0
        self.progress_done = 0
        self.progress_total: Optional[int] = None
        #: Completed result rows so far (sweeps stream these while
        #: running; the final list is the report's canonical order).
        self.rows: List[Dict[str, object]] = []
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[BaseException] = None
        self.future = None  # concurrent.futures.Future, set on submit
        #: Analytic cycle estimate of this job's work (admission
        #: control predictor; None = not estimated).
        self.est_cycles: Optional[float] = None

    def snapshot(self, include_rows: bool = True) -> Dict[str, object]:
        """The job as a JSON-ready document."""
        doc: Dict[str, object] = {
            "id": self.id, "kind": self.kind, "key": self.key,
            "state": self.state, "coalesced": self.coalesced,
            "progress": {"done": self.progress_done,
                         "total": self.progress_total},
        }
        if self.deadline_ms is not None:
            doc["deadline_ms"] = self.deadline_ms
        if include_rows and self.kind in ("sweep", "search"):
            doc["rows"] = list(self.rows)
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            kind = (self.error.kind if isinstance(self.error, ReproError)
                    else "internal")
            doc["error"] = {"kind": kind, "message": str(self.error)}
        return doc


class JobRegistry:
    """Submits, coalesces, runs and remembers jobs."""

    def __init__(self, store: Optional[str] = None,
                 job_threads: int = 2, max_queued: int = 32,
                 analytic_admission: bool = False):
        self.store = store
        self.max_queued = max_queued
        self.job_threads = max(1, job_threads)
        #: When True, run/compare submissions are costed with the
        #: analytic engine (:mod:`repro.search.analytic`) and the
        #: admission-control wait estimate becomes cycle-proportional
        #: (calibrated by completed jobs) instead of one flat EWMA for
        #: every job regardless of size.  See docs/search.md.
        self.analytic_admission = analytic_admission
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        #: (kind, key) -> the queued/running job for that identity.
        self._inflight: Dict[Tuple[str, str], Job] = {}
        self._queued = 0
        #: EWMA of completed-job durations, for admission control.
        self._avg_job_seconds = 0.0
        #: Calibration: EWMA of observed wall seconds per analytic
        #: cycle, from completed jobs that carried an estimate.
        self._seconds_per_cycle: Optional[float] = None
        #: Analytic cycles queued (jobs with estimates) and the count
        #: of queued jobs without one (fall back to the EWMA).
        self._queued_cycles = 0.0
        self._queued_unknown = 0
        self._pool = ThreadPoolExecutor(
            max_workers=job_threads, thread_name_prefix="repro-serve")
        #: Service counters (``serve.*``), merged into ``GET /metrics``.
        self.telemetry = TelemetryRegistry()
        self._closed = False

    # -- counters (TelemetryRegistry.inc is not thread-safe) ----------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.telemetry.inc(name, amount)

    # -- admission control ---------------------------------------------------

    def _estimated_wait_locked(self) -> float:
        """Estimated seconds a newly queued job waits before starting.
        Caller holds the lock.

        Default predictor: queue depth times the duration EWMA -- every
        job assumed equally expensive.  With ``analytic_admission`` on
        and at least one calibrated completion, jobs that carried an
        analytic cycle estimate are costed proportionally
        (``cycles * seconds_per_cycle``); only estimate-less jobs
        (sweeps, unsupported configs) still pay the flat EWMA."""
        if self._queued <= 0:
            return 0.0
        per_job = max(self._avg_job_seconds, MIN_JOB_ESTIMATE)
        if not self.analytic_admission or self._seconds_per_cycle is None:
            return self._queued * per_job / self.job_threads
        known = self._queued_cycles * self._seconds_per_cycle
        unknown = self._queued_unknown * per_job
        floor = self._queued * MIN_JOB_ESTIMATE
        return max(known + unknown, floor) / self.job_threads

    def estimated_wait(self) -> float:
        with self._lock:
            return self._estimated_wait_locked()

    def _analytic_cycles(self, request) -> Optional[float]:
        """Analytic cycle estimate for a run/compare request, or None
        when the request kind or its configuration is out of the
        analytic engine's envelope.  Costs milliseconds, paid outside
        the lock; never raises (admission control must not)."""
        try:
            if request.KIND == "run":
                specs = [request.to_spec()]
            elif request.KIND == "compare":
                specs = list(request.specs())
            else:
                return None
            from repro.search.analytic import analytic_run, supported
            total = 0.0
            for spec in specs:
                probe = dataclasses.replace(
                    spec, engine="analytic", obs="off", validate="off",
                    store=None)
                if supported(probe) is not None:
                    return None
                total += analytic_run(probe).metrics.exec_time
            return total
        except Exception:
            return None

    # -- submission ---------------------------------------------------------

    def submit(self, request) -> Tuple[Job, bool]:
        """Submit a request; returns ``(job, fresh)``.

        ``fresh`` is ``False`` when the request coalesced onto an
        in-flight job for the same canonical key.  The key is computed
        before the lock -- it compiles the program, which is the
        expensive part -- so two racing submissions both pay it, but
        only one simulates.
        """
        if self.store is not None:
            # The server's store is authoritative: clients do not get
            # to point the service at arbitrary filesystem paths.
            request.store = self.store
        key = request.key()
        kind = request.KIND
        est_cycles = (self._analytic_cycles(request)
                      if self.analytic_admission else None)
        self.inc("serve.requests")
        with self._lock:
            if self._closed:
                raise QueueFullError("service is shutting down")
            existing = self._inflight.get((kind, key))
            if existing is not None:
                existing.coalesced += 1
                self.telemetry.inc("serve.coalesced")
                return existing, False
            if self._queued >= self.max_queued:
                self.telemetry.inc("serve.rejected")
                raise QueueFullError(
                    f"job queue full ({self.max_queued} queued)")
            deadline_ms = getattr(request, "deadline_ms", None)
            if deadline_ms is not None:
                wait_s = self._estimated_wait_locked()
                if wait_s * 1000.0 >= deadline_ms:
                    self.telemetry.inc("serve.deadline.rejected")
                    retry_after = max(1, math.ceil(wait_s))
                    raise DeadlineRejectedError(
                        f"estimated queue wait {wait_s * 1000.0:.0f}ms "
                        f"exceeds deadline_ms={deadline_ms}; retry in "
                        f"{retry_after}s or raise the deadline",
                        retry_after=retry_after)
            job = Job(kind, key, request)
            job.est_cycles = est_cycles
            self._jobs[job.id] = job
            self._inflight[(kind, key)] = job
            self._queued += 1
            if est_cycles is not None:
                self._queued_cycles += est_cycles
            else:
                self._queued_unknown += 1
            self.telemetry.inc("serve.jobs")
            job.future = self._pool.submit(self._run_job, job)
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    # -- execution (job threads) --------------------------------------------

    def _run_job(self, job: Job) -> None:
        with self._lock:
            self._queued -= 1
            if job.est_cycles is not None:
                self._queued_cycles = max(
                    0.0, self._queued_cycles - job.est_cycles)
            else:
                self._queued_unknown = max(0, self._queued_unknown - 1)
            job.state = RUNNING
            job.started = time.time()
        try:
            if job.deadline is not None and time.time() >= job.deadline:
                waited_ms = (time.time() - job.created) * 1000.0
                raise DeadlineError(
                    f"deadline_ms={job.deadline_ms} expired after "
                    f"{waited_ms:.0f}ms in the queue; the job never "
                    f"started")
            job.result = self._execute(job)
            job.state = DONE
        except DeadlineError as err:
            job.error = err
            job.state = EXPIRED
            self.inc("serve.deadline.expired")
        except BaseException as err:  # never-crash: capture, classify
            job.error = err
            job.state = FAILED
            self.inc("serve.errors")
        finally:
            job.finished = time.time()
            duration = job.finished - job.started
            with self._lock:
                self._inflight.pop((job.kind, job.key), None)
                if self._avg_job_seconds <= 0.0:
                    self._avg_job_seconds = duration
                else:
                    self._avg_job_seconds += JOB_ESTIMATE_ALPHA * (
                        duration - self._avg_job_seconds)
                if job.est_cycles is not None and job.est_cycles > 0 \
                        and job.state == DONE:
                    rate = duration / job.est_cycles
                    if self._seconds_per_cycle is None:
                        self._seconds_per_cycle = rate
                    else:
                        self._seconds_per_cycle += CYCLE_RATE_ALPHA * (
                            rate - self._seconds_per_cycle)

    @staticmethod
    def _remaining(job: Job) -> Optional[float]:
        """Seconds left on the job's deadline (None = unbounded).
        Raises :class:`DeadlineError` when already expired."""
        if job.deadline is None:
            return None
        remaining = job.deadline - time.time()
        if remaining <= 0:
            raise DeadlineError(
                f"deadline_ms={job.deadline_ms} expired mid-job")
        return max(0.001, remaining)

    def _bounded_run(self, spec, job: Job):
        """One simulation under the job's remaining deadline budget.
        The harness's ``_attempt`` enforces the wall-clock bound; its
        :class:`SimulationTimeout` is reclassified as the structured
        deadline expiry it actually is."""
        remaining = self._remaining(job)
        if remaining is None:
            return run_simulation(spec)
        try:
            return _attempt(spec, remaining)
        except SimulationTimeout as err:
            raise DeadlineError(
                f"deadline_ms={job.deadline_ms} expired while the "
                f"simulation ran ({err.message})") from err

    def _execute(self, job: Job) -> Dict[str, object]:
        request = job.request
        if job.kind == "run":
            job.progress_total = 1
            result = self._bounded_run(request.to_spec(), job)
            job.progress_done = 1
            # A store replay carries metrics only -- no transformation
            # artifact -- which is exactly the "zero simulation work"
            # signature the response reports.
            hit = (request.store is not None
                   and result.transformation is None)
            self.inc("serve.store_hits" if hit else "serve.store_misses")
            return {"kind": "run", "key": job.key,
                    "metrics": metrics_to_doc(result.metrics),
                    "page_fallbacks": result.page_fallbacks,
                    "store_hit": hit}
        if job.kind == "compare":
            base_spec, opt_spec = request.specs()
            job.progress_total = 2
            hits = 0
            sides = []
            for spec in (base_spec, opt_spec):
                result = self._bounded_run(spec, job)
                hits += int(request.store is not None
                            and result.transformation is None)
                sides.append(result)
                job.progress_done += 1
            comparison = Comparison(sides[0].metrics, sides[1].metrics)
            self.inc("serve.store_hits", hits)
            self.inc("serve.store_misses", 2 - hits)
            return {"kind": "compare", "key": job.key,
                    "row": comparison.as_row(),
                    "base": metrics_to_doc(sides[0].metrics),
                    "opt": metrics_to_doc(sides[1].metrics),
                    "store_hits": hits}
        if job.kind == "search":
            # The deadline cannot bound individual analytic
            # evaluations (they are not simulations), so it is checked
            # once up front; the search itself is CPU-bounded by
            # construction (screen is analytic, re-sim is top_k runs).
            self._remaining(job)
            job.progress_total = 1
            result = request.execute()
            job.progress_done = 1
            job.rows = list(result.rows)
            return {"kind": "search", "key": job.key,
                    "mode": result.mode,
                    "space_size": result.space_size,
                    "candidates_evaluated": result.candidates_evaluated,
                    "acceptance_rate": result.acceptance_rate,
                    "rows": list(result.rows),
                    "csv": result.to_csv()}
        # sweep
        job.progress_total = len(request.grid())

        def progress(*args) -> None:
            if len(args) == 1:  # plain engine: one PointOutcome
                outcome = args[0]
                job.progress_done += 1
                row = getattr(outcome, "row", None)
                if row:
                    job.rows.append(dict(row))
            else:  # hardened engine: (wave, done, failed, total)
                _, done, failed, total = args
                job.progress_done = done + failed
                job.progress_total = total

        remaining = self._remaining(job)
        if remaining is None:
            report = request.execute(progress=progress)
        else:
            # The deadline flows into the hardened harness as the
            # per-point attempt bound: no single point may outlive the
            # job's remaining budget.
            report = request.execute(
                progress=progress,
                harness=HarnessConfig(timeout=remaining))
        # The streamed rows arrive in completion order; the report's
        # rows are the canonical grid order every CSV uses.  Replace.
        job.rows = list(report.rows)
        job.progress_done = len(report.rows)
        self.inc("serve.store_hits", report.store_hits)
        self.inc("serve.store_misses", report.store_misses)
        return {"kind": "sweep", "key": job.key, "rows": report.rows,
                "failures": report.failures, "csv": report.to_csv(),
                "store_hits": report.store_hits,
                "store_misses": report.store_misses}
