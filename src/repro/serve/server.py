"""The asyncio experiment server.

Endpoints (all JSON unless noted):

* ``POST /v1/run`` / ``POST /v1/sweep`` / ``POST /v1/compare`` /
  ``POST /v1/search`` -- submit a typed request
  (:mod:`repro.api.requests`, schema v1).  The transport envelope
  accepts one extra key, ``wait``: ``true`` blocks until the job
  finishes and returns its result (the default for run and compare);
  ``false`` returns ``202`` with the job id immediately (the default
  for sweep and search).
* ``GET /v1/jobs/<id>`` -- job state, progress, streamed sweep rows,
  and the result once finished (``?rows=0`` omits the row stream).
* ``GET /v1/store/<kind>/<key>`` / ``PUT /v1/store/<kind>/<key>`` --
  the shared-store API: read or publish one record in the server's
  configured store (404 = miss, 201 = stored, 200 = already present).
  ``GET /v1/store/<kind>`` lists the keys.  Remote workers point
  :class:`repro.store.remote.RemoteStore` here
  (``--store http://host:port``) to share one result store.
* ``GET /metrics`` -- Prometheus text: service counters (``serve.*``),
  process-wide store and supervision counters
  (:func:`repro.obs.export.process_registry`).
* ``GET /healthz`` -- liveness plus a one-line job census.

Error contract: malformed HTTP or JSON -> structured 400; a request
the schema rejects -> 400 (``RequestError``); a well-formed request
the system could not honour -> 422 carrying the
:mod:`repro.errors` taxonomy kind; an expired ``deadline_ms`` -> 504;
admission control or queue overflow -> 429 (with ``Retry-After`` when
the estimate is known); anything else -> 500.  The connection handler
catches everything -- a client can not crash the server.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Dict, Optional

from repro.api.requests import REQUEST_KINDS
from repro.errors import RequestError, StoreError, http_status
from repro.obs.data import ObsData
from repro.obs.export import process_obs, prometheus_text
from repro.serve.jobs import (DONE, EXPIRED, FAILED, JobRegistry,
                              QueueFullError)
from repro.serve.wire import (DEFAULT_READ_TIMEOUT, HttpRequest,
                              WireError, error_response, json_response,
                              read_request, text_response)
from repro.store import base as store_backends
from repro.store.base import RESULT_KIND, ROW_KIND
from repro.store.remote import payload_sha256

__all__ = ["ExperimentServer", "serve_forever"]

#: Endpoint path -> request kind.
POST_ROUTES = {"/v1/run": "run", "/v1/sweep": "sweep",
               "/v1/compare": "compare", "/v1/search": "search"}
#: Blocking default per kind: runs and compares are interactive-fast
#: (seconds, O(1) on a warm store); sweeps and searches are jobs you
#: poll.
WAIT_DEFAULTS = {"run": True, "compare": True, "sweep": False,
                 "search": False}
#: Record namespaces the store API serves.
STORE_KINDS = (RESULT_KIND, ROW_KIND)


class ExperimentServer:
    """One listening socket over one :class:`JobRegistry`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[str] = None, job_threads: int = 2,
                 max_queued: int = 32,
                 read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
                 analytic_admission: bool = False):
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.jobs = JobRegistry(store=store, job_threads=job_threads,
                                max_queued=max_queued,
                                analytic_admission=analytic_admission)
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(
            None, self.jobs.shutdown)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader,
                                             timeout=self.read_timeout)
                if request is None:
                    return
                payload = await self._dispatch(request)
            except WireError as err:
                if err.status == 408:
                    self.jobs.inc("serve.read_timeouts")
                payload = error_response(err)
            except Exception as err:  # noqa: BLE001 -- never-crash edge
                payload = error_response(err)
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        if request.method == "GET":
            if request.path == "/healthz":
                return self._healthz()
            if request.path == "/metrics":
                return self._metrics()
            if request.path.startswith("/v1/jobs/"):
                return self._job_status(request)
            if request.path.startswith("/v1/store/"):
                return await self._store_get(request)
            return json_response(404, {"error": {
                "kind": "wire", "message": f"no such resource "
                                           f"{request.path!r}"}})
        if request.method == "POST":
            kind = POST_ROUTES.get(request.path)
            if kind is None:
                return json_response(404, {"error": {
                    "kind": "wire", "message": f"no such resource "
                                               f"{request.path!r}"}})
            return await self._submit(kind, request)
        if request.method == "PUT":
            if request.path.startswith("/v1/store/"):
                return await self._store_put(request)
            return json_response(404, {"error": {
                "kind": "wire", "message": f"no such resource "
                                           f"{request.path!r}"}})
        return json_response(405, {"error": {
            "kind": "wire",
            "message": f"method {request.method} not allowed"}})

    # -- GET endpoints ------------------------------------------------------

    def _healthz(self) -> bytes:
        jobs = self.jobs.jobs()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return json_response(200, {"status": "ok", "jobs": by_state,
                                   "store": self.jobs.store})

    def _metrics(self) -> bytes:
        serve_part = ObsData(level="full", label="serve",
                             telemetry=self.jobs.telemetry)
        return text_response(
            200, prometheus_text([serve_part, process_obs()]))

    def _job_status(self, request: HttpRequest) -> bytes:
        job_id = request.path[len("/v1/jobs/"):]
        job = self.jobs.get(job_id)
        if job is None:
            return json_response(404, {"error": {
                "kind": "wire",
                "message": f"no such job {job_id!r}"}})
        include_rows = request.query.get("rows", "1") != "0"
        return json_response(200, job.snapshot(include_rows))

    # -- store API ----------------------------------------------------------

    def _store_target(self, request: HttpRequest):
        """``(store, kind, key, error_payload)`` for a store-API path.
        ``key`` is ``None`` for the list-keys form.  On any problem the
        first three are ``None`` and the payload is the response."""
        if self.jobs.store is None:
            return None, None, None, json_response(503, {"error": {
                "kind": "store",
                "message": "this server has no store configured "
                           "(start it with --store)"}})
        parts = request.path[len("/v1/store/"):].split("/")
        kind = parts[0] if parts else ""
        key = parts[1] if len(parts) > 1 else None
        if kind not in STORE_KINDS or len(parts) > 2 or key == "":
            return None, None, None, json_response(404, {"error": {
                "kind": "wire",
                "message": f"no such store resource {request.path!r}; "
                           f"kinds: {', '.join(STORE_KINDS)}"}})
        store = store_backends.resolve(self.jobs.store)
        return store, kind, key, None

    async def _store_get(self, request: HttpRequest) -> bytes:
        store, kind, key, problem = self._store_target(request)
        if problem is not None:
            return problem
        loop = asyncio.get_running_loop()
        if key is None:
            keys = await loop.run_in_executor(None, store.keys, kind)
            self.jobs.inc("serve.store_api.lists")
            return json_response(200, {"kind": kind,
                                       "keys": sorted(keys)})
        payload = await loop.run_in_executor(None, store.get, key, kind)
        if payload is None:
            self.jobs.inc("serve.store_api.get_misses")
            return json_response(404, {"error": {
                "kind": "wire",
                "message": f"no {kind} record for key {key!r}"}})
        self.jobs.inc("serve.store_api.get_hits")
        return json_response(200, {"kind": kind, "key": key,
                                   "payload": payload,
                                   "sha256": payload_sha256(payload)})

    async def _store_put(self, request: HttpRequest) -> bytes:
        store, kind, key, problem = self._store_target(request)
        if problem is not None:
            return problem
        if key is None:
            return json_response(405, {"error": {
                "kind": "wire",
                "message": "PUT needs /v1/store/<kind>/<key>"}})
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            return error_response(
                RequestError(f"malformed JSON body: {err}"))
        if not isinstance(payload, dict):
            return error_response(RequestError(
                f"store payload must be a JSON object, got "
                f"{type(payload).__name__}"))
        loop = asyncio.get_running_loop()
        try:
            stored = await loop.run_in_executor(
                None, store.put, key, payload, kind)
        except (OSError, StoreError) as err:
            return error_response(StoreError(
                f"store write failed: {err}", transient=True))
        self.jobs.inc("serve.store_api.puts" if stored
                      else "serve.store_api.put_skipped")
        return json_response(201 if stored else 200,
                             {"kind": kind, "key": key,
                              "stored": stored})

    # -- POST endpoints -----------------------------------------------------

    async def _submit(self, kind: str, request: HttpRequest) -> bytes:
        try:
            doc = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            return error_response(
                RequestError(f"malformed JSON body: {err}"))
        if not isinstance(doc, dict):
            return error_response(RequestError(
                f"request body must be a JSON object, got "
                f"{type(doc).__name__}"))
        # ``wait`` is transport, not experiment identity: strip it
        # before the codec sees the document.
        wait = doc.pop("wait", WAIT_DEFAULTS[kind])
        if not isinstance(wait, bool):
            return error_response(RequestError(
                f"field 'wait' must be bool, got "
                f"{type(wait).__name__}"))
        doc.setdefault("kind", kind)
        try:
            typed = REQUEST_KINDS[kind].from_wire(doc)
        except RequestError as err:
            return error_response(err)

        loop = asyncio.get_running_loop()
        try:
            # submit() compiles the program to compute the canonical
            # key -- keep that off the event loop.
            job, fresh = await loop.run_in_executor(
                None, self.jobs.submit, typed)
        except QueueFullError as err:
            headers = None
            retry_after = getattr(err, "retry_after", None)
            if retry_after is not None:
                headers = {"Retry-After": str(retry_after)}
            return json_response(429, {"error": {
                "kind": "backpressure", "message": str(err)}}, headers)
        except Exception as err:  # noqa: BLE001 -- e.g. workload typos
            return error_response(err)

        if not wait:
            return json_response(202, {"id": job.id, "key": job.key,
                                       "state": job.state,
                                       "coalesced": not fresh})
        # Shield the shared computation: this client timing out must
        # not cancel a job other clients coalesced onto.
        await asyncio.shield(asyncio.wrap_future(job.future))
        doc = job.snapshot()
        doc["coalesced_onto"] = not fresh
        if job.state in (FAILED, EXPIRED) and job.error is not None:
            return json_response(http_status(job.error), doc)
        return json_response(200 if job.state == DONE else 500, doc)


async def serve_forever(host: str = "127.0.0.1", port: int = 0,
                        store: Optional[str] = None,
                        job_threads: int = 2, max_queued: int = 32,
                        read_timeout: Optional[float] =
                        DEFAULT_READ_TIMEOUT,
                        analytic_admission: bool = False,
                        out=None, ready=None) -> int:
    """Run the server until SIGTERM/SIGINT; returns 0 on clean exit.

    ``out`` receives the one listening line (default stdout) --
    scripts parse the bound port from it when ``port=0``.  ``ready``
    is an optional callback receiving the started server (tests).
    """
    out = out or sys.stdout
    server = ExperimentServer(host=host, port=port, store=store,
                              job_threads=job_threads,
                              max_queued=max_queued,
                              read_timeout=read_timeout,
                              analytic_admission=analytic_admission)
    await server.start()
    print(f"repro-serve listening on http://{server.host}:"
          f"{server.port}", file=out, flush=True)
    if ready is not None:
        ready(server)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loop; rely on KeyboardInterrupt
    try:
        await stop.wait()
    finally:
        await server.stop()
    print("repro-serve: clean shutdown", file=out, flush=True)
    return 0
