"""HTTP/1.1 wire layer for the experiment service -- stdlib only.

A deliberately small subset of HTTP: request line, headers,
``Content-Length`` bodies, one response per connection.  That is
everything ``curl``, a Prometheus scraper, and the stdlib client need,
and small enough that the never-crash contract is auditable: every
malformed input path lands in :class:`WireError` (-> structured 400),
never in an unhandled exception.

Responses carry ``Connection: close`` -- the service optimizes for
correctness under many clients, not for connection reuse; the
expensive part of a request is the simulation, which the store and
the single-flight registry already dedupe.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ReproError, http_status

__all__ = ["DEFAULT_READ_TIMEOUT", "HttpRequest", "MAX_BODY_BYTES",
           "WireError", "error_doc", "error_response", "json_response",
           "read_request", "text_response"]

#: Upper bound on a request body -- a sweep over every axis is a few
#: KiB; anything near this limit is abuse, not an experiment.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Upper bound on one header line / the request line.
MAX_LINE_BYTES = 16 * 1024
#: Upper bound on the number of header lines.
MAX_HEADERS = 100
#: Wall-clock budget for receiving one whole request.  A per-read
#: timeout would not stop a slow-loris client that trickles one byte
#: per second (every read "makes progress"); the whole-request
#: deadline does.  Expiry answers 408.
DEFAULT_READ_TIMEOUT = 30.0

STATUS_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class WireError(Exception):
    """A request that never made it to the application layer --
    unparseable request line, oversized body, missing length.  Carries
    the HTTP status the connection handler must answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def read_request(reader: asyncio.StreamReader,
                       timeout: Optional[float] = DEFAULT_READ_TIMEOUT
                       ) -> Optional[HttpRequest]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF before any bytes (client closed an
    idle connection); raises :class:`WireError` on anything malformed.
    ``timeout`` bounds the *whole* request read -- a stalled or
    trickling client gets a 408-carrying :class:`WireError` instead of
    pinning the connection task forever.
    """
    deadline = None
    if timeout is not None:
        deadline = asyncio.get_running_loop().time() + timeout

    async def bounded(coro):
        if deadline is None:
            return await coro
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining <= 0:
            coro.close()
            raise WireError(408, f"request not received within "
                                 f"{timeout:g}s")
        try:
            return await asyncio.wait_for(coro, remaining)
        except asyncio.TimeoutError as err:
            raise WireError(408, f"request not received within "
                                 f"{timeout:g}s") from err

    try:
        line = await bounded(reader.readline())
    except (ConnectionError, asyncio.LimitOverrunError) as err:
        raise WireError(400, f"unreadable request line: {err}") from err
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise WireError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError as err:
        raise WireError(
            400, f"malformed request line {line!r}") from err
    if not version.startswith("HTTP/1."):
        raise WireError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        raw = await bounded(reader.readline())
        if not raw:
            raise WireError(400, "connection closed inside headers")
        if len(raw) > MAX_LINE_BYTES:
            raise WireError(400, "header line too long")
        text = raw.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise WireError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise WireError(400, "too many header lines")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as err:
            raise WireError(
                400, f"bad Content-Length {length_text!r}") from err
        if length < 0:
            raise WireError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise WireError(413, f"request body over {MAX_BODY_BYTES} "
                                 f"bytes")
        try:
            body = await bounded(reader.readexactly(length))
        except asyncio.IncompleteReadError as err:
            raise WireError(
                400, "connection closed inside the body") from err
    elif headers.get("transfer-encoding"):
        raise WireError(400, "chunked bodies are not supported; send "
                             "Content-Length")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(method=method.upper(), path=split.path,
                       query=query, headers=headers, body=body)


def _response(status: int, body: bytes, content_type: str,
              headers: Optional[Dict[str, str]] = None) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, doc,
                  headers: Optional[Dict[str, str]] = None) -> bytes:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body, "application/json", headers)


def text_response(status: int, text: str,
                  content_type: str = "text/plain; version=0.0.4"
                  ) -> bytes:
    return _response(status, text.encode("utf-8"), content_type)


def error_doc(err: BaseException) -> Tuple[int, Dict[str, object]]:
    """``(status, envelope)`` for any failure: :class:`ReproError`
    families keep their taxonomy name, wire-level failures their
    status, everything else is an internal 500 that hides nothing but
    the traceback."""
    if isinstance(err, WireError):
        return err.status, {"error": {"kind": "wire",
                                      "message": err.message}}
    status = http_status(err)
    kind = err.kind if isinstance(err, ReproError) else "internal"
    doc: Dict[str, object] = {"error": {"kind": kind,
                                        "message": str(err)}}
    if isinstance(err, ReproError):
        context = err.context()
        context.pop("kind", None)
        context.pop("traceback", None)
        if context:
            doc["error"]["context"] = context
    return status, doc


def error_response(err: BaseException) -> bytes:
    status, doc = error_doc(err)
    return json_response(status, doc)
