"""repro.serve: the concurrent experiment service.

A stdlib-only asyncio HTTP/JSON server over the typed request API
(:mod:`repro.api.requests`) and the persistent result store
(:mod:`repro.store`): repeated experiments are O(1) store hits,
concurrent identical experiments coalesce onto one computation, and
every sweep any client ever ran enriches the shared cache -- the
serving analogue of the paper's off-chip dedup insight.

* :class:`~repro.serve.server.ExperimentServer` /
  :func:`~repro.serve.server.serve_forever` -- the server.
* :class:`~repro.serve.jobs.JobRegistry` -- single-flight job
  execution with bounded-queue backpressure.
* :mod:`repro.serve.wire` -- the minimal HTTP/1.1 layer.

Start one from the CLI: ``repro-cli serve --store results --port 8080``
(see docs/service.md).
"""

from repro.serve.jobs import Job, JobRegistry, QueueFullError
from repro.serve.server import ExperimentServer, serve_forever

__all__ = ["ExperimentServer", "Job", "JobRegistry", "QueueFullError",
           "serve_forever"]
