"""Lowering: kernel-language AST to the affine Program IR.

The IR wants rectangular loop nests with constant bounds, one parallel
dimension, and references as integer access matrices.  Lowering walks
the loop tree, flattens each *perfect* nest path into one
:class:`~repro.program.ir.LoopNest`, turns every normalized affine
subscript into an access-matrix row, and collects array declarations.

Restrictions (diagnosed with source lines):

* loop bounds and array extents must fold to constants (after ``let``
  substitution) -- the paper's framework also assumes array sizes are
  known (Section 4);
* statements may only appear in the innermost loop of a nest path;
* at most one loop per nest path may be marked ``parallel`` (the
  outermost is assumed when none is).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FrontendError
from repro.obs.tracer import obs_span
from repro.frontend.ast import (Affine, ArrayDeclNode, ArrayRefNode,
                                AssignNode, KernelModule, LoopNode)
from repro.frontend.parser import ParseError, parse_kernel
from repro.program.ir import (AffineRef, ArrayDecl, LoopNest, Program)


class LoweringError(FrontendError, ValueError):
    """Semantic error during lowering, with a source line.

    Typed under :class:`~repro.errors.FrontendError` (see
    :class:`~repro.frontend.parser.ParseError`); ``ValueError``
    ancestry is kept for back-compatibility.
    """


def _const(value: Affine, what: str, line: int) -> int:
    if not value.is_constant:
        raise LoweringError(
            f"line {line}: {what} must be constant, got "
            f"{value.render()!r}")
    return value.const


def _lower_arrays(module: KernelModule) -> Dict[str, ArrayDecl]:
    arrays: Dict[str, ArrayDecl] = {}
    for node in module.arrays:
        if node.name in arrays:
            raise LoweringError(
                f"line {node.line}: array {node.name!r} redeclared")
        dims = tuple(_const(d, f"extent of {node.name}", node.line)
                     for d in node.dims)
        arrays[node.name] = ArrayDecl(node.name, dims, node.element_size)
    return arrays


def _access_row(sub: Affine, loop_vars: Sequence[str], line: int
                ) -> Tuple[Tuple[int, ...], int]:
    coeffs = sub.coeff_map()
    row = tuple(coeffs.pop(var, 0) for var in loop_vars)
    if coeffs:
        stray = ", ".join(sorted(coeffs))
        raise LoweringError(
            f"line {line}: subscript uses {stray} outside the nest")
    return row, sub.const


def _lower_ref(node: ArrayRefNode, arrays: Dict[str, ArrayDecl],
               loop_vars: Sequence[str], is_write: bool) -> AffineRef:
    if node.name not in arrays:
        raise LoweringError(
            f"line {node.line}: array {node.name!r} not declared")
    array = arrays[node.name]
    if len(node.subscripts) != array.rank:
        raise LoweringError(
            f"line {node.line}: {node.name} has rank {array.rank}, "
            f"reference has {len(node.subscripts)} subscripts")
    rows: List[Tuple[int, ...]] = []
    offsets: List[int] = []
    for sub in node.subscripts:
        row, off = _access_row(sub, loop_vars, node.line)
        rows.append(row)
        offsets.append(off)
    return AffineRef(array, tuple(rows), tuple(offsets), is_write)


def _flatten(loop: LoopNode) -> Tuple[List[LoopNode], List[AssignNode]]:
    """Peel a perfect nest path: the chain of loops plus the statements
    of the innermost body.  Imperfect nests (statements next to inner
    loops) are rejected -- split them in the source."""
    chain = [loop]
    node = loop
    while True:
        loops = [c for c in node.body if isinstance(c, LoopNode)]
        stmts = [c for c in node.body if isinstance(c, AssignNode)]
        if loops and stmts:
            raise LoweringError(
                f"line {node.line}: imperfect nest -- statements and "
                f"inner loops mix in one body")
        if not loops:
            return chain, stmts
        if len(loops) > 1:
            raise LoweringError(
                f"line {node.line}: multiple inner loops in one body; "
                f"write them as separate top-level nests")
        node = loops[0]
        chain.append(node)


def _lower_nest(loop: LoopNode, arrays: Dict[str, ArrayDecl],
                index: int) -> LoopNest:
    chain, stmts = _flatten(loop)
    if not stmts:
        raise LoweringError(
            f"line {loop.line}: nest has no statements")
    loop_vars = [l.var for l in chain]
    bounds = tuple(
        (_const(l.lower, f"lower bound of {l.var}", l.line),
         _const(l.upper, f"upper bound of {l.var}", l.line))
        for l in chain)
    parallel_marks = [d for d, l in enumerate(chain) if l.parallel]
    if len(parallel_marks) > 1:
        raise LoweringError(
            f"line {loop.line}: more than one parallel loop in a nest")
    parallel_dim = parallel_marks[0] if parallel_marks else 0

    refs: List[AffineRef] = []
    for stmt in stmts:
        for read in stmt.reads:
            refs.append(_lower_ref(read, arrays, loop_vars, False))
        refs.append(_lower_ref(stmt.lhs, arrays, loop_vars, True))

    work = next((l.work for l in chain if l.work is not None), None)
    repeat = 1
    for l in chain:
        repeat *= l.repeat
    return LoopNest(
        name=f"nest{index}_{chain[-1].var}",
        bounds=bounds,
        refs=tuple(refs),
        parallel_dim=parallel_dim,
        repeat=repeat,
        work_per_iteration=work if work is not None else 4)


def lower_module(module: KernelModule, name: str = "kernel") -> Program:
    """Lower a parsed module to a :class:`~repro.program.ir.Program`."""
    with obs_span("frontend.lower", cat="compile",
                  nests=len(module.loops)):
        arrays = _lower_arrays(module)
        nests = [_lower_nest(loop, arrays, i)
                 for i, loop in enumerate(module.loops)]
        return Program(name, list(arrays.values()), nests)


def compile_kernel(source: str, name: str = "kernel") -> Program:
    """Front door: source text to Program (parse + lower).

    Upholds the never-crash contract: any rejection is a typed
    :class:`~repro.errors.FrontendError` subclass.  Failures the
    grammar walk cannot classify (e.g. recursion exhaustion on deeply
    nested fuzz inputs) are wrapped rather than leaked.
    """
    try:
        return lower_module(parse_kernel(source), name)
    except FrontendError:
        raise
    except RecursionError:
        raise FrontendError(
            "kernel nests expressions or loops too deeply to compile")
    except (ValueError, TypeError, KeyError, IndexError,
            OverflowError, MemoryError) as exc:
        raise FrontendError(
            f"internal frontend failure: {type(exc).__name__}: {exc}",
            cause=exc)
