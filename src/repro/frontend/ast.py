"""Abstract syntax for the kernel mini-language.

The language is deliberately small: constant bindings, array
declarations, and perfectly nestable counted loops whose bodies contain
assignments over affine array references.  Affine expressions are kept
in *normalized* form -- a mapping from loop-variable names to integer
coefficients plus a constant -- because that is exactly what the IR's
access matrices need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Affine:
    """A normalized affine expression ``sum(coeff[v] * v) + const``."""

    coeffs: Tuple[Tuple[str, int], ...]
    const: int = 0

    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), value)

    @staticmethod
    def variable(name: str) -> "Affine":
        return Affine(((name, 1),), 0)

    def __add__(self, other: "Affine") -> "Affine":
        coeffs = self.coeff_map()
        for name, c in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + c
        return Affine(
            tuple((n, c) for n, c in sorted(coeffs.items()) if c != 0),
            self.const + other.const)

    def __neg__(self) -> "Affine":
        return Affine(tuple((n, -c) for n, c in self.coeffs), -self.const)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + (-other)

    def scaled(self, factor: int) -> "Affine":
        return Affine(
            tuple((n, c * factor) for n, c in self.coeffs if c * factor),
            self.const * factor)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def render(self) -> str:
        """Human-readable form, e.g. ``2*i + j - 1``."""
        parts: List[str] = []
        for name, c in self.coeffs:
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        out = parts[0]
        for part in parts[1:]:
            out += f" - {part[1:]}" if part.startswith("-") else \
                f" + {part}"
        return out


@dataclass(frozen=True)
class ArrayRefNode:
    """``NAME[e1][e2]...`` with normalized affine subscripts."""

    name: str
    subscripts: Tuple[Affine, ...]
    line: int = 0

    def render(self) -> str:
        subs = "".join(f"[{s.render()}]" for s in self.subscripts)
        return f"{self.name}{subs}"


@dataclass(frozen=True)
class AssignNode:
    """``lhs op= <expr>``: one write plus the reads the expr contains.

    The right-hand side's non-reference arithmetic is irrelevant to the
    layout pass, so only the reads are kept (plus the original text for
    faithful re-emission).
    """

    lhs: ArrayRefNode
    reads: Tuple[ArrayRefNode, ...]
    op: str = "="          # '=', '+=', '-='
    rhs_text: str = ""
    line: int = 0


@dataclass(frozen=True)
class LoopNode:
    """``[parallel] for (var = lo; var < hi; var++) [work W] [repeat R]``"""

    var: str
    lower: Affine
    upper: Affine
    parallel: bool = False
    work: Optional[int] = None
    repeat: int = 1
    body: Tuple[object, ...] = ()   # LoopNode | AssignNode
    line: int = 0


@dataclass(frozen=True)
class ArrayDeclNode:
    name: str
    dims: Tuple[Affine, ...]
    element_size: int = 8
    line: int = 0


@dataclass
class KernelModule:
    """A parsed source file: bindings, arrays, top-level loops."""

    bindings: Dict[str, int] = field(default_factory=dict)
    arrays: List[ArrayDeclNode] = field(default_factory=list)
    loops: List[LoopNode] = field(default_factory=list)
