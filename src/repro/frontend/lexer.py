"""Tokenizer for the kernel mini-language.

The front end accepts a small C-like language for data-parallel affine
kernels (the shape of the paper's inputs -- see Figure 9(a)):

.. code-block:: c

    let N = 128;
    array Z[N][N] elem 8;

    parallel for (i = 1; i < N - 1; i++) work 12 {
      for (j = 1; j < N - 1; j++) {
        Z[i][j] = Z[i-1][j] + Z[i][j] + Z[i+1][j];
      }
    }

Tokens are identifiers, integer literals, keywords (``let``, ``array``,
``elem``, ``parallel``, ``for``, ``work``, ``repeat``) and punctuation.
Comments run from ``//`` or ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import FrontendError

KEYWORDS = {"let", "array", "elem", "parallel", "for", "work", "repeat"}

PUNCT = ["++", "+=", "-=", "==", "<=", ">=",
         "(", ")", "[", "]", "{", "}", ";", ",",
         "=", "+", "-", "*", "/", "%", "<", ">"]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line)."""

    kind: str      # 'ident', 'int', 'punct', or a keyword
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexerError(FrontendError, ValueError):
    """Raised on characters the language does not contain.

    A :class:`~repro.errors.FrontendError` (the typed rejection half of
    the frontend's never-crash contract); still a ``ValueError`` for
    back-compatibility with callers that catch the old type.
    """


def tokenize(source: str) -> List[Token]:
    """Tokenize the whole source; raises :class:`LexerError` on junk."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("int", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = word if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        for punct in PUNCT:  # longest-match first (list is ordered)
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line))
                i += len(punct)
                break
        else:
            raise LexerError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
