"""Recursive-descent parser for the kernel mini-language.

Grammar (EBNF-ish)::

    module   := item*
    item     := "let" IDENT "=" expr ";"
              | "array" IDENT ("[" expr "]")+ ("elem" INT)? ";"
              | loop
    loop     := ("parallel")? "for" "(" IDENT "=" expr ";"
                IDENT "<" expr ";" IDENT ("++" | "+=" INT) ")"
                ("work" INT | "repeat" INT)* block
    block    := "{" (loop | assign)* "}"
    assign   := ref ("=" | "+=" | "-=") rhs ";"
    rhs      := any expression; array references inside are collected
    ref      := IDENT ("[" expr "]")+
    expr     := affine arithmetic over constants, let-bindings and
                loop variables (+, -, and * by a constant)

Constant folding happens during parsing: ``let`` bindings and integer
literals reduce immediately, so loop bounds and array extents come out
as :class:`~repro.frontend.ast.Affine` values whose variables can only
be loop iterators.

Strided loops (``i += s``) are desugared at parse time: the loop is
normalized to unit stride over ``ceil((hi - lo) / s)`` iterations and
every use of the iterator inside the body substitutes ``s*i + lo`` --
so the IR only ever sees unit-stride rectangular nests while subscripts
keep their true strides (e.g. mgrid's ``A[2i][2j]``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FrontendError
from repro.obs.tracer import obs_span
from repro.frontend.ast import (Affine, ArrayDeclNode, ArrayRefNode,
                                AssignNode, KernelModule, LoopNode)
from repro.frontend.lexer import Token, tokenize


class ParseError(FrontendError, ValueError):
    """Syntax or semantic error, with a source line.

    Typed under :class:`~repro.errors.FrontendError` so fuzzed inputs
    are *rejections*, never crashes; ``ValueError`` ancestry is kept
    for back-compatibility.
    """


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.module = KernelModule()
        self._loop_vars: List[str] = []
        self._substitutions: dict = {}

    # -- token plumbing -----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.current
        self.pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.current
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(
                f"line {tok.line}: expected {want!r}, found {tok.text!r}")
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None
                ) -> Optional[Token]:
        tok = self.current
        if tok.kind == kind and (text is None or tok.text == text):
            return self._advance()
        return None

    # -- entry --------------------------------------------------------------
    def parse(self) -> KernelModule:
        while self.current.kind != "eof":
            if self.current.kind == "let":
                self._parse_let()
            elif self.current.kind == "array":
                self._parse_array()
            elif self.current.kind in ("parallel", "for"):
                self.module.loops.append(self._parse_loop())
            else:
                raise ParseError(
                    f"line {self.current.line}: unexpected "
                    f"{self.current.text!r} at top level")
        if not self.module.loops:
            raise ParseError("module contains no loop nests")
        return self.module

    # -- declarations -------------------------------------------------------
    def _parse_let(self) -> None:
        self._expect("let")
        name = self._expect("ident").text
        self._expect("punct", "=")
        value = self._parse_expr()
        if not value.is_constant:
            raise ParseError(f"let {name}: value must be constant")
        self._expect("punct", ";")
        self.module.bindings[name] = value.const

    def _parse_array(self) -> None:
        tok = self._expect("array")
        name = self._expect("ident").text
        dims: List[Affine] = []
        while self._accept("punct", "["):
            dims.append(self._parse_expr())
            self._expect("punct", "]")
        if not dims:
            raise ParseError(f"line {tok.line}: array {name} needs dims")
        elem = 8
        if self._accept("elem"):
            elem = int(self._expect("int").text)
        self._expect("punct", ";")
        self.module.arrays.append(
            ArrayDeclNode(name, tuple(dims), elem, tok.line))

    # -- loops & statements --------------------------------------------------
    def _parse_loop(self) -> LoopNode:
        parallel = self._accept("parallel") is not None
        tok = self._expect("for")
        self._expect("punct", "(")
        var = self._expect("ident").text
        if var in self._loop_vars:
            raise ParseError(f"line {tok.line}: iterator {var!r} shadows "
                             f"an enclosing loop")
        self._expect("punct", "=")
        lower = self._parse_expr()
        self._expect("punct", ";")
        cond_var = self._expect("ident").text
        if cond_var != var:
            raise ParseError(f"line {tok.line}: condition tests "
                             f"{cond_var!r}, not {var!r}")
        self._expect("punct", "<")
        upper = self._parse_expr()
        self._expect("punct", ";")
        inc_var = self._expect("ident").text
        if inc_var != var:
            raise ParseError(f"line {tok.line}: increment bumps "
                             f"{inc_var!r}, not {var!r}")
        step = 1
        if self._accept("punct", "++") is None:
            self._expect("punct", "+=")
            step = int(self._expect("int").text)
            if step < 1:
                raise ParseError(f"line {tok.line}: step must be >= 1")
        self._expect("punct", ")")
        if step > 1:
            # Desugar to unit stride: normalized iterations, and every
            # body use of the iterator reads ``step*var + lo``.
            if not (lower.is_constant and upper.is_constant):
                raise ParseError(
                    f"line {tok.line}: strided loop needs constant "
                    f"bounds")
            count = -(-(upper.const - lower.const) // step)
            self._substitutions[var] = \
                Affine.variable(var).scaled(step) + \
                Affine.constant(lower.const)
            lower = Affine.constant(0)
            upper = Affine.constant(max(count, 0) or 1)

        work: Optional[int] = None
        repeat = 1
        while True:
            if self._accept("work"):
                work = int(self._expect("int").text)
            elif self._accept("repeat"):
                repeat = int(self._expect("int").text)
            else:
                break

        self._loop_vars.append(var)
        body: List[object] = []
        self._expect("punct", "{")
        while not self._accept("punct", "}"):
            if self.current.kind in ("parallel", "for"):
                body.append(self._parse_loop())
            elif self.current.kind == "ident":
                body.append(self._parse_assign())
            else:
                raise ParseError(
                    f"line {self.current.line}: unexpected "
                    f"{self.current.text!r} in loop body")
        self._loop_vars.pop()
        self._substitutions.pop(var, None)
        return LoopNode(var=var, lower=lower, upper=upper,
                        parallel=parallel, work=work, repeat=repeat,
                        body=tuple(body), line=tok.line)

    def _parse_assign(self) -> AssignNode:
        lhs = self._parse_ref()
        op_tok = self.current
        if op_tok.kind != "punct" or op_tok.text not in ("=", "+=", "-="):
            raise ParseError(
                f"line {op_tok.line}: expected assignment operator")
        self._advance()
        reads, rhs_text = self._parse_rhs()
        self._expect("punct", ";")
        if op_tok.text in ("+=", "-="):
            reads = (ArrayRefNode(lhs.name, lhs.subscripts,
                                  lhs.line),) + reads
        return AssignNode(lhs=lhs, reads=reads, op=op_tok.text,
                          rhs_text=rhs_text, line=lhs.line)

    def _parse_rhs(self) -> Tuple[Tuple[ArrayRefNode, ...], str]:
        """Scan the right-hand side up to ';', collecting array refs.

        Arbitrary arithmetic is allowed; only references matter to the
        layout pass.  Parentheses must balance.
        """
        reads: List[ArrayRefNode] = []
        pieces: List[str] = []
        depth = 0
        while True:
            tok = self.current
            if tok.kind == "eof":
                raise ParseError(f"line {tok.line}: unterminated "
                                 f"statement")
            if tok.kind == "punct" and tok.text == ";" and depth == 0:
                break
            if tok.kind == "punct" and tok.text == "(":
                depth += 1
                pieces.append(self._advance().text)
            elif tok.kind == "punct" and tok.text == ")":
                depth -= 1
                if depth < 0:
                    raise ParseError(
                        f"line {tok.line}: unbalanced ')'")
                pieces.append(self._advance().text)
            elif tok.kind == "ident" and self._peek_is_ref():
                ref = self._parse_ref()
                reads.append(ref)
                pieces.append(ref.render())
            else:
                pieces.append(self._advance().text)
        return tuple(reads), " ".join(pieces)

    def _peek_is_ref(self) -> bool:
        nxt = self.tokens[self.pos + 1]
        return nxt.kind == "punct" and nxt.text == "["

    def _parse_ref(self) -> ArrayRefNode:
        tok = self._expect("ident")
        subs: List[Affine] = []
        while self._accept("punct", "["):
            subs.append(self._parse_expr())
            self._expect("punct", "]")
        if not subs:
            raise ParseError(
                f"line {tok.line}: {tok.text!r} used without subscripts")
        return ArrayRefNode(tok.text, tuple(subs), tok.line)

    # -- affine expressions ---------------------------------------------------
    def _parse_expr(self) -> Affine:
        value = self._parse_term()
        while True:
            if self._accept("punct", "+"):
                value = value + self._parse_term()
            elif self._accept("punct", "-"):
                value = value - self._parse_term()
            else:
                return value

    def _parse_term(self) -> Affine:
        value = self._parse_factor()
        while self._accept("punct", "*"):
            rhs = self._parse_factor()
            if rhs.is_constant:
                value = value.scaled(rhs.const)
            elif value.is_constant:
                value = rhs.scaled(value.const)
            else:
                raise ParseError("non-affine product of two variables")
        return value

    def _parse_factor(self) -> Affine:
        tok = self.current
        if self._accept("punct", "("):
            inner = self._parse_expr()
            self._expect("punct", ")")
            return inner
        if self._accept("punct", "-"):
            return -self._parse_factor()
        if tok.kind == "int":
            self._advance()
            return Affine.constant(int(tok.text))
        if tok.kind == "ident":
            self._advance()
            if tok.text in self.module.bindings:
                return Affine.constant(self.module.bindings[tok.text])
            if tok.text in self._loop_vars:
                return self._substitutions.get(
                    tok.text, Affine.variable(tok.text))
            raise ParseError(
                f"line {tok.line}: unknown name {tok.text!r} (not a "
                f"let-binding or enclosing loop variable)")
        raise ParseError(
            f"line {tok.line}: expected expression, found {tok.text!r}")


def parse_kernel(source: str) -> KernelModule:
    """Parse a kernel module from source text."""
    with obs_span("frontend.lex", cat="compile", chars=len(source)):
        parser = Parser(source)          # __init__ tokenizes
    with obs_span("frontend.parse", cat="compile",
                  tokens=len(parser.tokens)):
        return parser.parse()
