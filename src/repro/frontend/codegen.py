"""C code generation: the source-to-source translator's output.

The paper's tool is an Open64 source-to-source pass whose output is C
with rewritten subscript expressions (Figure 9(c)).  We emit the same
thing for any :class:`~repro.core.pipeline.TransformationResult`:

* each transformed array becomes a flat buffer sized to the (padded)
  layout footprint,
* each array gets a ``static inline`` index function implementing its
  layout -- the unimodular relabeling plus the strip-mining/permutation
  arithmetic of Section 5.3, with the small per-thread lookup tables
  (cluster, rank, MC slot) the clustered layouts need,
* every loop nest is re-emitted with references rewritten to
  ``NAME_data[NAME_idx(...)]``.

The emitted code is plain C99 and self-contained; it is also what the
``repro-cli transform`` command prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.layout import (ClusteredLayout, Layout, RowMajorLayout,
                               SharedL2Layout, TransformedLayout)
from repro.core.pipeline import TransformationResult
from repro.program.ir import (AffineRef, ArrayDecl, IndexedRef, LoopNest,
                              Program)


def _iter_names(depth: int) -> List[str]:
    base = ["i", "j", "k", "l", "m", "n"]
    return [base[d] if d < len(base) else f"i{d}" for d in range(depth)]


def _affine_text(row: Sequence[int], offset: int,
                 names: Sequence[str]) -> str:
    parts: List[str] = []
    for c, name in zip(row, names):
        c = int(c)
        if c == 0:
            continue
        if c == 1:
            parts.append(name)
        elif c == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{c}*{name}")
    if offset or not parts:
        parts.append(str(int(offset)))
    text = parts[0]
    for part in parts[1:]:
        text += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
    return text


def _int_array(name: str, values: Sequence[int]) -> str:
    body = ", ".join(str(int(v)) for v in values)
    return f"static const long {name}[{len(values)}] = {{{body}}};"


def _layout_tables(name: str, layout: Layout) -> List[str]:
    lines: List[str] = []
    if isinstance(layout, ClusteredLayout):
        lines.append(_int_array(f"{name}_CLUSTER",
                                layout._thread_cluster.tolist()))
        lines.append(_int_array(f"{name}_RANK", layout._rank.tolist()))
        slots = layout._mc_slot.reshape(-1).tolist()
        lines.append(_int_array(f"{name}_MCSLOT", slots))
    elif isinstance(layout, SharedL2Layout):
        lines.append(_int_array(f"{name}_SLOT", layout._slot.tolist()))
        lines.append(_int_array(f"{name}_SUB", layout._sub.tolist()))
    return lines


def _transformed_coord_exprs(layout: TransformedLayout,
                             names: Sequence[str]) -> List[str]:
    """Expressions for ``U a - mins`` with ``a`` the argument names."""
    exprs = []
    for k in range(len(layout.u)):
        row = layout.u[k]
        shift = -int(layout._mins[k, 0])
        exprs.append(_affine_text(row, shift, names))
    return exprs


def _rest_expr(layout, tc_names: Sequence[str]) -> str:
    strides = layout._rest_strides.tolist()
    if not strides:
        return "0"
    return _affine_text(strides, 0, tc_names[1:])


def emit_layout_function(name: str, layout: Layout) -> str:
    """The ``static inline long NAME_idx(...)`` for one array."""
    rank = layout.array.rank
    args = ", ".join(f"long a{d}" for d in range(rank))
    header = f"static inline long {name}_idx({args}) {{"
    names = [f"a{d}" for d in range(rank)]

    if isinstance(layout, ClusteredLayout):
        tc = _transformed_coord_exprs(layout, names)
        body = [
            f"  long tc0 = {tc[0]};",
            f"  long adj = ((tc0 - {layout.partition_offset}) % "
            f"{layout.block * layout.num_threads} + "
            f"{layout.block * layout.num_threads}) % "
            f"{layout.block * layout.num_threads};",
            f"  long t = adj / {layout.block};",
            f"  long w = adj % {layout.block};",
            f"  long rest = {_rest_expr(layout, ['tc0'] + tc[1:])};"
            if rank > 1 else "  long rest = 0;",
            f"  long e = ({name}_RANK[t] * {layout.block} + w) * "
            f"{layout.rest} + rest;",
            f"  long lam = e / {layout.unit_elems};",
            f"  long line = (lam / {layout.k}) * {layout.num_mcs} + "
            f"{name}_MCSLOT[{name}_CLUSTER[t] * {layout.k} + "
            f"lam % {layout.k}];",
            f"  return line * {layout.unit_elems} + "
            f"e % {layout.unit_elems};",
        ]
    elif isinstance(layout, SharedL2Layout):
        tc = _transformed_coord_exprs(layout, names)
        body = [
            f"  long tc0 = {tc[0]};",
            f"  long adj = ((tc0 - {layout.partition_offset}) % "
            f"{layout.block * layout.num_threads} + "
            f"{layout.block * layout.num_threads}) % "
            f"{layout.block * layout.num_threads};",
            f"  long t = adj / {layout.block};",
            f"  long w = adj % {layout.block};",
            f"  long rest = {_rest_expr(layout, ['tc0'] + tc[1:])};"
            if rank > 1 else "  long rest = 0;",
            f"  long e = w * {layout.rest} + rest;",
            f"  long lam = e / {layout.unit_elems};",
            f"  long line = (lam * {layout.groups_per_slot} + "
            f"{name}_SUB[t]) * {layout.num_banks} + {name}_SLOT[t];",
            f"  return line * {layout.unit_elems} + "
            f"e % {layout.unit_elems};",
        ]
    elif isinstance(layout, TransformedLayout):
        tc = _transformed_coord_exprs(layout, names)
        strides = layout._strides.tolist()
        terms = [f"({e}) * {s}" if s != 1 else f"({e})"
                 for e, s in zip(tc, strides)]
        body = [f"  return {' + '.join(terms)};"]
    else:  # RowMajorLayout or base
        strides = [1] * rank
        acc = 1
        for d in range(rank - 1, -1, -1):
            strides[d] = acc
            acc *= layout.array.dims[d]
        terms = [f"a{d} * {s}" if s != 1 else f"a{d}"
                 for d, s in enumerate(strides)]
        body = [f"  return {' + '.join(terms)};"]
    return "\n".join([header] + body + ["}"])


def _ref_text(ref: AffineRef, names: Sequence[str]) -> str:
    subs = ", ".join(
        _affine_text(ref.access[d], ref.offset[d], names)
        for d in range(ref.array.rank))
    return f"{ref.array.name}_data[{ref.array.name}_idx({subs})]"


def _emit_nest(nest: LoopNest, out: List[str]) -> None:
    names = _iter_names(nest.depth)
    indent = ""
    for d, (lo, hi) in enumerate(nest.bounds):
        pragma = ("#pragma omp parallel for schedule(static)"
                  if d == nest.parallel_dim else None)
        if pragma:
            out.append(f"{indent}{pragma}")
        var = names[d]
        out.append(f"{indent}for (long {var} = {lo}; {var} < {hi}; "
                   f"{var}++) {{")
        indent += "  "
    writes = [r for r in nest.refs
              if isinstance(r, AffineRef) and r.is_write]
    reads = [r for r in nest.refs
             if isinstance(r, AffineRef) and not r.is_write]
    skipped = sum(1 for r in nest.refs if isinstance(r, IndexedRef))
    lhs = _ref_text(writes[-1], names) if writes else "/* no write */"
    rhs = " + ".join(_ref_text(r, names) for r in reads) or "0.0"
    if skipped:
        out.append(f"{indent}/* {skipped} indexed reference(s) kept in "
                   f"original form */")
    out.append(f"{indent}{lhs} = {rhs};")
    for d in range(nest.depth - 1, -1, -1):
        out.append("  " * d + "}")


def emit_program(program: Program,
                 result: Optional[TransformationResult] = None,
                 header_comment: str = "") -> str:
    """Emit the whole program as C, with or without the transformation.

    Without ``result`` the original row-major layouts are emitted (so
    the before/after pair diff cleanly).
    """
    layouts: Dict[str, Layout] = (
        result.layouts if result is not None
        else {a.name: RowMajorLayout(a) for a in program.arrays})
    out: List[str] = []
    title = header_comment or (
        f"transformed kernel {program.name!r}" if result
        else f"original kernel {program.name!r}")
    out.append(f"/* {title} -- generated by repro.frontend.codegen */")
    out.append("")
    for array in program.arrays:
        layout = layouts[array.name]
        if result is not None:
            plan = result.plans[array.name]
            note = plan.reason if not plan.optimized else (
                f"optimized, {plan.satisfaction:.0%} of references "
                f"satisfied")
            out.append(f"/* {array.name}: {note} */")
        for table in _layout_tables(array.name, layout):
            out.append(table)
        out.append(f"static double {array.name}_data"
                   f"[{layout.size_elements}];")
        out.append(emit_layout_function(array.name, layout))
        out.append("")
    out.append(f"void {program.name}_kernel(void) {{")
    for nest in program.nests:
        out.append(f"  /* nest {nest.name}"
                   + (f", repeated {nest.repeat}x" if nest.repeat > 1
                      else "") + " */")
        body: List[str] = []
        _emit_nest(nest, body)
        out.extend("  " + line for line in body)
    out.append("}")
    return "\n".join(out)
