"""The kernel-language front end: parse, lower, transform, emit C."""

from repro.frontend.ast import (Affine, ArrayDeclNode, ArrayRefNode,
                                AssignNode, KernelModule, LoopNode)
from repro.frontend.codegen import emit_layout_function, emit_program
from repro.frontend.lexer import LexerError, Token, tokenize
from repro.frontend.lower import LoweringError, compile_kernel, lower_module
from repro.frontend.parser import ParseError, parse_kernel

__all__ = [
    "Affine", "ArrayDeclNode", "ArrayRefNode", "AssignNode",
    "KernelModule", "LexerError", "LoopNode", "LoweringError",
    "ParseError", "Token", "compile_kernel", "emit_layout_function",
    "emit_program", "lower_module", "parse_kernel", "tokenize",
]
