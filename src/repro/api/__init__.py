"""The unified experiment facade: ``repro.run`` / ``repro.sweep`` /
``repro.compare``.

Historically the public entry points were scattered --
:func:`repro.sim.run.run_simulation`, :class:`repro.sim.sweep.Sweep`,
:class:`repro.sim.harness.HardenedSweep`, and the CLI each with their
own conventions.  This module is the stable, documented surface over
all of them; the old import paths keep working as thin aliases.

Since the service PR, every entry point is a thin shim over the typed
request objects in :mod:`repro.api.requests`: the keyword call
``repro.run(program=p, optimized=True)``, the CLI verbs, and the wire
protocol of :mod:`repro.serve` all build the same
:class:`~repro.api.requests.RunRequest` /
:class:`~repro.api.requests.SweepRequest` /
:class:`~repro.api.requests.CompareRequest` dataclasses, so one
request means the same experiment -- with the same memo/store key --
no matter which door it came through.

Naming scheme
-------------
* :class:`Experiment` (= :class:`repro.sim.run.RunSpec`) -- everything
  one simulated execution needs, fully specified and picklable.
* :class:`Result` (= :class:`repro.sim.run.RunResult`) -- one
  experiment's metrics plus inspectable artifacts.
* :class:`SweepResult` (= :class:`repro.sim.harness.SweepReport`) --
  the rows, failures and resume statistics of a sweep; ``to_csv()``
  emits the one canonical schema regardless of which engine ran it.

Quick start::

    import repro
    from repro.workloads import build_workload

    program = build_workload("swim")
    result = repro.run(program=program, optimized=True)

    report = repro.sweep(program, workers=4,
                         mapping=["M1", "M2"], num_mcs=[4, 8])
    print(report.to_csv())

    comparison = repro.compare(program)
    print(f"{comparison.exec_time_reduction:.1%}")

Every sweep accepts ``workers=N`` to fan grid points out to a process
pool (see :mod:`repro.sim.executor`); results are bit-identical to a
serial run.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.api.requests import (CompareRequest, RunRequest,
                                SearchRequest, SweepRequest,
                                request_from_wire)
from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.faults.plan import FaultPlan
from repro.program.ir import Program
from repro.sim.harness import HarnessConfig, SweepReport
from repro.sim.metrics import Comparison
from repro.sim.run import RunResult, RunSpec, run_simulation

__all__ = ["CompareRequest", "Experiment", "Result", "RunRequest",
           "SearchRequest", "SweepRequest", "SweepResult", "compare",
           "request_from_wire", "run", "search", "sweep"]

#: The documented names for the spec/result pair.
Experiment = RunSpec
Result = RunResult
SweepResult = SweepReport


def _default_config() -> MachineConfig:
    return MachineConfig.scaled_default().with_(interleaving="cache_line")


def run(experiment: Optional[Experiment] = None, *,
        program: Optional[Program] = None,
        config: Optional[MachineConfig] = None,
        **spec_kw) -> Result:
    """Execute one experiment end to end.

    Either pass a fully built :class:`Experiment`, or pass ``program=``
    (plus any :class:`Experiment` field as a keyword) and the facade
    assembles a :class:`~repro.api.requests.RunRequest` -- the same
    typed request the CLI and the experiment service build -- with the
    default scaled machine::

        repro.run(repro.Experiment(program=p, config=c, optimized=True))
        repro.run(program=p, optimized=True, seed=3)

    ``validate="metrics"`` / ``validate="strict"`` runs the
    :mod:`repro.validate` invariant sanitizer over the finished run and
    raises :class:`~repro.errors.ValidationError` on any breach.
    ``obs="spans"`` / ``obs="full"`` observes the run (:mod:`repro.obs`)
    and attaches the resulting bundle as ``result.obs``.
    ``engine="reference"`` selects the original every-access event loop
    instead of the default hit-filtered fast loop; the two are
    bit-identical (see docs/performance.md).
    ``store="dir"`` consults the persistent result store
    (:mod:`repro.store`) before simulating and persists the result
    after; a warm hit replays bit-identical metrics with zero
    simulation work (see docs/robustness.md).
    """
    if experiment is not None:
        if program is not None or config is not None or spec_kw:
            raise ValueError(
                "pass either a built Experiment or keyword fields, "
                "not both")
        return run_simulation(experiment)
    if program is None:
        raise ValueError("run() needs an Experiment or a program=")
    return RunRequest.from_objects(program=program, config=config,
                                   **spec_kw).execute()


def compare(program: Program,
            config: Optional[MachineConfig] = None, *,
            mapping: Optional[L2ToMCMapping] = None,
            page_policy: str = "auto",
            localize_offchip: bool = True) -> Comparison:
    """Baseline vs. optimized under one configuration -- the comparison
    every per-application bar of the paper's figures reports.  The two
    underlying :class:`Result`\\ s stay reachable through the returned
    comparison's ``base``/``opt`` metrics."""
    return CompareRequest.from_objects(
        program=program, config=config, mapping=mapping,
        page_policy=page_policy,
        localize_offchip=localize_offchip).execute()


def sweep(program: Program, *,
          config: Optional[MachineConfig] = None,
          workers: int = 1,
          hardened: bool = False,
          checkpoint: Optional[str] = None,
          harness: Optional[HarnessConfig] = None,
          fault_plan: Optional[FaultPlan] = None,
          seed: int = 0,
          validate: str = "off",
          obs: str = "off",
          engine: str = "fast",
          store: Optional[str] = None,
          progress: Optional[Callable] = None,
          max_points: Optional[int] = None,
          batch: Optional[int] = None,
          shm: Optional[bool] = None,
          **axes: Iterable) -> SweepResult:
    """Run a cartesian configuration sweep and return its
    :class:`SweepResult`.

    Axes are keyword lists (``mapping=["M1", "M2"], num_mcs=[4, 8]``;
    see :data:`repro.sim.executor.CONFIG_AXES`).  ``workers=N`` runs
    grid points on a process pool, bit-identical to serial.

    The plain engine memoizes and raises on failure; requesting
    ``hardened=True`` -- implied by ``checkpoint``, ``harness`` or
    ``max_points`` -- runs every point under the timeout/retry/
    checkpoint harness instead, collecting failures as rows in
    ``result.failures``.

    ``validate`` applies the :mod:`repro.validate` level to every run in
    the sweep; under the hardened engine a validation breach becomes a
    failure row (kind ``validation``) instead of aborting the sweep.

    ``obs`` applies the :mod:`repro.obs` level to every run; everything
    observed comes back merged as ``result.obs``, ready for the
    exporters (one Chrome trace with per-run lanes).  ``progress`` is
    the periodic reporting hook: under the hardened engine it receives
    ``(wave_index, done, failed, total)`` after every checkpoint wave,
    under the plain engine each completed
    :class:`~repro.sim.executor.PointOutcome`.

    ``engine`` selects the event-loop implementation for every run
    (``"fast"``, the default, or ``"reference"``); results are
    bit-identical either way.

    ``store`` names a persistent result-store directory
    (:mod:`repro.store`): every run in the sweep replays from it when
    a record exists and persists its result otherwise, and hardened
    sweeps additionally resume completed rows from it across
    processes.  Results are bit-identical with the store on or off;
    ``result.store_hits`` / ``result.store_misses`` report the
    traffic.

    ``batch`` overrides the work-stealing batch size and ``shm``
    forces the shared artifact plane on/off (``None`` = auto); both
    are operational knobs of :mod:`repro.sim.executor` -- they shape
    scheduling, never results -- so like ``progress`` they stay out of
    the wire request.
    """
    request = SweepRequest.from_objects(
        program=program, config=config, axes=axes, workers=workers,
        hardened=hardened, fault_plan=fault_plan, seed=seed,
        validate=validate, obs=obs, engine=engine, store=store)
    return request.execute(progress=progress, checkpoint=checkpoint,
                           harness=harness, max_points=max_points,
                           batch=batch, shm=shm)


def search(program: Program,
           config: Optional[MachineConfig] = None,
           **search_kw):
    """Search the MC-placement / mapping / interleaving space for
    ``program`` and return a :class:`repro.search.SearchResult`.

    A thin shim over :class:`~repro.api.requests.SearchRequest` (the
    same typed request the CLI ``search`` verb and the experiment
    service build): candidates are screened with the analytic cost
    engine (``engine="analytic"``, see docs/search.md), the best
    ``top_k`` survive, and the frontier is re-simulated bit-exactly
    with ``engine="fast"``.  Keywords mirror
    :func:`repro.search.run_search` (``mode``, ``placements``,
    ``mappings``, ``interleavings``, ``top_k``, ``steps``, ``seed``,
    ``resimulate``, ``obs``)::

        result = repro.search(program, top_k=4, placements="perimeter",
                              mode="anneal", seed=7)
        print(result.to_csv())

    Fully seeded: equal arguments yield byte-identical frontier CSV.
    ``workers=N`` fans the frontier re-simulation out to a process
    pool (an operational knob, not part of the request identity); the
    CSV stays byte-identical.
    """
    workers = search_kw.pop("workers", 1)
    return SearchRequest.from_objects(program=program, config=config,
                                      **search_kw).execute(
                                          workers=workers)
