"""Typed, versioned experiment requests: the one request vocabulary.

Every way of asking this system for work -- the keyword facade
(:func:`repro.api.run`), the CLI, and the experiment service's wire
protocol (:mod:`repro.serve`) -- constructs the same three dataclasses:

* :class:`RunRequest` -- one simulated execution.
* :class:`SweepRequest` -- a cartesian configuration sweep.
* :class:`CompareRequest` -- the baseline-vs-optimized pair.
* :class:`SearchRequest` -- a design-space placement search
  (analytic screen + bit-exact frontier re-simulation).

Each request has a canonical JSON codec (``to_wire``/``from_wire``,
``to_json``/``from_json``) versioned by ``schema_version``
(:data:`SCHEMA_VERSION`).  Decoding is strict: a missing or wrong
version, an unknown field, a mistyped value, or a vocabulary violation
raises :class:`~repro.errors.RequestError` naming the offender --
never a bare ``TypeError`` three layers down.

Identity is inherited, not reinvented: a request resolves to the same
:class:`~repro.sim.run.RunSpec` objects the in-process facade builds,
so ``request.key()`` *is* the memo/store key
(:meth:`RunSpec.key() <repro.sim.run.RunSpec.key>`).  A run submitted
over HTTP, replayed from a checkpoint, and memoized inside a sweep all
agree on what "the same experiment" means.

Requests are also usable purely in process: attach in-memory objects
(a built :class:`~repro.program.ir.Program`, a
:class:`~repro.arch.config.MachineConfig`, a custom mapping) via
:meth:`from_objects` -- those slots never travel on the wire.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import (Callable, ClassVar, Dict, List, Mapping, Optional,
                    Tuple, Type, Union)

from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.errors import RequestError
from repro.faults.plan import FaultPlan
from repro.obs.data import OBS_LEVELS
from repro.program.ir import Program
from repro.search import (INTERLEAVINGS, PLACEMENT_POOLS,
                          SEARCH_MODES)
from repro.sim.executor import (MAPPING_PRESETS, grid_settings,
                                point_specs, resolve_mapping,
                                validate_axes)
from repro.sim.harness import HardenedSweep, HarnessConfig, SweepReport
from repro.sim.metrics import Comparison
from repro.sim.run import (ENGINES, PAGE_POLICIES, RunResult, RunSpec,
                           run_simulation)
from repro.sim.serialize import point_key
from repro.sim.sweep import Sweep
from repro.validate import VALIDATE_LEVELS

__all__ = ["CompareRequest", "REQUEST_KINDS", "RunRequest",
           "SCHEMA_VERSION", "SearchRequest", "SweepRequest",
           "request_from_wire"]

#: Wire-format version.  Bump on incompatible schema changes; decoders
#: reject every version they do not speak, precisely.
SCHEMA_VERSION = 1

#: MachineConfig field names a request's ``config`` dict may override.
CONFIG_FIELDS = frozenset(f.name for f in
                          dataclasses.fields(MachineConfig))


def _attached():
    """An in-memory object slot: never serialized, never compared."""
    return field(default=None, repr=False, compare=False,
                 metadata={"wire": False})


def canonical_json(doc: Mapping[str, object]) -> str:
    """The one JSON rendering two peers agree on byte-for-byte."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _typed(name: str, value, types: tuple, none_ok: bool):
    """Type-check one wire value, diagnosing precisely."""
    if value is None:
        if none_ok:
            return None
        raise RequestError(f"field {name!r} must not be null")
    if isinstance(value, bool) and bool not in types:
        raise RequestError(f"field {name!r} must be "
                           f"{'/'.join(t.__name__ for t in types)}, "
                           f"got a bool")
    if not isinstance(value, types):
        raise RequestError(f"field {name!r} must be "
                           f"{'/'.join(t.__name__ for t in types)}, "
                           f"got {type(value).__name__}")
    return value


def _check_enum(name: str, value: object, options) -> None:
    if value not in options:
        raise RequestError(f"unknown {name} {value!r}; options: "
                           f"{', '.join(str(o) for o in options)}")


def _check_config_overrides(config: Mapping[str, object]) -> None:
    unknown = sorted(set(config) - CONFIG_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown machine-config field(s): {', '.join(unknown)} "
            f"(see repro.arch.config.MachineConfig)")


@dataclass
class _Request:
    """Shared machinery: the strict versioned codec and resolution
    helpers.  Subclasses declare ``KIND`` and ``_WIRE_TYPES``."""

    KIND: ClassVar[str] = ""
    _WIRE_TYPES: ClassVar[Dict[str, Tuple[tuple, bool]]] = {}

    # -- codec ---------------------------------------------------------------

    @classmethod
    def wire_fields(cls):
        return [f for f in dataclasses.fields(cls)
                if f.metadata.get("wire", True)]

    def to_wire(self) -> Dict[str, object]:
        """The request as a plain JSON-serializable dict, every wire
        field present (canonical form -- hash it, diff it, replay it)."""
        doc: Dict[str, object] = {"schema_version": SCHEMA_VERSION,
                                  "kind": self.KIND}
        for f in self.wire_fields():
            doc[f.name] = getattr(self, f.name)
        return doc

    def to_json(self) -> str:
        return canonical_json(self.to_wire())

    @classmethod
    def from_wire(cls, doc) -> "_Request":
        """Decode a wire dict, rejecting anything this build does not
        speak with a precise :class:`~repro.errors.RequestError`."""
        if not isinstance(doc, Mapping):
            raise RequestError(f"request body must be a JSON object, "
                               f"got {type(doc).__name__}")
        version = doc.get("schema_version")
        if version is None:
            raise RequestError(
                f"request is missing schema_version (this build "
                f"speaks version {SCHEMA_VERSION})")
        if version != SCHEMA_VERSION:
            raise RequestError(
                f"unsupported schema_version {version!r}; this build "
                f"speaks version {SCHEMA_VERSION}")
        kind = doc.get("kind")
        if kind is not None and kind != cls.KIND:
            raise RequestError(f"request kind {kind!r} does not match "
                               f"this endpoint ({cls.KIND!r})")
        names = [f.name for f in cls.wire_fields()]
        unknown = sorted(set(doc) - set(names) -
                         {"schema_version", "kind"})
        if unknown:
            raise RequestError(
                f"unknown request field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(names)}")
        kwargs = {}
        for f in cls.wire_fields():
            if f.name in doc:
                types, none_ok = cls._WIRE_TYPES[f.name]
                kwargs[f.name] = _typed(f.name, doc[f.name], types,
                                        none_ok)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "_Request":
        try:
            doc = json.loads(text)
        except (ValueError, TypeError) as err:
            raise RequestError(f"malformed JSON: {err}") from err
        return cls.from_wire(doc)

    # -- shared validation / resolution --------------------------------------

    def _check_workload(self) -> None:
        if self.workload and self.kernel_source:
            raise RequestError("set either workload= or kernel_source=,"
                               " not both")

    def _check_deadline(self) -> None:
        deadline = getattr(self, "deadline_ms", None)
        if deadline is None:
            return
        if isinstance(deadline, bool) or not isinstance(deadline, int):
            raise RequestError(
                f"deadline_ms must be an integer number of "
                f"milliseconds, got {deadline!r}")
        if deadline < 1:
            raise RequestError(
                f"deadline_ms must be >= 1 millisecond, got "
                f"{deadline}")

    def _build_program(self) -> Program:
        if self.program is not None:
            return self.program
        if self.kernel_source:
            # FrontendError (a ReproError) propagates typed: the kernel
            # is the caller's input, but the diagnostic is the
            # frontend's business.
            from repro.frontend.lower import compile_kernel
            return compile_kernel(self.kernel_source,
                                  name=self.kernel_name or "kernel")
        if not self.workload:
            raise RequestError("request names no workload (set "
                               "workload= or kernel_source=)")
        from repro.workloads import (DEMO_KERNELS, WORKLOADS,
                                     build_demo_kernel, build_workload)
        if self.workload in WORKLOADS:
            return build_workload(self.workload, self.scale)
        if self.workload in DEMO_KERNELS:
            return build_demo_kernel(self.workload, self.scale)
        raise RequestError(
            f"unknown workload {self.workload!r}; suite applications: "
            f"{', '.join(WORKLOADS)}; demo kernels: "
            f"{', '.join(DEMO_KERNELS)}")

    def _build_config(self) -> MachineConfig:
        if self.config_obj is not None:
            return self.config_obj
        overrides = dict(self.config)
        overrides.setdefault("interleaving", "cache_line")
        try:
            return MachineConfig.scaled_default().with_(**overrides)
        except (TypeError, ValueError) as err:
            raise RequestError(f"bad machine configuration: {err}") \
                from err

    def _build_fault_plan(self) -> Optional[FaultPlan]:
        attached = getattr(self, "fault_plan_obj", None)
        if attached is not None:
            return attached
        plan = getattr(self, "fault_plan", None)
        if plan is None:
            return None
        try:
            return FaultPlan.from_dict(plan)
        except (KeyError, TypeError, ValueError) as err:
            raise RequestError(f"bad fault plan: {err}") from err


@dataclass
class RunRequest(_Request):
    """One simulated execution, addressable by value.

    The wire twin of :class:`~repro.sim.run.RunSpec`: scalar fields
    travel as JSON; the program arrives by name (``workload``) or as
    kernel source, the machine as a ``config`` override dict, the
    mapping as a preset name.  ``key()`` equals the resolved spec's
    memo/store key, so the service's dedupe and the in-process memo
    agree exactly.
    """

    KIND = "run"

    workload: str = ""
    kernel_source: str = ""
    kernel_name: str = ""
    scale: float = 1.0
    config: Dict[str, object] = field(default_factory=dict)
    mapping: Optional[str] = None
    optimized: bool = False
    optimal: bool = False
    page_policy: str = "auto"
    localize_offchip: bool = True
    pages_per_mc: Optional[int] = None
    name: str = ""
    fault_plan: Optional[Dict[str, object]] = None
    seed: int = 0
    validate: str = "off"
    obs: str = "off"
    engine: str = "fast"
    store: Optional[str] = None
    #: End-to-end budget in milliseconds (service requests).  Transport
    #: policy, not experiment identity: excluded from ``key()`` because
    #: ``to_spec()`` never sees it.
    deadline_ms: Optional[int] = None

    # In-memory slots (never on the wire): a built Program, a full
    # MachineConfig, a custom mapping, a FaultPlan object.
    program: Optional[Program] = _attached()
    config_obj: Optional[MachineConfig] = _attached()
    mapping_obj: Optional[L2ToMCMapping] = _attached()
    fault_plan_obj: Optional[FaultPlan] = _attached()

    _WIRE_TYPES = {
        "workload": ((str,), False),
        "kernel_source": ((str,), False),
        "kernel_name": ((str,), False),
        "scale": ((int, float), False),
        "config": ((dict,), False),
        "mapping": ((str,), True),
        "optimized": ((bool,), False),
        "optimal": ((bool,), False),
        "page_policy": ((str,), False),
        "localize_offchip": ((bool,), False),
        "pages_per_mc": ((int,), True),
        "name": ((str,), False),
        "fault_plan": ((dict,), True),
        "seed": ((int,), False),
        "validate": ((str,), False),
        "obs": ((str,), False),
        "engine": ((str,), False),
        "store": ((str,), True),
        "deadline_ms": ((int,), True),
    }

    def __post_init__(self) -> None:
        self._check_workload()
        self._check_deadline()
        _check_enum("page policy", self.page_policy, PAGE_POLICIES)
        _check_enum("validation level", self.validate, VALIDATE_LEVELS)
        _check_enum("observability level", self.obs, OBS_LEVELS)
        _check_enum("engine", self.engine, ENGINES)
        _check_config_overrides(self.config)
        if self.mapping is not None and self.mapping_obj is None:
            _check_enum("mapping preset", self.mapping, MAPPING_PRESETS)

    @classmethod
    def from_objects(cls, program: Optional[Program] = None,
                     config: Optional[MachineConfig] = None,
                     **spec_kw) -> "RunRequest":
        """Build a request from in-memory objects -- the path the
        keyword facade (``repro.run(program=p, optimized=True)``)
        takes.  Object-valued ``mapping``/``fault_plan`` keywords land
        in the attached slots; unknown keywords raise ``TypeError``
        exactly as building a :class:`RunSpec` would.
        """
        kwargs: Dict[str, object] = {"program": program,
                                     "config_obj": config}
        wire_names = {f.name for f in cls.wire_fields()}
        for key, value in spec_kw.items():
            if key == "mapping" and isinstance(value, L2ToMCMapping):
                kwargs["mapping_obj"] = value
            elif key == "fault_plan" and isinstance(value, FaultPlan):
                kwargs["fault_plan_obj"] = value
            elif key in wire_names:
                kwargs[key] = value
            else:
                raise TypeError(f"run() got an unexpected keyword "
                                f"argument {key!r}")
        return cls(**kwargs)

    def to_spec(self) -> RunSpec:
        """Resolve to the canonical :class:`RunSpec` (program, machine
        and mapping built; the expensive parts are cached)."""
        resolved = getattr(self, "_resolved", None)
        if resolved is None:
            program = self._build_program()
            config = self._build_config()
            mapping = self.mapping_obj
            if mapping is None and self.mapping is not None:
                mapping = resolve_mapping(config, self.mapping)
            resolved = (program, config, mapping,
                        self._build_fault_plan())
            self._resolved = resolved
        program, config, mapping, plan = resolved
        return RunSpec(program=program, config=config, mapping=mapping,
                       optimized=self.optimized, optimal=self.optimal,
                       page_policy=self.page_policy,
                       localize_offchip=self.localize_offchip,
                       pages_per_mc=self.pages_per_mc, name=self.name,
                       fault_plan=plan, seed=self.seed,
                       validate=self.validate, obs=self.obs,
                       engine=self.engine, store=self.store)

    def key(self) -> str:
        """The memo/store identity: exactly ``to_spec().key()`` --
        wire key == memo key by construction."""
        return self.to_spec().key()

    def execute(self) -> RunResult:
        return run_simulation(self.to_spec())


@dataclass
class SweepRequest(_Request):
    """A cartesian configuration sweep, addressable by value.

    ``axes`` maps axis names (:data:`repro.sim.executor.CONFIG_AXES`
    plus ``mapping``) to value lists.  ``key()`` digests the canonical
    per-point keys, so two clients describing the same grid coalesce
    even though the sweep as a whole is not a single memo entry.
    """

    KIND = "sweep"

    workload: str = ""
    kernel_source: str = ""
    kernel_name: str = ""
    scale: float = 1.0
    config: Dict[str, object] = field(default_factory=dict)
    axes: Dict[str, List[object]] = field(default_factory=dict)
    workers: int = 1
    hardened: bool = False
    fault_plan: Optional[Dict[str, object]] = None
    seed: int = 0
    validate: str = "off"
    obs: str = "off"
    engine: str = "fast"
    store: Optional[str] = None
    deadline_ms: Optional[int] = None

    program: Optional[Program] = _attached()
    config_obj: Optional[MachineConfig] = _attached()
    fault_plan_obj: Optional[FaultPlan] = _attached()

    _WIRE_TYPES = {
        "workload": ((str,), False),
        "kernel_source": ((str,), False),
        "kernel_name": ((str,), False),
        "scale": ((int, float), False),
        "config": ((dict,), False),
        "axes": ((dict,), False),
        "workers": ((int,), False),
        "hardened": ((bool,), False),
        "fault_plan": ((dict,), True),
        "seed": ((int,), False),
        "validate": ((str,), False),
        "obs": ((str,), False),
        "engine": ((str,), False),
        "store": ((str,), True),
        "deadline_ms": ((int,), True),
    }

    def __post_init__(self) -> None:
        self._check_workload()
        self._check_deadline()
        _check_enum("validation level", self.validate, VALIDATE_LEVELS)
        _check_enum("observability level", self.obs, OBS_LEVELS)
        _check_enum("engine", self.engine, ENGINES)
        _check_config_overrides(self.config)
        if not isinstance(self.workers, int) or \
                isinstance(self.workers, bool) or self.workers < 1:
            raise RequestError(f"workers must be an integer >= 1, got "
                               f"{self.workers!r}")
        try:
            validate_axes(self.axes)
        except ValueError as err:
            raise RequestError(str(err)) from err
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)):
                raise RequestError(f"axis {axis!r} must map to a list "
                                   f"of values, got "
                                   f"{type(values).__name__}")

    @classmethod
    def from_objects(cls, program: Optional[Program] = None,
                     config: Optional[MachineConfig] = None,
                     axes: Optional[Mapping[str, List[object]]] = None,
                     **kw) -> "SweepRequest":
        """In-memory construction path (the ``repro.sweep`` facade)."""
        kwargs: Dict[str, object] = {"program": program,
                                     "config_obj": config,
                                     "axes": dict(axes or {})}
        wire_names = {f.name for f in cls.wire_fields()}
        for key, value in kw.items():
            if key == "fault_plan" and isinstance(value, FaultPlan):
                kwargs["fault_plan_obj"] = value
            elif key in wire_names:
                kwargs[key] = value
            else:
                raise TypeError(f"sweep() got an unexpected keyword "
                                f"argument {key!r}")
        return cls(**kwargs)

    def grid(self) -> List[Dict[str, object]]:
        """The grid points, in the canonical (sorted-axis, row-major)
        order every sweep uses."""
        return grid_settings(self.axes)

    def _resolve(self):
        resolved = getattr(self, "_resolved", None)
        if resolved is None:
            resolved = (self._build_program(), self._build_config(),
                        self._build_fault_plan())
            self._resolved = resolved
        return resolved

    def point_keys(self) -> List[str]:
        """The canonical per-point memo/checkpoint keys, grid order."""
        program, config, plan = self._resolve()
        keys = []
        for settings in self.grid():
            try:
                specs = point_specs(program, config, settings, plan,
                                    self.seed)
            except ValueError as err:  # e.g. unknown mapping preset
                raise RequestError(str(err)) from err
            keys.append(point_key(specs))
        return keys

    def key(self) -> str:
        """Identity of the whole sweep: a digest over the canonical
        point keys -- the same keys the memo, the checkpoints and the
        result store use, so wire identity and cache identity agree."""
        program, _, _ = self._resolve()
        digest = hashlib.sha1(
            "|".join(self.point_keys()).encode("utf-8")).hexdigest()
        safe = "".join(c if c.isalnum() or c in "._" else "_"
                       for c in program.name)
        return f"{safe}-sweep-{digest[:20]}"

    def execute(self, progress: Optional[Callable] = None,
                checkpoint: Optional[str] = None,
                harness: Optional[HarnessConfig] = None,
                max_points: Optional[int] = None,
                batch: Optional[int] = None,
                shm: Optional[bool] = None) -> SweepReport:
        """Run the sweep.  ``checkpoint``/``harness``/``max_points``
        imply the hardened engine, exactly as the facade documents.
        ``batch``/``shm`` are operational executor knobs (work-stealing
        batch size, shared-artifact plane) -- like ``progress`` they
        shape *how* the sweep runs, never what it computes, so they are
        execute-time parameters rather than wire fields."""
        program, config, plan = self._resolve()
        hardened = (self.hardened or checkpoint is not None
                    or harness is not None or max_points is not None)
        if hardened:
            return HardenedSweep(program, config, harness=harness,
                                 checkpoint=checkpoint, fault_plan=plan,
                                 seed=self.seed, workers=self.workers,
                                 validate=self.validate, obs=self.obs,
                                 engine=self.engine, store=self.store,
                                 batch=batch, shm=shm
                                 ).run(max_points=max_points,
                                       progress=progress, **self.axes)
        runner = Sweep(program, config, workers=self.workers,
                       fault_plan=plan, seed=self.seed,
                       validate=self.validate, obs=self.obs,
                       engine=self.engine, store=self.store,
                       batch=batch, shm=shm)
        points = runner.run(progress=progress, **self.axes)
        return SweepReport(rows=[point.row() for point in points],
                           points=list(points),
                           obs=runner.collected_obs(),
                           store_hits=runner.store_hits,
                           store_misses=runner.store_misses)


@dataclass
class CompareRequest(_Request):
    """Baseline vs. optimized under one configuration -- the
    comparison every per-application bar of the paper's figures
    reports, addressable by value."""

    KIND = "compare"

    workload: str = ""
    kernel_source: str = ""
    kernel_name: str = ""
    scale: float = 1.0
    config: Dict[str, object] = field(default_factory=dict)
    mapping: Optional[str] = None
    page_policy: str = "auto"
    localize_offchip: bool = True
    engine: str = "fast"
    store: Optional[str] = None
    deadline_ms: Optional[int] = None

    program: Optional[Program] = _attached()
    config_obj: Optional[MachineConfig] = _attached()
    mapping_obj: Optional[L2ToMCMapping] = _attached()

    _WIRE_TYPES = {
        "workload": ((str,), False),
        "kernel_source": ((str,), False),
        "kernel_name": ((str,), False),
        "scale": ((int, float), False),
        "config": ((dict,), False),
        "mapping": ((str,), True),
        "page_policy": ((str,), False),
        "localize_offchip": ((bool,), False),
        "engine": ((str,), False),
        "store": ((str,), True),
        "deadline_ms": ((int,), True),
    }

    def __post_init__(self) -> None:
        self._check_workload()
        self._check_deadline()
        _check_enum("page policy", self.page_policy, PAGE_POLICIES)
        _check_enum("engine", self.engine, ENGINES)
        _check_config_overrides(self.config)
        if self.mapping is not None and self.mapping_obj is None:
            _check_enum("mapping preset", self.mapping, MAPPING_PRESETS)

    @classmethod
    def from_objects(cls, program: Optional[Program] = None,
                     config: Optional[MachineConfig] = None,
                     mapping=None, **kw) -> "CompareRequest":
        kwargs: Dict[str, object] = {"program": program,
                                     "config_obj": config}
        if isinstance(mapping, L2ToMCMapping):
            kwargs["mapping_obj"] = mapping
        elif mapping is not None:
            kwargs["mapping"] = mapping
        wire_names = {f.name for f in cls.wire_fields()}
        for key, value in kw.items():
            if key not in wire_names:
                raise TypeError(f"compare() got an unexpected keyword "
                                f"argument {key!r}")
            kwargs[key] = value
        return cls(**kwargs)

    def specs(self) -> Tuple[RunSpec, RunSpec]:
        """The baseline/optimized pair, key-identical to the pair
        :func:`repro.sim.run.run_pair` builds."""
        resolved = getattr(self, "_resolved", None)
        if resolved is None:
            program = self._build_program()
            config = self._build_config()
            mapping = self.mapping_obj
            if mapping is None and self.mapping is not None:
                mapping = resolve_mapping(config, self.mapping)
            resolved = (program, config, mapping)
            self._resolved = resolved
        program, config, mapping = resolved
        base = RunSpec(program=program, config=config, mapping=mapping,
                       optimized=False, page_policy=self.page_policy,
                       engine=self.engine, store=self.store)
        opt = RunSpec(program=program, config=config, mapping=mapping,
                      optimized=True, page_policy=self.page_policy,
                      localize_offchip=self.localize_offchip,
                      engine=self.engine, store=self.store)
        return base, opt

    def key(self) -> str:
        return point_key(self.specs())

    def execute(self) -> Comparison:
        base, opt = self.specs()
        return Comparison(run_simulation(base).metrics,
                          run_simulation(opt).metrics)


@dataclass
class SearchRequest(_Request):
    """A design-space placement search, addressable by value.

    The wire twin of :func:`repro.search.run_search`: screen the
    placement/mapping/interleaving space analytically, keep the
    ``top_k`` frontier, re-simulate it bit-exactly.  ``placements``
    is a pool name (:data:`repro.search.PLACEMENT_POOLS`) or an
    explicit list of placement strings; ``mappings`` defaults to
    every preset valid for the machine.  The search is fully seeded:
    equal requests produce byte-identical frontier CSV.
    """

    KIND = "search"

    workload: str = ""
    kernel_source: str = ""
    kernel_name: str = ""
    scale: float = 1.0
    config: Dict[str, object] = field(default_factory=dict)
    mode: str = "auto"
    placements: Union[str, List[str]] = "named"
    mappings: Optional[List[str]] = None
    interleavings: List[str] = field(
        default_factory=lambda: list(INTERLEAVINGS))
    top_k: int = 4
    steps: int = 128
    seed: int = 0
    resimulate: bool = True
    obs: str = "off"
    deadline_ms: Optional[int] = None

    program: Optional[Program] = _attached()
    config_obj: Optional[MachineConfig] = _attached()

    _WIRE_TYPES = {
        "workload": ((str,), False),
        "kernel_source": ((str,), False),
        "kernel_name": ((str,), False),
        "scale": ((int, float), False),
        "config": ((dict,), False),
        "mode": ((str,), False),
        "placements": ((str, list), False),
        "mappings": ((list,), True),
        "interleavings": ((list,), False),
        "top_k": ((int,), False),
        "steps": ((int,), False),
        "seed": ((int,), False),
        "resimulate": ((bool,), False),
        "obs": ((str,), False),
        "deadline_ms": ((int,), True),
    }

    def __post_init__(self) -> None:
        self._check_workload()
        self._check_deadline()
        _check_enum("search mode", self.mode, SEARCH_MODES)
        _check_enum("observability level", self.obs, OBS_LEVELS)
        _check_config_overrides(self.config)
        if isinstance(self.placements, str) and \
                self.placements not in PLACEMENT_POOLS:
            raise RequestError(
                f"unknown placement pool {self.placements!r}; pools: "
                f"{', '.join(PLACEMENT_POOLS)} (or pass an explicit "
                f"list of placement strings)")
        if self.mappings is not None:
            for name in self.mappings:
                _check_enum("mapping preset", name, MAPPING_PRESETS)
        for mode in self.interleavings:
            _check_enum("interleaving", mode, INTERLEAVINGS)
        if not isinstance(self.top_k, int) or \
                isinstance(self.top_k, bool) or self.top_k < 1:
            raise RequestError(f"top_k must be an integer >= 1, got "
                               f"{self.top_k!r}")
        if not isinstance(self.steps, int) or \
                isinstance(self.steps, bool) or self.steps < 1:
            raise RequestError(f"steps must be an integer >= 1, got "
                               f"{self.steps!r}")

    @classmethod
    def from_objects(cls, program: Optional[Program] = None,
                     config: Optional[MachineConfig] = None,
                     **kw) -> "SearchRequest":
        """In-memory construction path (the ``repro.search`` facade)."""
        kwargs: Dict[str, object] = {"program": program,
                                     "config_obj": config}
        wire_names = {f.name for f in cls.wire_fields()}
        for key, value in kw.items():
            if key not in wire_names:
                raise TypeError(f"search() got an unexpected keyword "
                                f"argument {key!r}")
            kwargs[key] = value
        return cls(**kwargs)

    def key(self) -> str:
        """Identity of the whole search: a digest over the canonical
        wire form minus transport policy (``deadline_ms``), prefixed
        with the program name for humans."""
        resolved = getattr(self, "_resolved", None)
        if resolved is None:
            resolved = self._build_program()
            self._resolved = resolved
        doc = self.to_wire()
        doc.pop("deadline_ms", None)
        doc["program"] = resolved.name
        digest = hashlib.sha1(
            canonical_json(doc).encode("utf-8")).hexdigest()
        safe = "".join(c if c.isalnum() or c in "._" else "_"
                       for c in resolved.name)
        return f"{safe}-search-{digest[:20]}"

    def execute(self, workers: int = 1):
        """Run the search (a :class:`repro.search.SearchResult`).

        ``workers`` fans the frontier re-simulation out through the
        parallel executor; an operational knob (it never changes the
        result), so like the sweep's ``progress`` it is an
        execute-time parameter, not a wire field."""
        from repro.search import run_search
        program = self._build_program()
        config = self.config_obj
        if config is None:
            overrides = {k: v for k, v in self.config.items()}
            try:
                config = MachineConfig.scaled_default().with_(
                    **overrides)
            except (TypeError, ValueError) as err:
                raise RequestError(
                    f"bad machine configuration: {err}") from err
        placements = self.placements if isinstance(
            self.placements, str) else list(self.placements)
        try:
            return run_search(program, config, mode=self.mode,
                              placements=placements,
                              mappings=self.mappings,
                              interleavings=tuple(self.interleavings),
                              top_k=self.top_k, steps=self.steps,
                              seed=self.seed,
                              resimulate=self.resimulate,
                              workers=workers,
                              obs=self.obs)
        except ValueError as err:
            raise RequestError(str(err)) from err


#: Wire ``kind`` -> request class, for endpoint-agnostic decoding.
REQUEST_KINDS: Dict[str, Type[_Request]] = {
    RunRequest.KIND: RunRequest,
    SweepRequest.KIND: SweepRequest,
    CompareRequest.KIND: CompareRequest,
    SearchRequest.KIND: SearchRequest,
}


def request_from_wire(doc) -> Union[RunRequest, SweepRequest,
                                    CompareRequest]:
    """Decode any request by its ``kind`` field."""
    if not isinstance(doc, Mapping):
        raise RequestError(f"request body must be a JSON object, got "
                           f"{type(doc).__name__}")
    kind = doc.get("kind")
    if kind is None:
        raise RequestError(f"request is missing kind; one of: "
                           f"{', '.join(REQUEST_KINDS)}")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise RequestError(f"unknown request kind {kind!r}; one of: "
                           f"{', '.join(REQUEST_KINDS)}")
    return cls.from_wire(doc)
