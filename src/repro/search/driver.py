"""The search loop: analytic screen -> frontier -> bit-exact re-sim.

:func:`run_search` ties the subsystem together:

1. **Screen.** Every candidate the mode visits (exhaustive enumeration
   or seeded annealing, :mod:`repro.search.anneal`) is costed with
   ``engine="analytic"`` (:mod:`repro.search.analytic`) -- no event
   simulation, so thousands of candidates are affordable.  The
   compile-time mapping score (:mod:`repro.core.mapping_selection`)
   rides along as the documented tie-break, reusing the paper's
   Section 4 ranking seam.
2. **Frontier.** The best ``top_k`` screened candidates survive
   (:mod:`repro.search.frontier`), deterministically ordered.
3. **Re-simulate.** Each frontier entry is re-run bit-exactly with
   ``engine="fast"`` and the final ranking uses the *simulated*
   cycles; the analytic-vs-simulated error of each survivor is
   reported (and exported as the ``search.error_pct`` histogram).

Determinism: the screen is deterministic given ``(space, mode, seed)``
and the re-simulation is the bit-exact engine, so the same call yields
byte-identical CSV -- the property the CI ``search-smoke`` job pins.

Telemetry (``obs="full"``): ``search.candidates``,
``search.resimulated``, ``search.error_pct`` (histogram),
``search.accept_rate`` (anneal acceptance, percent gauge).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import MachineConfig
from repro.core.mapping_selection import score_mapping
from repro.obs.data import OBS_LEVELS, ObsData
from repro.obs.telemetry import TelemetryRegistry
from repro.obs.tracer import Tracer, current_tracer
from repro.program.ir import Program
from repro.search.anneal import anneal
from repro.search.frontier import Frontier
from repro.search.space import Candidate, CandidateSpace, INTERLEAVINGS

__all__ = ["SEARCH_MODES", "SearchResult", "run_search"]

#: ``mode=`` vocabulary: ``auto`` enumerates when the space is small
#: enough (``exhaustive_limit``) and anneals otherwise.
SEARCH_MODES = ("auto", "exhaustive", "anneal")

#: CSV schema of :meth:`SearchResult.to_csv`, in order.
CSV_COLUMNS = ("rank", "placement", "mapping", "interleaving",
               "analytic_cycles", "simulated_cycles", "error_pct",
               "score")


@dataclass
class SearchResult:
    """Everything one search produced, ready for CSV/JSON rendering.

    ``rows`` hold the re-ranked frontier (best first): placement /
    mapping / interleaving, the analytic estimate, the bit-exact
    simulated cycles (``None`` when ``resimulate=False``), the
    analytic-vs-simulated error in percent, and the compile-time
    mapping score used as the tie-break.
    """

    mode: str
    seed: int
    space_size: int
    candidates_evaluated: int
    rows: List[Dict[str, object]] = field(default_factory=list)
    acceptance_rate: Optional[float] = None
    obs: Optional[ObsData] = None

    @property
    def best(self) -> Optional[Dict[str, object]]:
        return self.rows[0] if self.rows else None

    def to_csv(self) -> str:
        """The frontier as canonical CSV (byte-stable for equal
        searches -- the determinism contract the CI smoke pins)."""
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(CSV_COLUMNS)
        for row in self.rows:
            writer.writerow(["" if row[c] is None else row[c]
                             for c in CSV_COLUMNS])
        return out.getvalue()

    def to_doc(self) -> Dict[str, object]:
        """A JSON-shaped summary (the CLI's ``--json`` rendering)."""
        return {"mode": self.mode, "seed": self.seed,
                "space_size": self.space_size,
                "candidates_evaluated": self.candidates_evaluated,
                "acceptance_rate": self.acceptance_rate,
                "rows": list(self.rows)}


def run_search(program: Program,
               config: Optional[MachineConfig] = None, *,
               mode: str = "auto",
               placements: object = "named",
               mappings: Optional[Sequence[str]] = None,
               interleavings: Sequence[str] = INTERLEAVINGS,
               top_k: int = 4,
               steps: int = 128,
               seed: int = 0,
               exhaustive_limit: int = 512,
               resimulate: bool = True,
               workers: int = 1,
               obs: str = "off") -> SearchResult:
    """Search the placement/mapping/interleaving space for ``program``.

    ``config`` supplies everything the candidates do not override
    (mesh shape, cache geometry, MC count...); by default the scaled
    paper machine.  See the module docstring for the loop; all
    randomness is seeded, so equal arguments give equal results.

    ``workers`` > 1 fans the frontier re-simulation out through the
    supervised work-stealing executor
    (:func:`repro.sim.executor.execute_runs`, sharing one artifact
    plane across the survivors); results -- and the CSV bytes -- are
    bit-identical to the serial loop.
    """
    from repro.sim.executor import execute_runs
    from repro.sim.run import RunSpec, run_simulation

    if mode not in SEARCH_MODES:
        raise ValueError(f"unknown search mode {mode!r}; modes: "
                         f"{', '.join(SEARCH_MODES)}")
    if obs not in OBS_LEVELS:
        raise ValueError(f"unknown observability level {obs!r}; "
                         f"levels: {', '.join(OBS_LEVELS)}")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if config is None:
        config = MachineConfig.scaled_default()

    space = CandidateSpace(config, placements, mappings, interleavings)
    size = space.size()
    if mode == "auto":
        mode = "exhaustive" if size <= max(exhaustive_limit, 1) \
            else "anneal"

    obs_data: Optional[ObsData] = None
    telemetry: Optional[TelemetryRegistry] = None
    tracer: Optional[Tracer] = None
    if obs != "off":
        telemetry = TelemetryRegistry() if obs == "full" else None
        obs_data = ObsData(level=obs, label=f"search:{program.name}",
                           telemetry=telemetry)
        tracer = Tracer(label=f"search:{program.name}")

    frontier = Frontier(top_k)
    cache: Dict[Candidate, Tuple[float, float]] = {}

    def evaluate(candidate: Candidate) -> Tuple[float, float]:
        cached = cache.get(candidate)
        if cached is not None:
            return cached
        cand_config = candidate.config(config)
        mapping = candidate.resolve_mapping(config)
        spec = RunSpec(program=program, config=cand_config,
                       mapping=mapping, engine="analytic", seed=seed)
        cost = run_simulation(spec).metrics.exec_time
        score = score_mapping(mapping, program, cand_config).total
        cache[candidate] = (cost, score)
        frontier.offer(candidate, cost, score)
        return cost, score

    def screen() -> Optional[float]:
        if mode == "exhaustive":
            for candidate in space.enumerate():
                evaluate(candidate)
            return None
        result = anneal(space, lambda c: evaluate(c)[0], seed=seed,
                        steps=steps)
        return result.acceptance_rate

    def resim() -> List[Dict[str, object]]:
        entries = frontier.entries()
        metrics_by_entry: List[object] = []
        if resimulate and entries:
            specs = []
            for entry in entries:
                cand_config = entry.candidate.config(config)
                mapping = entry.candidate.resolve_mapping(config)
                specs.append(RunSpec(program=program,
                                     config=cand_config,
                                     mapping=mapping, engine="fast",
                                     seed=seed))
            metrics_by_entry = execute_runs(specs, workers=workers)
        rows: List[Dict[str, object]] = []
        for position, entry in enumerate(entries):
            row: Dict[str, object] = {
                "placement": entry.candidate.placement,
                "mapping": entry.candidate.mapping,
                "interleaving": entry.candidate.interleaving,
                "analytic_cycles": entry.cost,
                "simulated_cycles": None,
                "error_pct": None,
                "score": entry.score,
            }
            if resimulate:
                simulated = metrics_by_entry[position].exec_time
                error = (abs(entry.cost - simulated)
                         / max(simulated, 1.0) * 100.0)
                row["simulated_cycles"] = simulated
                row["error_pct"] = error
                if telemetry is not None:
                    telemetry.counter("search.resimulated").inc()
                    telemetry.histogram("search.error_pct"
                                        ).observe(error)
            rows.append(row)
        # Final ranking: bit-exact cycles when available, analytic
        # otherwise; mapping score then the candidate's total order
        # break ties -- same discipline as the frontier itself.
        rows.sort(key=lambda r: (
            r["simulated_cycles"] if r["simulated_cycles"] is not None
            else r["analytic_cycles"],
            r["score"], r["placement"], r["mapping"],
            r["interleaving"]))
        for rank, row in enumerate(rows, start=1):
            row["rank"] = rank
        return rows

    if tracer is not None:
        outer = current_tracer()
        with tracer.activate():
            with tracer.span("search", cat="search", mode=mode,
                             space=size, top_k=top_k, seed=seed):
                with tracer.span("search.screen", cat="search"):
                    acceptance = screen()
                with tracer.span("search.resimulate", cat="search",
                                 entries=len(frontier)):
                    rows = resim()
        obs_data.spans = tracer.spans()
        obs_data.meta["mode"] = mode
        obs_data.meta["space_size"] = size
        if outer is not None:
            outer.absorb(obs_data.spans)
    else:
        acceptance = screen()
        rows = resim()

    if telemetry is not None:
        telemetry.counter("search.candidates").inc(len(cache))
        if acceptance is not None:
            telemetry.gauge("search.accept_rate"
                            ).set(acceptance * 100.0)

    return SearchResult(mode=mode, seed=seed, space_size=size,
                        candidates_evaluated=len(cache), rows=rows,
                        acceptance_rate=acceptance, obs=obs_data)
