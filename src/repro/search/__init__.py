"""Design-space exploration: analytic screening + placement search.

The subsystem has four layers, bottom up:

* :mod:`repro.search.analytic` -- the ``engine="analytic"`` cost
  model: :class:`~repro.sim.run.RunMetrics`-shaped estimates without
  event simulation (documented error bound, see ``docs/search.md``).
* :mod:`repro.search.space` -- :class:`Candidate` /
  :class:`CandidateSpace`: deterministic enumeration and seeded
  sampling over MC placements, L2-to-MC mappings and interleavings.
* :mod:`repro.search.frontier` / :mod:`repro.search.anneal` -- the
  keep-top-K frontier and the seeded simulated-annealing walk.
* :mod:`repro.search.driver` -- :func:`run_search`: screen
  analytically, keep the frontier, re-simulate it bit-exactly.

Public surface: :func:`repro.api.search` and the ``repro-cli search``
verb wrap :func:`run_search`; ``SearchRequest``
(:mod:`repro.api.requests`) is its wire twin.

The analytic module is *not* imported here: ``sim.run`` imports it
lazily on the first ``engine="analytic"`` dispatch, and importing it
from this package init would cycle back through ``sim``.
"""

from repro.search.anneal import AnnealResult, anneal
from repro.search.driver import (SEARCH_MODES, SearchResult,
                                 run_search)
from repro.search.frontier import Frontier, FrontierEntry
from repro.search.space import (Candidate, CandidateSpace,
                                INTERLEAVINGS, PLACEMENT_POOLS)

__all__ = ["AnnealResult", "Candidate", "CandidateSpace", "Frontier",
           "FrontierEntry", "INTERLEAVINGS", "PLACEMENT_POOLS",
           "SEARCH_MODES", "SearchResult", "anneal", "run_search"]
