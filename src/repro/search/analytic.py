"""The ``engine="analytic"`` tier: cycles estimated without events.

Full simulation replays every access through a global event heap; this
module estimates the same :class:`~repro.sim.metrics.RunMetrics` from
three closed-form ingredients, in the spirit of analytic NoC placement
studies (Tootaghaj & Farhat; see PAPERS.md):

1. **Per-thread miss profiles.**  The trace/memo machinery
   (:mod:`repro.sim.memo`) supplies per-thread virtual/physical traces;
   a single LRU replay -- the same list operations
   :class:`~repro.cache.cache.SetAssociativeCache` performs -- counts
   L1 hits, L2 hits, and L2 misses, and records each miss's physical
   address.  Classification depends only on the trace and the cache
   geometry, *not* on MC placement or the L2-to-MC mapping, so one
   cached profile screens thousands of placement candidates
   (:data:`profile_cache`).
2. **Route hop distributions.**  Every miss's network legs are costed
   at the NoC's zero-load latency (``hops * hop_latency`` plus the
   critical-word tail -- exactly
   :meth:`repro.noc.network.Network.latency_estimate`), from Manhattan
   distances on the mesh.
3. **An M/M/1-style queue model per MC.**  Each controller is a shared
   data channel in front of banked DRAM; utilization is derived from
   the request count and the estimated execution time, giving the
   queue wait ``rho / (1 - rho) * service`` per server (channel, banks,
   and the MC's ingress links).  Execution time and utilization depend
   on each other, so the estimate iterates to a fixed point (damped;
   a handful of rounds suffice).

The estimate is *deliberately not bit-exact*: access classification and
per-thread hit cycles are exact (``total_accesses``/``l1_hits``/
``l2_hits`` match the reference engine to the integer), but contention
is modeled, not simulated.  ``tests/test_search_analytic.py`` enforces
the documented error bound -- median absolute ``exec_time`` error
across the workload suite <= 15% vs ``engine="reference"`` (see
docs/search.md).  Because estimates are not bit-identical,
``RunSpec.key()`` marks analytic runs distinctly and
:func:`repro.sim.run.run_simulation` never consults or fills the
persistent result store for them.

Scope: private-L2 organizations with one thread per core and no fault
plan (the same shape the fast engine's replay exploits); anything else
raises a precise ``ValueError`` instead of returning a silently wrong
estimate.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.config import CACHE_LINE_INTERLEAVING
from repro.cache.cache import SetAssociativeCache, set_indices
from repro.memsys.address import AddressMap
from repro.obs.data import ObsData
from repro.obs.telemetry import TelemetryRegistry
from repro.obs.tracer import Tracer, current_tracer, obs_span
from repro.sim import memo
from repro.sim.metrics import RunMetrics

#: Directory decision latency -- kept equal to the simulator's constant
#: (imported lazily in code to avoid the run.py <-> search cycle).
_DIRECTORY_LATENCY = 2

#: Queue-model knobs.  Utilization is clamped below 1 (an open M/M/1
#: diverges there; the simulated system is closed -- a blocking core
#: has at most one miss outstanding -- so waits stay finite), and the
#: fixed point is damped for monotone convergence.
RHO_MAX = 0.85
FIXED_POINT_ROUNDS = 24
FIXED_POINT_TOL = 0.01
DAMPING = 0.5

#: Time windows the contention model bins misses into (by fractional
#: position in each thread's stream -- a lockstep time proxy).  More
#: bins resolve sharper miss phases; fewer smooth sparse traces.
TIME_BINS = 64

#: Calibration of the queue terms against ``engine="reference"`` on the
#: workload suite (tests/test_search_analytic.py enforces the resulting
#: error bound; docs/search.md records the calibration run).  1.0 =
#: the raw M/D/1 residual-wait formula; 0.5 compensates for waits the
#: formula double-counts across a wormhole route's pipelined links and
#: across the channel/bank stages of one controller.
LINK_WAIT_SCALE = 0.5
MC_WAIT_SCALE = 0.5

#: Process-global LRU of miss profiles: candidates that share traces and
#: cache geometry (every MC placement / mapping of one program, for
#: baseline runs) pay the replay once.
profile_cache = memo.ArtifactCache(capacity=8)


def supported(spec) -> Optional[str]:
    """Why ``spec`` cannot be estimated analytically (None = it can)."""
    config = spec.config
    if config.shared_l2:
        return "shared-L2 organizations are not modeled analytically"
    if config.model_writes:
        return ("write invalidations mutate remote caches mid-stream; "
                "the analytic replay is per-thread")
    if config.track_phases:
        return "per-nest phase accounting needs the event loop"
    if config.threads_per_core != 1:
        return ("threads sharing a node's caches interleave in global "
                "time order; the analytic replay is per-thread")
    if spec.fault_plan is not None and not spec.fault_plan.empty:
        return "fault plans degrade the fabric dynamically; simulate"
    if spec.validate != "off":
        return ("validation audits simulated artifacts; an estimate "
                "has none (use engine=\"fast\" or \"reference\")")
    return None


def _check_supported(spec) -> None:
    reason = supported(spec)
    if reason is not None:
        raise ValueError(f"engine=\"analytic\" cannot estimate this "
                         f"run: {reason}")


class MissProfile:
    """One trace set's classification, shared across candidates.

    Misses are stored flattened in (thread, program-order) order so
    per-candidate costing is pure NumPy indexing.
    """

    __slots__ = ("num_threads", "accesses", "l1_hits", "l2_hits",
                 "misses", "gap_sum", "miss_thread", "miss_paddr",
                 "miss_owner", "miss_pos", "page_fallbacks")

    def __init__(self, num_threads: int):
        self.num_threads = num_threads
        self.accesses = np.zeros(num_threads, dtype=np.int64)
        self.l1_hits = np.zeros(num_threads, dtype=np.int64)
        self.l2_hits = np.zeros(num_threads, dtype=np.int64)
        self.misses = np.zeros(num_threads, dtype=np.int64)
        self.gap_sum = np.zeros(num_threads, dtype=np.int64)
        self.miss_thread: Optional[np.ndarray] = None  # int64, per miss
        self.miss_paddr: Optional[np.ndarray] = None   # int64, per miss
        #: Thread id already caching the missed line (-1 = none): the
        #: replayed directory, for the cache-to-cache transfer path.
        self.miss_owner: Optional[np.ndarray] = None
        #: Access index of each miss within its thread's stream -- the
        #: time proxy the windowed contention model bins by.
        self.miss_pos: Optional[np.ndarray] = None
        self.page_fallbacks = 0


def _policy_fingerprint(spec) -> Tuple:
    """What of the page-allocation policy the physical miss addresses
    depend on.  Sequential/identity translation ignores the mapping;
    first-touch and MC-aware read it (and first-touch the seed too)."""
    config = spec.config
    if config.interleaving == CACHE_LINE_INTERLEAVING:
        return ("identity",)
    policy = spec.page_policy
    if policy == "auto":
        policy = "mc_aware" if spec.optimized else "default"
    if policy == "default":
        return ("sequential",)
    from repro.sim.run import _mapping_token
    token = json.dumps(_mapping_token(spec.resolved_mapping()),
                       sort_keys=True, default=str)
    if policy == "first_touch":
        return ("first_touch", spec.seed, token)
    return ("mc_aware", token)


def _profile_key(spec) -> str:
    config = spec.config
    payload = {
        "trace": memo.trace_key(spec),
        "caches": (config.l1_size, config.l1_line, config.l1_ways,
                   config.l2_size, config.l2_ways),
        "policy": _policy_fingerprint(spec),
        "pages_per_mc": spec.pages_per_mc,
    }
    return "analytic:" + hashlib.sha1(
        json.dumps(payload, sort_keys=True, default=str)
        .encode("utf-8")).hexdigest()


def _build_profile(spec) -> MissProfile:
    """Front half of :func:`repro.sim.run._execute` (memo-shared), then
    one per-thread LRU replay."""
    from repro.osmodel.allocation import IdentityPolicy, PhysicalMemory
    from repro.osmodel.page_table import PageTable, translate_traces
    from repro.sim.run import _make_policy

    config = spec.config
    mapping = spec.resolved_mapping()
    num_threads = config.num_cores * config.threads_per_core

    transformation, layouts, transformed = memo.compiled(spec)
    space, bases, traces = memo.placed_traces(spec, layouts)
    vtraces = [t.vaddrs for t in traces]
    gaps = [t.gaps for t in traces]

    hints = space.desired_mc_hints(layouts) if transformed else {}
    policy = _make_policy(spec, mapping, hints)
    pages_per_mc = spec.pages_per_mc
    if pages_per_mc is None:
        total_pages = -(-space.footprint_bytes // config.page_size)
        pages_per_mc = max(16, 4 * (total_pages // config.num_mcs + 1))
    memory = PhysicalMemory(config.num_mcs, pages_per_mc)
    table = PageTable(config.page_size, memory, policy)
    cores = mapping.num_threads
    thread_cores = [mapping.core_order[t % cores]
                    for t in range(num_threads)]
    if isinstance(policy, IdentityPolicy):
        ptraces = vtraces
    else:
        with obs_span("os.translate", cat="os"):
            ptraces = translate_traces(vtraces, table, thread_cores,
                                       seed=spec.seed)

    prof = MissProfile(num_threads)
    prof.page_fallbacks = getattr(policy, "fallbacks", 0)
    miss_thread: List[np.ndarray] = []
    miss_paddr: List[np.ndarray] = []
    miss_pos: List[np.ndarray] = []
    #: Per miss, in eventual flat (thread-major) order:
    #: (access index, tid, L2 line, evicted L2 line or -1).
    events: List[Tuple[int, int, int, int]] = []

    with obs_span("analytic.replay", cat="sim", threads=num_threads):
        for tid in range(num_threads):
            v = np.asarray(vtraces[tid], dtype=np.int64)
            n = int(v.size)
            prof.accesses[tid] = n
            prof.gap_sum[tid] = int(
                np.asarray(gaps[tid], dtype=np.int64).sum()) if n else 0
            if not n:
                continue
            np_l1 = v // config.l1_line
            np_l2 = v // config.l2_line
            l1_lines = np_l1.tolist()
            l2_lines = np_l2.tolist()
            l1 = SetAssociativeCache(config.l1_size, config.l1_line,
                                     config.l1_ways)
            l2 = SetAssociativeCache(config.l2_size, config.l2_line,
                                     config.l2_ways)
            idx1 = set_indices(l1_lines, l1.num_sets, arr=np_l1)
            idx2 = set_indices(l2_lines, l2.num_sets, arr=np_l2)
            sets1, ways1 = l1.sets, l1.ways
            sets2, ways2 = l2.sets, l2.ways
            pos: List[int] = []
            pos_append = pos.append
            event_append = events.append
            h1 = h2 = 0
            for i in range(n):
                a1 = l1_lines[i]
                w1 = sets1[idx1[i]]
                if a1 in w1:
                    if w1[0] != a1:
                        w1.remove(a1)
                        w1.insert(0, a1)
                    h1 += 1
                    continue
                a2 = l2_lines[i]
                w2 = sets2[idx2[i]]
                if a2 in w2:
                    if w2[0] != a2:
                        w2.remove(a2)
                        w2.insert(0, a2)
                    h2 += 1
                else:
                    pos_append(i)
                    w2.insert(0, a2)
                    evicted = w2.pop() if len(w2) > ways2 else -1
                    event_append((i, tid, a2, evicted))
                w1.insert(0, a1)
                if len(w1) > ways1:
                    w1.pop()
            prof.l1_hits[tid] = h1
            prof.l2_hits[tid] = h2
            prof.misses[tid] = len(pos)
            if pos:
                p = np.asarray(ptraces[tid], dtype=np.int64)
                idx = np.asarray(pos, dtype=np.int64)
                miss_paddr.append(p[idx])
                miss_pos.append(idx)
                miss_thread.append(np.full(len(pos), tid,
                                           dtype=np.int64))

    if miss_thread:
        prof.miss_thread = np.concatenate(miss_thread)
        prof.miss_paddr = np.concatenate(miss_paddr)
        prof.miss_pos = np.concatenate(miss_pos)
        prof.miss_owner = _replay_directory(prof, events)
    else:
        prof.miss_thread = np.zeros(0, dtype=np.int64)
        prof.miss_paddr = np.zeros(0, dtype=np.int64)
        prof.miss_pos = np.zeros(0, dtype=np.int64)
        prof.miss_owner = np.zeros(0, dtype=np.int64)
    for arr in (prof.miss_thread, prof.miss_paddr, prof.miss_owner,
                prof.miss_pos):
        arr.setflags(write=False)
    return prof


def _replay_directory(prof: MissProfile,
                      events: List[Tuple[int, int, int, int]]
                      ) -> np.ndarray:
    """Replay exact sharer tracking over the recorded L2 fills.

    ``events`` holds one ``(access index, tid, line, evicted line)``
    tuple per L2 miss, in flat (thread-major) order.  The event loops
    interleave threads in global time; since suite threads run the same
    kernel in near-lockstep (one access per ``gap``, staggered starts),
    the access index ordered by ``(i, tid)`` is a faithful time proxy.
    Each miss queries the sharer set before its own fill, the fill's
    eviction removes the evicting thread, then the filler is added --
    the exact sequence of ``SystemSimulator._step_private``.  The
    recorded owner is the lowest sharer *thread*; the simulator picks
    the lowest sharer *node*, so under mappings that permute nodes the
    transfer legs may differ by a few hops (the on-chip path is
    zero-load, so the error is bounded and small).
    """
    owner = np.full(len(events), -1, dtype=np.int64)
    order = sorted(range(len(events)), key=lambda k: events[k][:2])
    sharers: Dict[int, set] = {}
    for k in order:
        _, tid, line, evicted = events[k]
        holders = sharers.get(line)
        if holders:
            others = holders - {tid}
            if others:
                owner[k] = min(others)
        if evicted >= 0:
            held = sharers.get(evicted)
            if held is not None:
                held.discard(tid)
                if not held:
                    del sharers[evicted]
        sharers.setdefault(line, set()).add(tid)
    return owner


def miss_profile(spec) -> MissProfile:
    """The (cached) miss profile for ``spec``'s trace identity."""
    key = None
    if memo.enabled():
        key = _profile_key(spec)
        hit = profile_cache.get(key)
        if hit is not None:
            return hit
    prof = _build_profile(spec)
    if key is not None:
        profile_cache.put(key, prof)
    return prof


def _mesh_coords(mesh) -> Tuple[np.ndarray, np.ndarray]:
    nodes = np.arange(mesh.num_nodes, dtype=np.int64)
    return nodes % mesh.width, nodes // mesh.width


#: (width, height) -> (offsets, lens, flat_links): every XY route,
#: stored contiguously and indexed by pair id ``src * N + dst``.
_routes_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray,
                                           np.ndarray]] = {}


def _flat_routes(mesh) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All deterministic XY routes (exactly what
    :meth:`repro.arch.topology.Mesh.route` produces), flattened: pair
    ``p = src * N + dst`` crosses directed links
    ``flat[offsets[p]:offsets[p] + lens[p]]``.  Candidate-independent,
    cached per mesh shape for the whole screen."""
    key = (mesh.width, mesh.height)
    cached = _routes_cache.get(key)
    if cached is None:
        n = mesh.num_nodes
        lens = np.zeros(n * n, dtype=np.int64)
        chunks: List[List[int]] = []
        for src in range(n):
            for dst in range(n):
                links = mesh.route(src, dst) if src != dst else []
                lens[src * n + dst] = len(links)
                chunks.append(links)
        offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
        flat = np.asarray([l for c in chunks for l in c],
                          dtype=np.int64)
        for arr in (offsets, lens, flat):
            arr.setflags(write=False)
        cached = (offsets, lens, flat)
        _routes_cache[key] = cached
    return cached


def _expand_legs(mesh, legs) -> Tuple[np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray,
                                      np.ndarray, int]:
    """Expand message groups into one row per (group, route link).

    ``legs`` is a list of ``(threads, bins, pairs, counts)`` message
    groups (see the grouping comment in :func:`analytic_metrics`),
    concatenated in leg order.  Returns ``(msg_idx, key, t_exp, b_exp,
    c_exp, num_groups)`` where ``key = bin * num_links + link`` --
    everything static per candidate, so each fixed-point round only
    reweights by ``inv_dur``.
    """
    offsets, lens, flat = _flat_routes(mesh)
    threads = np.concatenate([l[0] for l in legs])
    bins = np.concatenate([l[1] for l in legs])
    pairs = np.concatenate([l[2] for l in legs])
    count = np.concatenate([l[3] for l in legs])
    route_len = lens[pairs]
    total = int(route_len.sum())
    msg_idx = np.repeat(np.arange(pairs.size), route_len)
    ends = np.cumsum(route_len)
    within = np.arange(total) - (ends - route_len)[msg_idx]
    link_exp = flat[offsets[pairs][msg_idx] + within]
    b_exp = bins[msg_idx]
    key = b_exp * mesh.num_links + link_exp
    return (msg_idx, key, threads[msg_idx], b_exp, count[msg_idx],
            pairs.size)


def _row_hit_mask(thread: np.ndarray, mc: np.ndarray, bank: np.ndarray,
                  row: np.ndarray, window: int) -> np.ndarray:
    """Approximate FR-FCFS row batching: a miss is a row hit when the
    same (mc, bank, row) appears among the same thread's previous
    ``window`` misses -- the open row would still be inside the
    controller's scheduling window."""
    n = thread.size
    hit = np.zeros(n, dtype=bool)
    for k in range(1, min(window, n - 1) + 1 if n > 1 else 0):
        same = ((thread[k:] == thread[:-k]) & (mc[k:] == mc[:-k])
                & (bank[k:] == bank[:-k]) & (row[k:] == row[:-k]))
        hit[k:] |= same
    return hit


def analytic_metrics(spec) -> RunMetrics:
    """Estimate :class:`RunMetrics` for ``spec`` without event
    simulation.  See the module docstring for the model."""
    _check_supported(spec)
    config = spec.config
    mapping = spec.resolved_mapping()
    mesh = mapping.mesh
    prof = miss_profile(spec)
    num_threads = prof.num_threads
    num_mcs = config.num_mcs

    m = RunMetrics(name=spec.label())
    m.total_accesses = int(prof.accesses.sum())
    m.l1_hits = int(prof.l1_hits.sum())
    m.l2_hits = int(prof.l2_hits.sum())
    m.mc_node_requests = np.zeros((num_mcs, config.num_cores),
                                  dtype=np.int64)

    cores = mapping.num_threads
    thread_nodes = np.asarray(
        [mapping.core_order[t % cores] for t in range(num_threads)],
        dtype=np.int64)
    mc_nodes = np.asarray(mapping.mc_nodes, dtype=np.int64)
    xs, ys = _mesh_coords(mesh)
    # node x MC Manhattan distances (hops == links traversed)
    dist_nm = (np.abs(xs[:, None] - xs[mc_nodes][None, :])
               + np.abs(ys[:, None] - ys[mc_nodes][None, :]))

    nmiss = int(prof.miss_thread.size)
    _, layouts_unused, transformed = memo.compiled(spec)
    overhead = config.transform_overhead if transformed else 0.0

    l1_lat = float(config.l1_latency)
    l2_lat = float(config.l2_latency)
    keep = 1.0 - config.effective_overlap(spec.program.mlp_demand)
    stagger = float(config.thread_stagger)
    base_finish = (np.arange(num_threads, dtype=np.float64) * stagger
                   + prof.gap_sum.astype(np.float64)
                   + prof.l1_hits * l1_lat
                   + keep * (prof.l2_hits + prof.misses)
                   * (l1_lat + l2_lat))
    # An empty-stream thread never leaves the fork barrier (finish 0.0),
    # matching the event loops.
    base_finish[prof.accesses == 0] = 0.0

    if nmiss == 0:
        m.thread_finish = (base_finish * (1.0 + overhead)).tolist()
        m.exec_time = float(base_finish.max(initial=0.0)
                            * (1.0 + overhead))
        m.mc_requests = [0] * num_mcs
        m.mc_row_hits = [0] * num_mcs
        m.mc_queue_wait = [0.0] * num_mcs
        m.mc_busy_elapsed = [0.0] * num_mcs
        m.page_fallbacks = prof.page_fallbacks
        return m

    amap = AddressMap(config)
    mc = amap.mc_of(prof.miss_paddr)
    bank = amap.bank_of(prof.miss_paddr)
    row = amap.row_of(prof.miss_paddr)
    node = thread_nodes[prof.miss_thread]
    if spec.optimal:
        # Nearest controller per node, ties to the lower index -- the
        # simulator's _nearest_mc.
        mc = np.argmin(dist_nm + np.arange(num_mcs) * 1e-9, axis=1)[node]

    hop = float(config.hop_latency)
    ctrl_tail = float(min(config.control_flits,
                          config.critical_word_flits))
    data_tail = float(min(config.data_flits, config.critical_word_flits))

    def ctrl_lat(d: np.ndarray) -> np.ndarray:
        return np.where(d > 0, d * hop + ctrl_tail, 0.0)

    def data_lat(d: np.ndarray) -> np.ndarray:
        return np.where(d > 0, d * hop + data_tail, 0.0)

    remote = prof.miss_owner >= 0
    offchip = ~remote
    d_req = dist_nm[node, mc]

    # Time windows: each miss lands in the bin matching its fractional
    # position within its thread's stream.  Suite threads run the same
    # kernel in near-lockstep, so equal fractions ~= equal times; the
    # bins turn phase-clustered miss bursts (every thread sweeping
    # memory at once) into high *windowed* utilization, which is what
    # actually queues the wormhole links and the MC channels.
    frac = ((prof.miss_pos + 0.5)
            / prof.accesses[prof.miss_thread].astype(np.float64))
    tbin = np.minimum((frac * TIME_BINS).astype(np.int64),
                      TIME_BINS - 1)
    nnodes = mesh.num_nodes

    # -- on-chip remote (cache-to-cache) path --------------------------
    t_r = prof.miss_thread[remote]
    bin_r = tbin[remote]
    if t_r.size:
        owner_node = thread_nodes[prof.miss_owner[remote]]
        r_node = node[remote]
        mc_r = mc[remote]
        r_mcnode = mc_nodes[mc_r]
        d1 = dist_nm[r_node, mc_r]
        d2 = (np.abs(xs[r_mcnode] - xs[owner_node])
              + np.abs(ys[r_mcnode] - ys[owner_node]))
        d3 = (np.abs(xs[owner_node] - xs[r_node])
              + np.abs(ys[owner_node] - ys[r_node]))
        onchip_zero = ctrl_lat(d1) + ctrl_lat(d2) + data_lat(d3)
        m.onchip_remote = int(t_r.size)
        hops3 = d1 + d2 + d3
        for h, c in zip(*np.unique(hops3, return_counts=True)):
            m.onchip_hops[int(h)] += int(c)
    else:
        owner_node = r_node = r_mcnode = np.zeros(0, dtype=np.int64)
        onchip_zero = np.zeros(0)

    # -- off-chip path -------------------------------------------------
    t_o = prof.miss_thread[offchip]
    bin_o = tbin[offchip]
    mc_o = mc[offchip]
    node_o = node[offchip]
    mcnode_o = mc_nodes[mc_o]
    d_o = d_req[offchip]
    if spec.optimal:
        # The optimal scheme's controllers serve at row-hit latency
        # with no queueing; its NoC still contends like any other.
        service = np.full(t_o.size, float(config.row_hit_cycles))
        rowhit = np.ones(t_o.size, dtype=bool)
    else:
        rowhit = _row_hit_mask(t_o, mc_o, bank[offchip], row[offchip],
                               config.frfcfs_window_rows)
        service = np.where(rowhit, float(config.row_hit_cycles),
                           float(config.row_miss_cycles))

    requests = np.bincount(mc_o, minlength=num_mcs).astype(np.float64)
    mcbin = mc_o * TIME_BINS + bin_o
    req_mb = np.bincount(mcbin, minlength=num_mcs * TIME_BINS
                         ).astype(np.float64)
    svc_mb = np.bincount(mcbin, weights=service,
                         minlength=num_mcs * TIME_BINS)
    mean_svc_mb = np.divide(svc_mb, req_mb,
                            out=np.full(num_mcs * TIME_BINS,
                                        float(config.row_hit_cycles)),
                            where=req_mb > 0)

    fixed = (ctrl_lat(d_o) + _DIRECTORY_LATENCY + service
             + data_lat(d_o))
    channel = float(config.channel_cycles)
    banks = float(config.banks_per_mc)
    ctrl_flits = float(config.control_flits)
    data_flits = float(config.data_flits)

    # Message grouping: to the queueing model, all misses a thread
    # issues to the same MC (and, for cache-to-cache transfers, the
    # same owner) within the same time bin are indistinguishable --
    # same routes, same rates, same waits.  The fixed point therefore
    # iterates over unique (thread, bin, MC[, owner]) groups (a few
    # thousand rows at full scale) instead of per-miss arrays; ginv_*
    # map each miss back to its group for the final per-miss metrics.
    tb_off = t_o * TIME_BINS + bin_o
    tb_on = t_r * TIME_BINS + bin_r
    ntb = num_threads * TIME_BINS
    guniq_o, ginv_o, cnt_o = np.unique(tb_off * num_mcs + mc_o,
                                       return_inverse=True,
                                       return_counts=True)
    g_tb = guniq_o // num_mcs
    g_mc = guniq_o % num_mcs
    g_t = g_tb // TIME_BINS
    g_b = g_tb % TIME_BINS
    g_node = thread_nodes[g_t]
    g_mcnode = mc_nodes[g_mc]
    g_mcb = g_mc * TIME_BINS + g_b
    cnt_o = cnt_o.astype(np.float64)
    n_go = guniq_o.size
    # Message legs, per virtual network (vnet 0 = control requests and
    # directory forwards, vnet 1 = data responses -- the simulator's
    # split).  Each leg is (threads, bins, route pairs, counts).
    legs0 = [(g_t, g_b, g_node * nnodes + g_mcnode, cnt_o)]
    legs1 = [(g_t, g_b, g_mcnode * nnodes + g_node, cnt_o)]
    n_r = t_r.size
    n_gr = 0
    if n_r:
        owner_r = prof.miss_owner[remote]
        guniq_r, ginv_r, cnt_r = np.unique(
            (tb_on * num_mcs + mc_r) * num_threads + owner_r,
            return_inverse=True, return_counts=True)
        h_owner = guniq_r % num_threads
        h_rest = guniq_r // num_threads
        h_mc = h_rest % num_mcs
        h_tb = h_rest // num_mcs
        h_t = h_tb // TIME_BINS
        h_b = h_tb % TIME_BINS
        h_node = thread_nodes[h_t]
        h_mcnode = mc_nodes[h_mc]
        h_onode = thread_nodes[h_owner]
        cnt_r = cnt_r.astype(np.float64)
        n_gr = guniq_r.size
        legs0 += [(h_t, h_b, h_node * nnodes + h_mcnode, cnt_r),
                  (h_t, h_b, h_mcnode * nnodes + h_onode, cnt_r)]
        legs1.append((h_t, h_b, h_onode * nnodes + h_node, cnt_r))
    # Route expansion: one row per (group, crossed link).  Static per
    # candidate -- each fixed-point round only reweights by inv_dur.
    nlinks = mesh.num_links
    exp0 = _expand_legs(mesh, legs0)
    exp1 = _expand_legs(mesh, legs1)

    # Per-thread, per-bin wall time: the contention-free advance spread
    # evenly, plus that bin's share of charged miss-path cycles.  A
    # miss-heavy phase therefore *dilates* -- exactly the closed-loop
    # behavior that keeps the simulated system finite -- and each
    # thread's message rate in a bin is 1/its own dilated duration.
    base_rate = ((prof.gap_sum
                  + prof.l1_hits * l1_lat
                  + keep * (prof.l2_hits + prof.misses)
                  * (l1_lat + l2_lat)).astype(np.float64) / TIME_BINS)
    # Wait-independent miss-path cycles, pre-binned (static).
    fixed_t = np.bincount(t_o, weights=fixed, minlength=num_threads)
    fixed_tb = np.bincount(tb_off, weights=fixed, minlength=ntb)
    if n_r:
        on_fixed = onchip_zero + _DIRECTORY_LATENCY + l2_lat
        fixed_t += np.bincount(t_r, weights=on_fixed,
                               minlength=num_threads)
        fixed_tb += np.bincount(tb_on, weights=on_fixed,
                                minlength=ntb)

    w_g = np.zeros(n_go)       # MC queue wait, per off-chip group
    lwg_off = np.zeros(n_go)   # route wait, per off-chip group
    lwg_on = np.zeros(n_gr)    # route wait, per on-chip group
    rw0 = rw1 = None           # per-group route waits, each vnet
    exec_est = max(float(base_finish.max(initial=0.0)), 1.0)
    for _ in range(FIXED_POINT_ROUNDS):
        extra_off = cnt_o * (w_g + lwg_off)
        extra_t = np.bincount(g_t, weights=extra_off,
                              minlength=num_threads)
        extra_tb = np.bincount(g_tb, weights=extra_off, minlength=ntb)
        if n_gr:
            extra_on = cnt_r * lwg_on
            extra_t += np.bincount(h_t, weights=extra_on,
                                   minlength=num_threads)
            extra_tb += np.bincount(h_tb, weights=extra_on,
                                    minlength=ntb)
        finish = base_finish + keep * (fixed_t + extra_t)
        new_est = max(float(finish.max(initial=0.0)), 1.0)
        converged = abs(new_est - exec_est) < FIXED_POINT_TOL * exec_est
        exec_est = new_est
        if converged:
            break
        dur_tb = (base_rate[:, None]
                  + keep * (fixed_tb + extra_tb
                            ).reshape(num_threads, TIME_BINS))
        np.maximum(dur_tb, 1.0, out=dur_tb)
        inv_dur = 1.0 / dur_tb
        idf = inv_dur.reshape(-1)   # indexed by thread * TIME_BINS + bin

        # Per-link utilization per bin: every message holds each route
        # link for `flits` cycles, at its thread's windowed rate (the
        # group's count carries how many misses share the row).
        def link_waits(exp, flits):
            msg_idx, key, t_exp, b_exp, c_exp, nmsg = exp
            rho = np.clip(np.bincount(
                key, weights=flits * c_exp * inv_dur[t_exp, b_exp],
                minlength=TIME_BINS * nlinks), 0.0, RHO_MAX)
            # M/D/1 residual-service wait per link crossing (link
            # holds are deterministic: exactly `flits` cycles); each
            # group's route wait = the sum over its crossed links.
            wait = rho / (2.0 * (1.0 - rho)) * flits * LINK_WAIT_SCALE
            return np.bincount(msg_idx, weights=wait[key],
                               minlength=nmsg)

        new_rw0 = link_waits(exp0, ctrl_flits)
        new_rw1 = link_waits(exp1, data_flits)
        if rw0 is None:
            rw0, rw1 = new_rw0, new_rw1
        else:
            rw0 = DAMPING * rw0 + (1.0 - DAMPING) * new_rw0
            rw1 = DAMPING * rw1 + (1.0 - DAMPING) * new_rw1
        # Groups were concatenated leg-first: vnet 0 = [off-chip
        # request, on-chip request, directory forward], vnet 1 =
        # [off-chip response, cache-to-cache data].
        lwg_off = rw0[:n_go] + rw1[:n_go]
        if n_gr:
            lwg_on = (rw0[n_go:n_go + n_gr] + rw0[n_go + n_gr:]
                      + rw1[n_go:])

        if not spec.optimal:
            lam_mb = np.bincount(g_mcb, weights=cnt_o * idf[g_tb],
                                 minlength=num_mcs * TIME_BINS)
            # Arrival-theorem-style self-exclusion: a thread's own
            # requests are spaced by its (charged) execution and only
            # queue behind *other* traffic -- except the overlapped
            # fraction (1 - keep), which genuinely piles up behind
            # itself.  keep == 1 excludes self fully; keep -> 0 keeps
            # the whole burst.
            lam = np.maximum(lam_mb[g_mcb] - keep * idf[g_tb], 0.0)
            rho_ch = np.clip(lam * channel, 0.0, RHO_MAX)
            rho_bk = np.clip(lam * mean_svc_mb[g_mcb] / banks,
                             0.0, RHO_MAX)
            new_wg = (rho_ch / (2.0 * (1.0 - rho_ch)) * channel
                      + rho_bk / (2.0 * (1.0 - rho_bk))
                      * mean_svc_mb[g_mcb]) * MC_WAIT_SCALE
            w_g = DAMPING * w_g + (1.0 - DAMPING) * new_wg
    # Back to per-miss waits for the metric fills.
    wait_off = w_g[ginv_o]
    lw_off = lwg_off[ginv_o]
    lw_on = lwg_on[ginv_r] if n_r else np.zeros(0)
    m.offchip = int(t_o.size)
    m.offchip_net_sum = float((ctrl_lat(d_o) + data_lat(d_o)
                               + lw_off).sum())
    m.offchip_mem_sum = float((service + wait_off).sum())
    m.offchip_queue_sum = float(wait_off.sum())
    m.net_wait_cycles = float(lw_off.sum() + lw_on.sum())
    if t_r.size:
        m.onchip_net_sum = float((onchip_zero + lw_on).sum())
    for h, c in zip(*np.unique(2 * d_o, return_counts=True)):
        m.offchip_hops[int(h)] += int(c)
    np.add.at(m.mc_node_requests, (mc_o, node_o), 1)
    m.mc_requests = requests.astype(np.int64).tolist()
    m.mc_row_hits = np.bincount(mc_o, weights=rowhit.astype(np.float64),
                                minlength=num_mcs
                                ).astype(np.int64).tolist()
    m.mc_queue_wait = np.bincount(mc_o, weights=wait_off,
                                  minlength=num_mcs).tolist()
    m.mc_busy_elapsed = np.where(requests > 0, exec_est, 0.0).tolist()

    m.thread_finish = (finish * (1.0 + overhead)).tolist()
    m.exec_time = exec_est * (1.0 + overhead)
    m.page_fallbacks = prof.page_fallbacks
    return m


def analytic_run(spec):
    """Execute ``spec`` analytically, returning a
    :class:`~repro.sim.run.RunResult` shaped like a simulated one
    (``run_simulation`` dispatches here for ``engine="analytic"``).

    The persistent result store is deliberately bypassed: estimates
    must never be replayed where a bit-exact simulation is expected.
    """
    from repro.sim.run import RunResult
    _check_supported(spec)
    if spec.obs == "off":
        metrics = analytic_metrics(spec)
        return RunResult(spec=spec, metrics=metrics,
                         page_fallbacks=metrics.page_fallbacks)
    obs = ObsData(level=spec.obs, label=spec.label(),
                  telemetry=(TelemetryRegistry()
                             if spec.obs == "full" else None))
    tracer = Tracer(label=spec.label())
    outer = current_tracer()
    with tracer.activate():
        with tracer.span("run", cat="run", key=spec.key()):
            with tracer.span("analytic.estimate", cat="sim",
                             engine="analytic") as span:
                metrics = analytic_metrics(spec)
                span.add(accesses=metrics.total_accesses)
    obs.spans = tracer.spans()
    obs.meta["mesh"] = (spec.config.mesh_width, spec.config.mesh_height)
    obs.meta["exec_time"] = metrics.exec_time
    if obs.telemetry is not None:
        obs.telemetry.counter("sim.accesses").inc(metrics.total_accesses)
        obs.telemetry.counter("sim.offchip").inc(metrics.offchip)
        obs.telemetry.gauge("sim.exec_time").set(metrics.exec_time)
    if outer is not None:
        outer.absorb(obs.spans)
    return RunResult(spec=spec, metrics=metrics,
                     page_fallbacks=metrics.page_fallbacks, obs=obs)
