"""The design-space candidates: what the placement search explores.

A :class:`Candidate` is one hardware configuration choice along the
three axes the paper studies (and :mod:`repro.arch.placement` /
:mod:`repro.arch.clustering` / the interleaving modes implement):

* **MC placement** -- a named preset (``P1``/``P2``/``P3``) or an
  explicit ``"custom:n0,n1,..."`` node list,
* **L2-to-MC mapping** -- a preset from
  :data:`repro.sim.executor.MAPPING_PRESETS` (``M1``/``M2``/
  ``voronoi``), resolved against the candidate's placement, and
* **interleaving** -- ``cache_line`` or ``page``.

A :class:`CandidateSpace` enumerates, sizes, samples, and perturbs
candidates over a configurable placement pool:

* ``"named"`` -- just the paper's P1/P2/P3,
* ``"perimeter"`` -- every combination of ``num_mcs`` perimeter nodes
  (where real designs put controllers: pins route outward),
* ``"all"`` -- every combination of ``num_mcs`` mesh nodes,

or an explicit list of placement strings.  Enumeration order is
deterministic (placement pools in lexicographic combination order,
then mapping, then interleaving), so exhaustive searches are
reproducible by construction; ``random``/``neighbor`` draw only from a
caller-provided :class:`random.Random`, so annealed searches are
reproducible by seed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.arch import placement as placements_mod
from repro.arch.clustering import L2ToMCMapping
from repro.arch.config import MachineConfig
from repro.arch.placement import CUSTOM_PREFIX, custom_placement
from repro.sim.executor import MAPPING_PRESETS, resolve_mapping

__all__ = ["Candidate", "CandidateSpace", "INTERLEAVINGS",
           "PLACEMENT_POOLS"]

#: Interleaving modes a candidate may choose between.
INTERLEAVINGS = ("cache_line", "page")

#: Named placement-pool selectors understood by :class:`CandidateSpace`.
PLACEMENT_POOLS = ("named", "perimeter", "all")


@dataclass(frozen=True, order=True)
class Candidate:
    """One point of the design space (hashable, totally ordered --
    the deterministic tie-break key everywhere)."""

    placement: str
    mapping: str
    interleaving: str

    def label(self) -> str:
        return f"{self.placement}/{self.mapping}/{self.interleaving}"

    def config(self, base: MachineConfig) -> MachineConfig:
        """The machine this candidate describes, on top of ``base``."""
        return base.with_(mc_placement=self.placement,
                          interleaving=self.interleaving)

    def resolve_mapping(self, base: MachineConfig) -> L2ToMCMapping:
        """The candidate's L2-to-MC mapping preset, resolved against
        its placement (custom placements resolve through the same
        preset machinery the sweeps use)."""
        return resolve_mapping(self.config(base), self.mapping)


def _perimeter_nodes(mesh) -> List[int]:
    """Perimeter nodes in node-id order."""
    return sorted(node for node in range(mesh.num_nodes)
                  if mesh.coords(node)[0] in (0, mesh.width - 1)
                  or mesh.coords(node)[1] in (0, mesh.height - 1))


class CandidateSpace:
    """Deterministic enumeration + seeded sampling over candidates.

    ``placements`` is a pool selector from :data:`PLACEMENT_POOLS` or
    an explicit sequence of placement strings.  ``mappings`` defaults
    to every preset valid for the machine (M2 needs an even MC
    count).  The space is never materialized: ``enumerate`` streams,
    ``size`` counts arithmetically, and ``random``/``neighbor`` sample
    without listing the pool.
    """

    def __init__(self, config: MachineConfig,
                 placements: object = "named",
                 mappings: Optional[Sequence[str]] = None,
                 interleavings: Sequence[str] = INTERLEAVINGS):
        self.config = config
        self.mesh = config.mesh()
        if mappings is None:
            mappings = [m for m in MAPPING_PRESETS
                        if m != "M2" or config.num_mcs % 2 == 0]
        for name in mappings:
            if name not in MAPPING_PRESETS:
                raise ValueError(
                    f"unknown mapping preset {name!r}; valid presets: "
                    f"{', '.join(MAPPING_PRESETS)}")
        for mode in interleavings:
            if mode not in INTERLEAVINGS:
                raise ValueError(
                    f"unknown interleaving {mode!r}; valid modes: "
                    f"{', '.join(INTERLEAVINGS)}")
        self.mappings: Tuple[str, ...] = tuple(mappings)
        self.interleavings: Tuple[str, ...] = tuple(interleavings)
        if isinstance(placements, str):
            if placements not in PLACEMENT_POOLS:
                raise ValueError(
                    f"unknown placement pool {placements!r}; pools: "
                    f"{', '.join(PLACEMENT_POOLS)} (or pass an "
                    f"explicit list of placement strings)")
            self.pool = placements
            self._explicit: Optional[Tuple[str, ...]] = None
            if placements == "named":
                self._explicit = tuple(sorted(placements_mod.PLACEMENTS))
            elif placements == "perimeter":
                self._nodes = _perimeter_nodes(self.mesh)
            else:
                self._nodes = list(range(self.mesh.num_nodes))
        else:
            self.pool = "explicit"
            self._explicit = tuple(placements)
            if not self._explicit:
                raise ValueError("explicit placement list is empty")
        if self._explicit is None and \
                config.num_mcs > len(self._nodes):
            raise ValueError(
                f"cannot place {config.num_mcs} MCs over a pool of "
                f"{len(self._nodes)} nodes")

    # -- enumeration -----------------------------------------------------

    def placements(self) -> Iterator[str]:
        """Placement strings in deterministic order."""
        if self._explicit is not None:
            yield from self._explicit
        else:
            for combo in itertools.combinations(self._nodes,
                                                self.config.num_mcs):
                yield custom_placement(list(combo))

    def enumerate(self) -> Iterator[Candidate]:
        """All candidates: placement-major, then mapping, then
        interleaving -- the canonical exhaustive order."""
        for placement in self.placements():
            for mapping in self.mappings:
                for interleaving in self.interleavings:
                    yield Candidate(placement, mapping, interleaving)

    def num_placements(self) -> int:
        if self._explicit is not None:
            return len(self._explicit)
        return math.comb(len(self._nodes), self.config.num_mcs)

    def size(self) -> int:
        return (self.num_placements() * len(self.mappings)
                * len(self.interleavings))

    def __contains__(self, candidate: Candidate) -> bool:
        if candidate.mapping not in self.mappings or \
                candidate.interleaving not in self.interleavings:
            return False
        if self._explicit is not None:
            return candidate.placement in self._explicit
        if not candidate.placement.startswith(CUSTOM_PREFIX):
            return False
        nodes = placements_mod.parse_custom(
            self.mesh, candidate.placement, self.config.num_mcs)
        allowed = set(self._nodes)
        return (all(n in allowed for n in nodes)
                and nodes == sorted(nodes))

    # -- seeded sampling -------------------------------------------------

    def _random_placement(self, rng) -> str:
        if self._explicit is not None:
            return rng.choice(self._explicit)
        picks = sorted(rng.sample(self._nodes, self.config.num_mcs))
        return custom_placement(picks)

    def random(self, rng) -> Candidate:
        """A uniform draw from the space (``rng`` drives everything,
        so equal seeds give equal walks)."""
        return Candidate(self._random_placement(rng),
                         rng.choice(self.mappings),
                         rng.choice(self.interleavings))

    def neighbor(self, candidate: Candidate, rng) -> Candidate:
        """A single-axis perturbation: move one MC (or re-draw a named
        placement), or flip the mapping, or flip the interleaving --
        whichever mutable axis the rng picks."""
        axes = ["placement"]
        if len(self.mappings) > 1:
            axes.append("mapping")
        if len(self.interleavings) > 1:
            axes.append("interleaving")
        axis = rng.choice(axes)
        placement = candidate.placement
        mapping = candidate.mapping
        interleaving = candidate.interleaving
        if axis == "placement":
            if self._explicit is not None:
                options = [p for p in self._explicit if p != placement]
                if options:
                    placement = rng.choice(options)
            else:
                nodes = placements_mod.parse_custom(
                    self.mesh, placement, self.config.num_mcs)
                free = [n for n in self._nodes if n not in nodes]
                if free:
                    nodes[rng.randrange(len(nodes))] = rng.choice(free)
                    placement = custom_placement(sorted(nodes))
        elif axis == "mapping":
            mapping = rng.choice([m for m in self.mappings
                                  if m != mapping])
        else:
            interleaving = rng.choice(
                [i for i in self.interleavings if i != interleaving])
        return Candidate(placement, mapping, interleaving)
