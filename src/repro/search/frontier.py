"""Keep-top-K frontier of screened candidates.

The analytic screen evaluates thousands of candidates; only the best
few are worth re-simulating bit-exactly.  :class:`Frontier` keeps the
``k`` cheapest seen so far, with a fully deterministic order: entries
sort by ``(cost, score, candidate)`` where ``score`` is the
compile-time mapping score (:mod:`repro.core.mapping_selection`) and
the candidate's own total order breaks exact ties -- so the same
candidate stream always yields the same frontier, regardless of float
coincidences.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.search.space import Candidate

__all__ = ["Frontier", "FrontierEntry"]


@dataclass(frozen=True, order=True)
class FrontierEntry:
    """One screened candidate: analytic cost first, mapping score as
    the documented tie-break, the candidate itself as the last word."""

    cost: float
    score: float
    candidate: Candidate = field(compare=True)


class Frontier:
    """The ``k`` best entries offered so far (ascending cost)."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"frontier size must be >= 1, got {k}")
        self.k = k
        self._entries: List[FrontierEntry] = []

    def offer(self, candidate: Candidate, cost: float,
              score: float = 0.0) -> bool:
        """Consider a candidate; returns whether it made the cut.
        Re-offering an already-held candidate is a no-op."""
        entry = FrontierEntry(cost=cost, score=score,
                              candidate=candidate)
        if any(e.candidate == candidate for e in self._entries):
            return False
        if len(self._entries) >= self.k and \
                entry >= self._entries[-1]:
            return False
        bisect.insort(self._entries, entry)
        del self._entries[self.k:]
        return True

    def entries(self) -> List[FrontierEntry]:
        """Current frontier, best (lowest cost) first."""
        return list(self._entries)

    @property
    def best(self) -> Optional[FrontierEntry]:
        return self._entries[0] if self._entries else None

    @property
    def threshold(self) -> float:
        """Cost beyond which an offer cannot enter (``inf`` while the
        frontier is not yet full)."""
        if len(self._entries) < self.k:
            return float("inf")
        return self._entries[-1].cost

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FrontierEntry]:
        return iter(self._entries)

    def __contains__(self, candidate: Candidate) -> bool:
        return any(e.candidate == candidate for e in self._entries)
