"""Seeded simulated annealing over the candidate space.

For pools too large to enumerate (``"perimeter"``/``"all"`` on real
meshes), the search walks the space with Metropolis acceptance: always
take an improving neighbor, take a worsening one with probability
``exp(-delta / T)`` where ``delta`` is the *relative* cost increase
(scale-free: cycle counts span orders of magnitude across workloads)
and ``T`` decays geometrically from ``t_start`` to ``t_end``.

Everything random flows through one ``random.Random(seed)``, so a
seed fully determines the walk: same seed -> same proposals, same
acceptances, same frontier.  The acceptance rate is reported (and
exported as ``search.accept_rate`` telemetry) -- a healthy schedule
accepts much early and little late; ~0 throughout means the
temperature is too cold to escape the start, ~1 throughout means it is
pure random walk.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.search.space import Candidate, CandidateSpace

__all__ = ["AnnealResult", "anneal"]


@dataclass(frozen=True)
class AnnealResult:
    """Outcome of one annealed walk."""

    best: Candidate
    best_cost: float
    steps: int
    accepted: int

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.steps if self.steps else 0.0


def anneal(space: CandidateSpace,
           cost_fn: Callable[[Candidate], float], *,
           seed: int = 0, steps: int = 128,
           t_start: float = 0.08, t_end: float = 0.005,
           start: Optional[Candidate] = None) -> AnnealResult:
    """Walk ``space`` for ``steps`` proposals, minimizing ``cost_fn``.

    ``cost_fn`` is called once per distinct proposal the walk visits
    (callers wanting a frontier or a cache hook it there); ``start``
    overrides the seeded random starting point.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = random.Random(seed)
    current = start if start is not None else space.random(rng)
    current_cost = cost_fn(current)
    best, best_cost = current, current_cost
    accepted = 0
    for i in range(steps):
        proposal = space.neighbor(current, rng)
        cost = cost_fn(proposal)
        frac = i / max(1, steps - 1)
        temp = t_start * (t_end / t_start) ** frac
        delta = (cost - current_cost) / max(abs(current_cost), 1.0)
        if delta <= 0.0 or rng.random() < math.exp(-delta / temp):
            current, current_cost = proposal, cost
            accepted += 1
            if current_cost < best_cost:
                best, best_cost = current, current_cost
    return AnnealResult(best=best, best_cost=best_cost, steps=steps,
                        accepted=accepted)
