#!/usr/bin/env python
"""Shared (SNUCA) L2: localize home banks, then off-chip accesses.

With a shared L2 (Figure 2b), every L1 miss travels to the line's *home
bank* -- ``(addr / line) % cores`` -- so in the baseline almost every L2
access crosses the chip.  The shared-L2 customization packs each
thread's data into lines homed at (or near) its own core, then applies
the delta-skip of Section 5.3 so the induced memory controller is the
desired one or adjacent to it.  This example shows both halves:

* how many L2 accesses are served by the local bank before and after,
* the paper's Eq. 4/5 conflict: why both localizations cannot be perfect
  simultaneously (and what the delta-skip settles for).

Run with:  python examples/shared_l2_snuca.py
"""

from repro import MachineConfig, run_pair
from repro.core.customization import assign_shared_slots
from repro.sim.run import RunSpec, run_simulation
from repro.workloads import build_workload


def main() -> None:
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line", shared_l2=True)
    mapping = config.default_mapping()
    program = build_workload("galgel")

    # The slot assignment: which home bank each thread's data gets.
    slots = assign_shared_slots(mapping, mapping.num_threads)
    moved = sum(1 for t, slot in enumerate(slots)
                if slot != mapping.core_of_thread(t))
    print(f"threads whose home bank is displaced by the delta-skip: "
          f"{moved}/{len(slots)}")
    print("(those cores' own line slots map to the diagonal -- "
          "non-adjacent -- controller, the set C of Section 5.3)")

    for optimized in (False, True):
        res = run_simulation(RunSpec(program=program, config=config,
                                     optimized=optimized))
        m = res.metrics
        l2_accesses = m.l2_hits + m.onchip_remote + m.offchip
        label = "optimized" if optimized else "baseline "
        print(f"{label}: local-bank hits {m.l2_hits}/{l2_accesses} "
              f"({m.l2_hits / max(1, l2_accesses):.0%}), "
              f"on-chip net latency {m.avg_onchip_net_latency:.0f} cyc")

    base, opt, comparison = run_pair(program, config)
    print("\nreductions (shared L2):")
    for key, value in comparison.as_row().items():
        print(f"  {key:<12} {value:7.1%}")


if __name__ == "__main__":
    main()
