#!/usr/bin/env python
"""Quickstart: optimize one application's off-chip accesses.

Builds the ``swim`` model (shallow-water 2D stencils), runs it on the
default 8x8 manycore with private L2s and cache-line interleaving, first
with the original row-major layouts and then with the compiler's
customized layouts, and prints the four metrics the paper reports per
application (Figure 16): reductions in on-chip network latency, off-chip
network latency, off-chip memory latency, and execution time.

Run with:  python examples/quickstart.py
"""

from repro import MachineConfig, run_pair
from repro.workloads import build_workload


def main() -> None:
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    program = build_workload("swim")
    print(f"application: {program.name}")
    print(f"machine: {config.mesh_width}x{config.mesh_height} mesh, "
          f"{config.num_mcs} MCs ({config.mc_placement}), "
          f"{'shared' if config.shared_l2 else 'private'} L2, "
          f"{config.interleaving} interleaving")

    base, opt, comparison = run_pair(program, config)

    print(f"\noff-chip share of data accesses (baseline): "
          f"{base.metrics.offchip_fraction:.1%}")
    if opt.transformation is not None:
        print(f"arrays optimized: "
              f"{opt.transformation.pct_arrays_optimized:.0%}, "
              f"references satisfied: "
              f"{opt.transformation.pct_refs_satisfied:.0%}")

    print("\nreductions from the layout transformation:")
    labels = {
        "onchip_net": "network latency of on-chip accesses",
        "offchip_net": "network latency of off-chip accesses",
        "offchip_mem": "memory latency of off-chip accesses",
        "exec_time": "execution time",
    }
    for key, value in comparison.as_row().items():
        print(f"  {labels[key]:<42} {value:7.1%}")


if __name__ == "__main__":
    main()
