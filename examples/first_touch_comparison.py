#!/usr/bin/env python
"""Compiler-guided page placement vs. the OS first-touch policy.

Section 6.3: under page interleaving, an OS can place each page at the
controller of the cluster that touches it first [20].  That greedy bet
pays off only when a page keeps being used by the cluster that faulted
it -- true for ``wupwise``, ``gafort`` and ``minimd`` (mostly private
data), false for applications whose sharing or transposed sweeps move
pages between clusters.  The compiler approach instead *rearranges* data
so each page is genuinely cluster-private, then tells the allocator
where to put it.

Run with:  python examples/first_touch_comparison.py [apps...]
"""

import sys

from repro import MachineConfig
from repro.sim.run import RunSpec, run_simulation
from repro.workloads import FIRST_TOUCH_FRIENDLY, build_workload


def main() -> None:
    apps = sys.argv[1:] or ["wupwise", "swim", "galgel", "minimd"]
    config = MachineConfig.scaled_default()  # page interleaving (Table 1)
    print(f"{'application':<12} {'first-touch':>12} {'ours':>12} "
          f"{'ours vs FT':>12}")
    for name in apps:
        program = build_workload(name)
        base = run_simulation(RunSpec(program=program, config=config,
                                      optimized=False)).metrics
        ft = run_simulation(RunSpec(program=program, config=config,
                                    optimized=False,
                                    page_policy="first_touch")).metrics
        ours = run_simulation(RunSpec(program=program, config=config,
                                      optimized=True)).metrics
        ft_gain = 1 - ft.exec_time / base.exec_time
        our_gain = 1 - ours.exec_time / base.exec_time
        vs = 1 - ours.exec_time / ft.exec_time
        tag = " (FT-friendly)" if name in FIRST_TOUCH_FRIENDLY else ""
        print(f"{name:<12} {ft_gain:>12.1%} {our_gain:>12.1%} "
              f"{vs:>12.1%}{tag}")


if __name__ == "__main__":
    main()
