#!/usr/bin/env python
"""The full source-to-source pipeline, like the paper's Open64 tool.

Reads a kernel in the mini-language (Figure 9(a)'s shape), checks the
parallelization's legality, runs the layout pass, and prints the
transformed C code -- the Figure 9(c) artifact, complete with the
strip-mining/permutation arithmetic baked into per-array index
functions.

Run with:  python examples/source_to_source.py [kernel.krn]
"""

import sys
from pathlib import Path

from repro import MachineConfig
from repro.core.dependence import check_program
from repro.core.pipeline import LayoutTransformer
from repro.frontend import compile_kernel, emit_program

DEFAULT_KERNEL = Path(__file__).parent / "kernels" / "jacobi.krn"


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_KERNEL
    program = compile_kernel(path.read_text(), name=path.stem)

    print(f"compiled {path.name}: {len(program.arrays)} arrays, "
          f"{len(program.nests)} nest(s)")
    for report in check_program(program):
        verdict = "legal" if report.legal else "NOT PROVEN LEGAL"
        print(f"  {report.nest_name}: parallelization {verdict}")
        for conflict in report.conflicts:
            print(f"    - {conflict}")

    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    result = LayoutTransformer(config).run(program)
    print(f"\npass: {result.pct_arrays_optimized:.0%} arrays optimized, "
          f"{result.pct_refs_satisfied:.0%} references satisfied\n")
    print(emit_program(program, result))


if __name__ == "__main__":
    main()
