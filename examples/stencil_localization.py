#!/usr/bin/env python
"""Build a custom stencil program and watch the pass localize it.

This example goes a level deeper than the quickstart: it constructs an
affine program by hand (a 5-point Jacobi stencil, the shape of the
paper's running example in Figure 9), runs the layout pass explicitly,
and inspects what the compiler did --

* the Data-to-Core transformation matrix ``U`` per array,
* where each data element's off-chip request goes before and after
  customization (the Figure 6 picture), and
* the end-to-end latency effect.

Run with:  python examples/stencil_localization.py
"""

import numpy as np

from repro import (ArrayDecl, LoopNest, MachineConfig, Program,
                   LayoutTransformer, identity_ref, run_pair, shifted_ref)
from repro.core.layout import ClusteredLayout


def build_jacobi(n: int = 112) -> Program:
    grid = ArrayDecl("GRID", (n, n), element_size=64)
    out = ArrayDecl("OUT", (n, n), element_size=64)
    sweep = LoopNest(
        "jacobi", ((1, n - 1), (1, n - 1)),
        refs=(identity_ref(grid),
              shifted_ref(grid, (1, 0)), shifted_ref(grid, (-1, 0)),
              shifted_ref(grid, (0, 1)), shifted_ref(grid, (0, -1)),
              identity_ref(out, is_write=True)),
        work_per_iteration=12, repeat=2)
    return Program("jacobi5", [grid, out], [sweep])


def main() -> None:
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    program = build_jacobi()
    mapping = config.default_mapping()

    transformer = LayoutTransformer(config, mapping)
    result = transformer.run(program)

    print("per-array plan:")
    for name, plan in result.plans.items():
        print(f"  {name}: optimized={plan.optimized} "
              f"(references satisfied: {plan.satisfaction:.0%})")
        if plan.mapping_result and plan.mapping_result.transform:
            print(f"    U = {plan.mapping_result.transform}")

    # Where do off-chip requests for GRID's elements go?  Sample one row
    # owned by thread 0 and one owned by a thread in the far cluster.
    layout = result.layouts["GRID"]
    assert isinstance(layout, ClusteredLayout)
    for thread in (0, mapping.num_threads - 1):
        core = mapping.core_of_thread(thread)
        cluster = mapping.cluster_of_thread(thread)
        row = thread * layout.block
        coords = np.array([[row] * 4, [0, 10, 50, 100]])
        mcs = layout.target_mc(coords)
        print(f"  thread {thread} (core {core}, cluster {cluster}): "
              f"row {row} -> MCs {sorted(set(mcs.tolist()))}, "
              f"cluster owns {mapping.mcs_of_cluster(cluster)}")

    base, opt, comparison = run_pair(program, config)
    print("\nlatency reductions:")
    for key, value in comparison.as_row().items():
        print(f"  {key:<12} {value:7.1%}")


if __name__ == "__main__":
    main()
