#!/usr/bin/env python
"""Design-space exploration with the sweep harness.

Sweeps one application across interleaving granularities, L2-to-MC
mappings and controller counts -- the axes of Figures 14/16/17/20 -- in
a single cartesian grid, prints the CSV, and reports the best
configuration.

Run with:  python examples/design_space_sweep.py [app] [scale]
"""

import sys

from repro import MachineConfig
from repro.sim.sweep import Sweep, best_point, to_csv
from repro.workloads import build_workload


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "swim"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    program = build_workload(app, scale)
    sweep = Sweep(program, MachineConfig.scaled_default())

    points = sweep.run(interleaving=["cache_line", "page"],
                       mapping=["M1", "M2"],
                       num_mcs=[4, 8])
    print(to_csv(points))

    best = best_point(points)
    print(f"best configuration for {app}: "
          f"{dict(best.settings)} "
          f"(execution time -{best.comparison.exec_time_reduction:.1%})")


if __name__ == "__main__":
    main()
