#!/usr/bin/env python
"""Locality vs. memory-level parallelism: choosing the L2-to-MC mapping.

Section 4 of the paper: the user supplies the L2-to-MC mapping, and
different mappings trade locality (M1: every cluster uses only its
nearest controller) against memory-level parallelism (M2: twice the
cores share twice the controllers, so bursts spread over more banks).
The compiler analysis of Section 4 ranks candidate mappings by weighing
mean distance-to-MC against the application's profiled burst MLP demand
-- and prefers M2 exactly for ``fma3d`` and ``minighost``, the two
applications whose bank queues saturate (Figure 18).

Run with:  python examples/mapping_tradeoff.py
"""

from repro import MachineConfig, mapping_m1, mapping_m2
from repro.core.mapping_selection import rank_mappings
from repro.workloads import SUITE_ORDER, build_workload


def main() -> None:
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    mesh = config.mesh()
    mc_nodes = config.mc_nodes(mesh)
    m1 = mapping_m1(mesh, mc_nodes)
    m2 = mapping_m2(mesh, mc_nodes)
    print(f"M1: {m1.num_clusters} clusters x {m1.cores_per_cluster} "
          f"cores, k={m1.mcs_per_cluster}, "
          f"mean distance-to-MC {m1.avg_distance_to_mc():.2f} hops")
    print(f"M2: {m2.num_clusters} clusters x {m2.cores_per_cluster} "
          f"cores, k={m2.mcs_per_cluster}, "
          f"mean distance-to-MC {m2.avg_distance_to_mc():.2f} hops")

    print(f"\n{'application':<12} {'MLP demand':>10} {'chosen':>8}"
          f" {'M1 score':>10} {'M2 score':>10}")
    for name in SUITE_ORDER:
        program = build_workload(name)
        ranked = rank_mappings([m1, m2], program, config)
        scores = {s.mapping.name: s.total for s in ranked}
        print(f"{name:<12} {program.mlp_demand:>10.1f} "
              f"{ranked[0].mapping.name:>8} {scores['M1']:>10.2f} "
              f"{scores['M2']:>10.2f}")


if __name__ == "__main__":
    main()
