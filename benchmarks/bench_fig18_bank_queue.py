"""Figure 18: bank-queue utilization under mapping M1.

Paper: fma3d and minighost exhibit far higher bank-queue occupancy than
the other applications -- the reason they are the two that profit from
M2's extra memory-level parallelism.
"""

from repro.workloads import HIGH_MLP


def test_fig18_bank_queue(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in runner.apps:
            m = runner.metrics(app, optimized=True,
                               interleaving="cache_line")
            rows[app] = m.bank_queue_occupancy()
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["Figure 18: mean bank-queue occupancy (M1, optimized runs)",
             f"{'benchmark':<12}{'occupancy':>12}"]
    for app, occ in sorted(rows.items(), key=lambda kv: -kv[1]):
        tag = "  <- high-MLP" if app in HIGH_MLP else ""
        lines.append(f"{app:<12}{occ:>12.2f}{tag}")
    report("fig18_bank_queue", "\n".join(lines))

    benchmark.extra_info.update(rows)
    if "fma3d" in rows:
        others = [occ for app, occ in rows.items()
                  if app not in HIGH_MLP]
        # fma3d's queues are the most loaded of the suite.
        assert rows["fma3d"] == max(rows.values())
        assert rows["fma3d"] > 2 * (sum(others) / len(others))
