"""Figure 20: more memory controllers (Figure 27's configurations).

Paper: the approach's savings grow with the controller count (4 -> 8 ->
16), because each cluster keeps memory-level parallelism even after its
accesses are localized.
"""

from repro.analysis.tables import format_percent_table

COUNTS = (4, 8, 16)


def test_fig20_mc_counts(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in runner.apps:
            rows[app] = {
                str(n): runner.pair(app, interleaving="cache_line",
                                    num_mcs=n).exec_time_reduction
                for n in COUNTS}
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    averages = {str(n): sum(r[str(n)] for r in rows.values()) / len(rows)
                for n in COUNTS}
    rows["average"] = averages
    text = format_percent_table(
        rows, [str(n) for n in COUNTS],
        title="Figure 20: execution-time reduction per MC count\n"
              "(paper: savings grow with the number of controllers)")
    report("fig20_mc_counts", text)

    benchmark.extra_info.update(averages)
    assert all(v > 0 for v in averages.values())
    # more controllers keep at least the 4-MC savings
    assert averages["16"] > averages["4"] - 0.05
