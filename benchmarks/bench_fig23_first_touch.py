"""Figure 23: the compiler approach versus OS first-touch placement.

Paper: under page interleaving, the compiler scheme averages 12.3%
better execution time than a cluster-granularity first-touch policy;
first-touch competes only for wupwise, gafort and minimd, whose data is
effectively private and whose initialization matches their compute
distribution.
"""

from repro.workloads import FIRST_TOUCH_FRIENDLY


def test_fig23_first_touch(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in runner.apps:
            base = runner.metrics(app, interleaving="page")
            ft = runner.metrics(app, interleaving="page",
                                page_policy="first_touch")
            ours = runner.metrics(app, optimized=True,
                                  interleaving="page")
            rows[app] = {
                "ft_gain": 1 - ft.exec_time / base.exec_time,
                "our_gain": 1 - ours.exec_time / base.exec_time,
                "ours_vs_ft": 1 - ours.exec_time / ft.exec_time,
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["Figure 23: compiler layouts vs. first-touch placement "
             "(page interleaving)",
             f"{'benchmark':<12}{'first-touch':>13}{'ours':>9}"
             f"{'ours vs FT':>12}"]
    for app, r in rows.items():
        tag = "  *FT-friendly" if app in FIRST_TOUCH_FRIENDLY else ""
        lines.append(f"{app:<12}{r['ft_gain']:>13.1%}"
                     f"{r['our_gain']:>9.1%}{r['ours_vs_ft']:>12.1%}"
                     f"{tag}")
    avg = sum(r["ours_vs_ft"] for r in rows.values()) / len(rows)
    lines.append(f"{'average':<12}{'':>13}{'':>9}{avg:>12.1%}"
                 f"   (paper: 12.3%)")
    report("fig23_first_touch", "\n".join(lines))

    benchmark.extra_info["avg_ours_vs_ft"] = avg
    # First-touch holds its own exactly on the FT-friendly trio...
    for app in FIRST_TOUCH_FRIENDLY:
        if app in rows:
            assert rows[app]["ft_gain"] > 0.0
    # ...while losing badly on sharing-heavy applications.
    contested = [a for a in rows if a not in FIRST_TOUCH_FRIENDLY]
    wins = sum(1 for a in contested if rows[a]["ours_vs_ft"] > 0)
    assert wins >= len(contested) // 3
