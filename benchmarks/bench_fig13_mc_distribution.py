"""Figure 13: spatial distribution of off-chip accesses to one MC.

Paper: for ``apsi``, the fraction of MC1's off-chip requests issued by
each of the 64 nodes -- spread over the whole chip originally, and
highly skewed toward the controller's own cluster after optimization.
"""

import numpy as np

from repro.analysis.distribution import (mc_access_map,
                                         skew_toward_cluster)
from repro.analysis.plots import heat_grid

APP = "apsi"
MC = 0  # "MC1" of Figure 8a: the first controller (NW corner)


def _render(grid: np.ndarray) -> str:
    table = "\n".join(
        " ".join(f"{cell:5.1%}" for cell in row) for row in grid)
    return table + "\n" + heat_grid(grid.tolist())


def test_fig13_mc_distribution(benchmark, runner, report):
    def experiment():
        config = runner.config(interleaving="page")
        mapping = runner.mapping(config)
        base = runner.metrics(APP, interleaving="page")
        opt = runner.metrics(APP, optimized=True, interleaving="page")
        return (skew_toward_cluster(base, mapping, MC),
                skew_toward_cluster(opt, mapping, MC),
                mc_access_map(base, MC, 8, 8),
                mc_access_map(opt, MC, 8, 8))

    base_skew, opt_skew, base_grid, opt_grid = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    text = "\n".join([
        f"Figure 13: share of MC1's off-chip requests per node ({APP})",
        f"own-cluster share: original {base_skew:.1%} -> optimized "
        f"{opt_skew:.1%}",
        "", "original:", _render(base_grid),
        "", "optimized:", _render(opt_grid)])
    report("fig13_mc_distribution", text)

    benchmark.extra_info["base_skew"] = base_skew
    benchmark.extra_info["opt_skew"] = opt_skew
    # Original: requests come from everywhere (own cluster ~1/4 of
    # them).  Optimized: highly skewed toward the nearby cores.
    assert base_skew < 0.5
    assert opt_skew > 0.8
