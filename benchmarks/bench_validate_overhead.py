"""Invariant-sanitizer overhead: validate=off vs metrics vs strict.

Standalone script (not a pytest benchmark): times repeated optimized
runs of one workload at each validation level and records the relative
overhead to ``BENCH_validate.json`` at the repo root.  The headline
number is ``off_overhead_pct`` -- the cost of merely *having* the
sanitizer wired in with validation disabled, which must stay ~0% (the
level check is one string comparison per run).  The metrics and strict
overheads quantify what opting in costs.

Usage::

    PYTHONPATH=src python benchmarks/bench_validate_overhead.py
    REPRO_BENCH_SCALE=0.3 PYTHONPATH=src \
        python benchmarks/bench_validate_overhead.py
"""

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro import MachineConfig, RunSpec, run_simulation
from repro.workloads import build_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
APP = os.environ.get("REPRO_BENCH_APP", "swim")
OUT = Path(__file__).resolve().parent.parent / "BENCH_validate.json"

#: Tolerated off-level overhead: the sanitizer disabled must not cost
#: more than run-to-run noise.
OFF_BUDGET_PCT = 2.0


def timed_runs(program, config, level):
    spec = RunSpec(program=program, config=config, optimized=True,
                   validate=level)
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        run_simulation(spec)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def main():
    program = build_workload(APP, SCALE)
    config = MachineConfig.scaled_default()
    timed_runs(program, config, "off")  # warm caches/JIT-free baseline

    # Interleave a second "off" measurement as the noise floor: the
    # honest question is whether off-vs-baseline is distinguishable
    # from baseline-vs-itself.
    baseline = timed_runs(program, config, "off")
    off = timed_runs(program, config, "off")
    metrics_level = timed_runs(program, config, "metrics")
    strict = timed_runs(program, config, "strict")

    def pct(level_s):
        return round(100.0 * (level_s - baseline) / baseline, 2)

    payload = {
        "benchmark": "validate_overhead",
        "app": APP,
        "scale": SCALE,
        "repeats": REPEATS,
        "baseline_seconds": round(baseline, 4),
        "off_seconds": round(off, 4),
        "metrics_seconds": round(metrics_level, 4),
        "strict_seconds": round(strict, 4),
        "off_overhead_pct": pct(off),
        "metrics_overhead_pct": pct(metrics_level),
        "strict_overhead_pct": pct(strict),
        "off_budget_pct": OFF_BUDGET_PCT,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if payload["off_overhead_pct"] > OFF_BUDGET_PCT:
        print(f"FAIL: validate=off costs "
              f"{payload['off_overhead_pct']}% (> {OFF_BUDGET_PCT}%)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
