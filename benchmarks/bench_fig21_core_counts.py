"""Figure 21: smaller meshes (4x4, 4x8) versus the default 8x8.

Paper: average execution-time improvements of 14% (4x4), 18% (4x8) and
20.5% (8x8) -- gains grow with the mesh because distances (and thus the
locality headroom) grow.
"""

from repro.analysis.tables import format_percent_table

MESHES = ((4, 4), (4, 8), (8, 8))


def test_fig21_core_counts(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in runner.apps:
            rows[app] = {}
            for mesh in MESHES:
                label = f"{mesh[0]}x{mesh[1]}"
                rows[app][label] = runner.pair(
                    app, interleaving="cache_line",
                    mesh=mesh).exec_time_reduction
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    labels = [f"{m[0]}x{m[1]}" for m in MESHES]
    averages = {lab: sum(r[lab] for r in rows.values()) / len(rows)
                for lab in labels}
    rows["average"] = averages
    text = format_percent_table(
        rows, labels,
        title="Figure 21: execution-time reduction per mesh size\n"
              "(paper: 14% at 4x4, 18% at 4x8, 20.5% at 8x8)")
    report("fig21_core_counts", text)

    benchmark.extra_info.update(averages)
    assert all(v > 0 for v in averages.values())
    # the big mesh gains at least as much as the small one
    assert averages["8x8"] > averages["4x4"] - 0.03
