"""Resilience: optimized-layout savings degrade gracefully with faults.

Injects seeded fault plans of rising severity (dead links, offline and
slowed controllers, page-pool pressure) into optimized runs and charts
how the execution-time savings over the *healthy* baseline erode.  The
claim under test is graceful degradation: no run crashes, the fabric's
degradation events are actually exercised, savings shrink smoothly as
severity rises (monotonic-ish decrease, no cliff), and even against a
baseline suffering the *same* faults the optimized layout never falls
into substantially negative savings.

(Faults hurt the unoptimized baseline at least as much as the optimized
run -- it spreads traffic across every controller, broken ones included
-- so the faulted-pair comparison is reported as a second column rather
than asserted monotone.)
"""

from repro.faults import FaultPlan, PagePressure
from repro.sim.run import RunSpec, run_simulation

APPS_SUBSET = ("swim", "galgel", "mgrid", "minimd")

# Severity ladder: fraction of links dead/degraded, controllers
# offline/slowed, and page pool lost per MC.
FAULT_RATES = (0.0, 0.02, 0.05, 0.10)
# Savings may wobble between adjacent severities (detours perturb the
# whole schedule); the guardrails are "no cliff", not strict
# monotonicity.
STEP_TOLERANCE = 0.05
NEGATIVE_FLOOR = -0.10


def _plans(config, seed: int) -> dict:
    """Nested severity ladder: each rate's faults are a prefix of the
    next rate's, so rising severity strictly adds faults (independent
    samples per rate would make adjacent severities incomparable)."""
    top = max(FAULT_RATES)
    master = FaultPlan.random(
        config.mesh_width, config.mesh_height, config.num_mcs,
        config.banks_per_mc, seed=seed,
        link_failure_rate=top, link_degradation_rate=top,
        degradation_factor=2.0,
        mc_offline_rate=top, slowdown_factor=2.0,
        bank_fault_rate=top, start=2000.0)

    def prefix(items, rate):
        keep = max(1, round(len(items) * rate / top))
        return items[:keep]

    plans = {0.0: None}
    for rate in FAULT_RATES:
        if rate == 0.0:
            continue
        plans[rate] = FaultPlan(
            seed=seed, name=f"rate={rate}",
            link_faults=prefix(master.link_faults, rate),
            link_degradations=prefix(master.link_degradations, rate),
            mc_faults=master.mc_faults,
            bank_faults=prefix(master.bank_faults, rate),
            page_pressure=tuple(
                PagePressure(mc, min(1.0, 4 * rate))
                for mc in range(config.num_mcs)))
    return plans


def test_resilience_degradation(benchmark, runner, report):
    config = runner.config(interleaving="page")

    def _run(program, *, optimized, plan):
        return run_simulation(RunSpec(
            program=program, config=config, optimized=optimized,
            fault_plan=plan, seed=17)).metrics

    plans = _plans(config, seed=17)

    def experiment():
        rows = {}
        for app in APPS_SUBSET:
            if app not in runner.apps:
                continue
            program = runner.program(app)
            healthy_base = _run(program, optimized=False, plan=None)
            savings, paired, events = [], [], []
            for rate in FAULT_RATES:
                plan = plans[rate]
                opt = _run(program, optimized=True, plan=plan)
                base = healthy_base if plan is None else \
                    _run(program, optimized=False, plan=plan)
                savings.append((healthy_base.exec_time - opt.exec_time)
                               / healthy_base.exec_time)
                paired.append((base.exec_time - opt.exec_time)
                              / base.exec_time)
                events.append(opt.fault_events)
            rows[app] = {"savings": savings, "paired": paired,
                         "events": events}
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = ["Resilience: optimized savings vs healthy baseline "
             "(paired savings in parentheses)",
             "app        " + "".join(f"{r:>16.0%}" for r in FAULT_RATES)]
    for app, r in rows.items():
        cells = "".join(f"{s:>8.1%} ({p:>5.1%})"
                        for s, p in zip(r["savings"], r["paired"]))
        lines.append(f"{app:<11}{cells}")
    report("resilience_degradation", "\n".join(lines))

    for app, r in rows.items():
        savings, paired, events = r["savings"], r["paired"], r["events"]
        # Faults were actually injected and absorbed, not ignored.
        assert events[0] == 0
        assert all(e > 0 for e in events[1:]), app
        # Monotonic-ish erosion of savings over the healthy baseline:
        # each severity step may wobble by the tolerance but never jumps
        # upward, and the heaviest rate saves no more than the healthy
        # machine.
        for before, after in zip(savings, savings[1:]):
            assert after <= before + STEP_TOLERANCE, (app, savings)
        assert savings[-1] <= savings[0], (app, savings)
        # No cliff: even vs a baseline suffering the same faults, the
        # optimized layout never goes substantially negative.
        assert all(p > NEGATIVE_FLOOR for p in paired), (app, paired)
