"""Fast-path speedups: hit-filtered event loop + sweep memoization.

Standalone script (not a pytest benchmark): records two headline
numbers to ``BENCH_fastpath.json`` at the repo root.

* ``single_run_speedup`` -- one full-scale optimized run, reference
  event loop vs the default hit-filtered fast loop
  (:mod:`repro.sim.fastpath`).  The ISSUE acceptance bound is >= 2x
  (``SINGLE_RUN_BOUND``): most accesses are L1/L2 hits, and the fast
  loop keeps them off the global heap entirely.
* ``sweep_speedup`` -- a small end-to-end grid, reference engine with
  the compile/trace memo disabled vs fast engine with the memo on
  (:mod:`repro.sim.memo`); this is the configuration every sweep runs
  by default, and it additionally reuses transform/trace artifacts
  across grid points that share them.

Both comparisons are median-of-repeats with a warmup run per engine,
and the engines are interleaved (A, B, A, B, ...) so clock drift hits
both pools equally.  The results are bit-identical across engines --
``tests/test_fastpath_equivalence.py`` pins that -- so this script
cross-checks one metrics field per pair as a cheap tripwire.

Usage::

    PYTHONPATH=src python benchmarks/bench_run_fastpath.py
    REPRO_BENCH_SCALE=0.5 REPRO_BENCH_REPEATS=3 PYTHONPATH=src \
        python benchmarks/bench_run_fastpath.py
"""

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro import MachineConfig, RunSpec, run_simulation
from repro.sim import memo
from repro.sim.sweep import Sweep
from repro.workloads import build_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
APP = os.environ.get("REPRO_BENCH_APP", "swim")
SWEEP_SCALE = float(os.environ.get("REPRO_BENCH_SWEEP_SCALE", "0.4"))
OUT = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"

#: ISSUE acceptance bound on the single-run speedup.
SINGLE_RUN_BOUND = 2.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_single_run(program, config):
    def run(engine):
        spec = RunSpec(program=program, config=config, optimized=True,
                       engine=engine)
        return run_simulation(spec).metrics

    memo.configure(enabled=False)  # isolate the event-loop cost
    try:
        for engine in ("reference", "fast"):
            run(engine)  # warmup
        pools = {"reference": [], "fast": []}
        for _ in range(REPEATS):
            for engine in ("reference", "fast"):
                seconds, metrics = _timed(lambda e=engine: run(e))
                pools[engine].append((seconds, metrics))
        ref_exec = pools["reference"][0][1].exec_time
        fast_exec = pools["fast"][0][1].exec_time
        if ref_exec != fast_exec:
            raise SystemExit(
                f"engines diverged: exec_time {ref_exec} (reference) "
                f"vs {fast_exec} (fast)")
        ref = statistics.median(s for s, _ in pools["reference"])
        fast = statistics.median(s for s, _ in pools["fast"])
    finally:
        memo.configure(enabled=True)
    return ref, fast


def bench_sweep(program, config):
    axes = {"mapping": ["M1", "M2"], "num_mcs": [4, 8]}

    def run(engine, memo_enabled):
        memo.configure(enabled=memo_enabled)
        try:
            sweep = Sweep(program, config, engine=engine)
            return sweep.run(**axes)
        finally:
            memo.configure(enabled=True)

    for engine, enabled in (("reference", False), ("fast", True)):
        run(engine, enabled)  # warmup
    ref_pool, fast_pool = [], []
    rows = {}
    for _ in range(REPEATS):
        seconds, points = _timed(lambda: run("reference", False))
        ref_pool.append(seconds)
        rows["reference"] = [p.row() for p in points]
        seconds, points = _timed(lambda: run("fast", True))
        fast_pool.append(seconds)
        rows["fast"] = [p.row() for p in points]
    if rows["reference"] != rows["fast"]:
        raise SystemExit("sweep rows diverged between engines")
    return statistics.median(ref_pool), statistics.median(fast_pool)


def main():
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    single_ref, single_fast = bench_single_run(
        build_workload(APP, SCALE), config)
    sweep_ref, sweep_fast = bench_sweep(
        build_workload(APP, SWEEP_SCALE), config)

    payload = {
        "benchmark": "run_fastpath",
        "app": APP,
        "scale": SCALE,
        "sweep_scale": SWEEP_SCALE,
        "repeats": REPEATS,
        "single_run": {
            "reference_seconds": round(single_ref, 4),
            "fast_seconds": round(single_fast, 4),
            "speedup": round(single_ref / single_fast, 2),
        },
        "sweep": {
            "axes": "mapping=M1,M2 x num_mcs=4,8",
            "reference_no_memo_seconds": round(sweep_ref, 4),
            "fast_memo_seconds": round(sweep_fast, 4),
            "speedup": round(sweep_ref / sweep_fast, 2),
        },
        "single_run_bound": SINGLE_RUN_BOUND,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if payload["single_run"]["speedup"] < SINGLE_RUN_BOUND:
        print(f"FAIL: single-run speedup "
              f"{payload['single_run']['speedup']}x "
              f"(< {SINGLE_RUN_BOUND}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
