"""Search headline: analytic screen vs simulate-everything.

Standalone script (not a pytest benchmark): records the search
subsystem's reason to exist to ``BENCH_search.json`` at the repo root.
The design-space search (:mod:`repro.search`) screens candidates with
the ``engine="analytic"`` cost model and re-simulates only the
frontier; this benchmark measures what that screen buys on the
canonical 4x4-mesh candidate sweep (named placements x mapping presets
x interleavings):

* ``analytic_seconds`` -- cost every candidate with
  ``engine="analytic"`` (what the search's screen phase does).
* ``simulate_seconds`` -- cost every candidate with ``engine="fast"``
  (what a search without the analytic tier would have to do).
* ``speedup`` -- the ratio; the ISSUE acceptance bound is >= 20x
  (``SPEEDUP_BOUND``).

Both pools are median-of-repeats with one warmup pass per engine
(which also warms the shared compile/trace memo), interleaved so clock
drift hits both equally.  Because each candidate is costed by both
engines, the per-candidate analytic error rides along for free and is
reported (median/max percent) -- the enforced bound lives in
``tests/test_search_analytic.py``.  A seeded two-run determinism check
(same seed -> byte-identical frontier CSV) is included as a tripwire;
the CI ``search-smoke`` job pins the same property.

Usage::

    PYTHONPATH=src python benchmarks/bench_search.py
    REPRO_BENCH_SCALE=0.5 REPRO_BENCH_REPEATS=2 PYTHONPATH=src \
        python benchmarks/bench_search.py
"""

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro import MachineConfig, RunSpec, run_simulation
from repro.search import CandidateSpace, run_search
from repro.workloads import build_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
APP = os.environ.get("REPRO_BENCH_APP", "swim")
MESH = int(os.environ.get("REPRO_BENCH_MESH", "4"))
OUT = Path(__file__).resolve().parent.parent / "BENCH_search.json"

#: ISSUE acceptance bound on the screen speedup.
SPEEDUP_BOUND = 20.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def cost_all(program, config, candidates, engine):
    """One full pass: cost every candidate with ``engine``; returns
    the per-candidate exec_time estimates, in candidate order."""
    cycles = []
    for candidate in candidates:
        spec = RunSpec(program=program, config=candidate.config(config),
                       mapping=candidate.resolve_mapping(config),
                       engine=engine)
        cycles.append(run_simulation(spec).metrics.exec_time)
    return cycles


def bench_screen(program, config, candidates):
    for engine in ("fast", "analytic"):
        cost_all(program, config, candidates, engine)  # warmup + memo
    pools = {"fast": [], "analytic": []}
    cycles = {}
    for _ in range(REPEATS):
        for engine in ("fast", "analytic"):
            seconds, result = _timed(
                lambda e=engine: cost_all(program, config,
                                          candidates, e))
            pools[engine].append(seconds)
            cycles[engine] = result
    errors = [abs(a - s) / max(s, 1.0) * 100.0
              for a, s in zip(cycles["analytic"], cycles["fast"])]
    return (statistics.median(pools["fast"]),
            statistics.median(pools["analytic"]), errors)


def check_determinism(program, config):
    """Same seed -> byte-identical frontier CSV, twice."""
    csvs = [run_search(program, config, mode="exhaustive", top_k=3,
                       seed=0).to_csv() for _ in range(2)]
    if csvs[0] != csvs[1]:
        raise SystemExit("seeded search is not deterministic: frontier "
                         "CSVs differ between identical runs")
    return csvs[0]


def main():
    config = MachineConfig.scaled_default().with_(
        mesh_width=MESH, mesh_height=MESH, interleaving="cache_line")
    program = build_workload(APP, SCALE)
    candidates = list(CandidateSpace(config, "named").enumerate())

    sim_s, analytic_s, errors = bench_screen(program, config,
                                             candidates)
    frontier_csv = check_determinism(program, config)

    payload = {
        "benchmark": "search",
        "app": APP,
        "scale": SCALE,
        "mesh": f"{MESH}x{MESH}",
        "repeats": REPEATS,
        "candidates": len(candidates),
        "simulate_seconds": round(sim_s, 4),
        "analytic_seconds": round(analytic_s, 4),
        "speedup": round(sim_s / analytic_s, 2),
        "speedup_bound": SPEEDUP_BOUND,
        "error_pct": {
            "median": round(statistics.median(errors), 2),
            "max": round(max(errors), 2),
        },
        "frontier_deterministic": True,
        "frontier_rows": frontier_csv.count("\n") - 1,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if payload["speedup"] < SPEEDUP_BOUND:
        print(f"FAIL: analytic-screen speedup {payload['speedup']}x "
              f"(< {SPEEDUP_BOUND}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
