"""Figure 4: the idealized optimal scheme's headroom.

Paper (page interleaving): the optimal scheme -- every miss served by
the nearest controller with no bank contention -- reduces on-chip
network latency by 20.8%, off-chip network latency by 68.2%, off-chip
memory latency by 45.6% and execution time by 19.5% on average.
"""

from repro.analysis.tables import format_percent_table, improvement_summary

COLUMNS = ["onchip_net", "offchip_net", "offchip_mem", "exec_time"]


def test_fig04_optimal_scheme(benchmark, runner, report):
    def experiment():
        return {app: runner.optimal_pair(app, interleaving="page")
                for app in runner.apps}

    comparisons = benchmark.pedantic(experiment, rounds=1, iterations=1)
    summary = improvement_summary(comparisons)
    text = format_percent_table(
        summary, COLUMNS,
        title="Figure 4: optimal-scheme reductions (page interleaving)\n"
              "paper averages: onchip_net 20.8%, offchip_net 68.2%, "
              "offchip_mem 45.6%, exec_time 19.5%")
    report("fig04_optimal", text)

    avg = summary["average"]
    for key in COLUMNS:
        benchmark.extra_info[key] = avg[key]
    # Shape: every metric improves on average, substantially for the
    # latency metrics.  (The paper's off-chip network reduction towers
    # over the on-chip one; in our model the on-chip average also drops
    # a lot because the optimal scheme removes the off-chip traffic's
    # link contention, so we assert magnitudes rather than the exact
    # ordering -- see EXPERIMENTS.md.)
    assert all(avg[k] > 0 for k in COLUMNS)
    assert avg["offchip_net"] > 0.25
    assert avg["offchip_net"] > avg["onchip_net"] - 0.1
    assert avg["offchip_mem"] > 0.2
    assert avg["exec_time"] > 0.05
