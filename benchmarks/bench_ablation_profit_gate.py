"""Ablation: the profitability gate on reference satisfaction.

Without the gate, an array whose hot references are unpartitionable can
still be transformed to please a tiny compatible sweep (art's shared
weight table and its initialization loop) -- destroying the hot loops'
locality.  This ablation measures the damage the gate prevents.
"""

from repro.core.pipeline import LayoutTransformer
from repro.program.address_space import AddressSpace
from repro.program.trace import generate_traces
from repro.sim.run import RunSpec, run_simulation
from repro.sim.system import SystemSimulator, build_streams

APP = "art"


def test_ablation_profit_gate(benchmark, runner, report):
    def experiment():
        config = runner.config(interleaving="cache_line")
        mapping = runner.mapping(config)
        program = runner.program(APP)
        base = runner.metrics(APP, interleaving="cache_line")
        gated = runner.metrics(APP, optimized=True,
                               interleaving="cache_line")

        # Ungated run: min_satisfaction = 0 lets the bad layout through.
        transformer = LayoutTransformer(config, mapping,
                                        min_satisfaction=0.0)
        result = transformer.run(program)
        space = AddressSpace(config)
        bases = space.place_all(result.layouts)
        traces = generate_traces(program, result.layouts, bases, 64)
        vtraces = [t.vaddrs for t in traces]
        gaps = [t.gaps for t in traces]
        cores = mapping.core_order
        streams = build_streams(config, cores, vtraces, vtraces, gaps)
        sim = SystemSimulator(config, mapping)
        ungated = sim.run(streams,
                          transform_overhead=config.transform_overhead)
        return base, gated, ungated, result

    base, gated, ungated, result = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    gated_red = 1 - gated.exec_time / base.exec_time
    ungated_red = 1 - ungated.exec_time / base.exec_time
    text = "\n".join([
        f"Ablation: profitability gate ({APP})",
        f"gated exec reduction:   {gated_red:7.1%}",
        f"ungated exec reduction: {ungated_red:7.1%}",
        f"ungated transforms WGT despite satisfaction "
        f"{result.plans['WGT'].mapping_result.satisfaction:.1%}",
    ])
    report("ablation_profit_gate", text)

    benchmark.extra_info["gated"] = gated_red
    benchmark.extra_info["ungated"] = ungated_red
    assert result.plans["WGT"].optimized  # the gate was off
    assert gated_red > ungated_red  # the gate prevents the damage
