"""Ablation: the indexed-approximation error gate (Section 5.4).

The paper skips references whose affine approximation is too inaccurate
(">30%").  This ablation forces ammp's random nonbonded pair list
through the pass (gate = infinity) and compares against the gated run.
"""

from repro.core.pipeline import LayoutTransformer
from repro.program.address_space import AddressSpace
from repro.program.trace import generate_traces
from repro.sim.system import SystemSimulator, build_streams

APP = "ammp"


def test_ablation_indexed_gate(benchmark, runner, report):
    def experiment():
        config = runner.config(interleaving="cache_line")
        mapping = runner.mapping(config)
        program = runner.program(APP)
        base = runner.metrics(APP, interleaving="cache_line")
        gated = runner.metrics(APP, optimized=True,
                               interleaving="cache_line")

        transformer = LayoutTransformer(config, mapping,
                                        error_gate=float("inf"))
        result = transformer.run(program)
        space = AddressSpace(config)
        bases = space.place_all(result.layouts)
        traces = generate_traces(program, result.layouts, bases, 64)
        vtraces = [t.vaddrs for t in traces]
        gaps = [t.gaps for t in traces]
        streams = build_streams(config, mapping.core_order, vtraces,
                                vtraces, gaps)
        ungated = SystemSimulator(config, mapping).run(
            streams, transform_overhead=config.transform_overhead)
        rejected = sum(1 for p in result.plans.values()
                       for a in p.approximations if a.rejected)
        return base, gated, ungated, rejected

    base, gated, ungated, rejected = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    gated_red = 1 - gated.exec_time / base.exec_time
    ungated_red = 1 - ungated.exec_time / base.exec_time
    text = "\n".join([
        f"Ablation: indexed-approximation error gate ({APP})",
        f"gated exec reduction (30% gate): {gated_red:7.1%}",
        f"gate disabled:                   {ungated_red:7.1%}",
    ])
    report("ablation_indexed_gate", text)

    benchmark.extra_info["gated"] = gated_red
    benchmark.extra_info["ungated"] = ungated_red
    assert rejected == 0  # nothing is rejected without the gate
    # accepting the random approximation must not *help*
    assert gated_red >= ungated_red - 0.03
