"""Figure 15: CDF of links traversed by on-chip and off-chip requests.

Paper: pooling all applications, the optimization shifts the off-chip
CDF left (e.g. requests using <= 4 links go from 22% to 31%) while the
on-chip CDF barely moves -- so on-chip latency gains come from reduced
contention, not shorter paths.
"""

from repro.analysis.cdf import cdf_rows, pooled_hop_cdf
from repro.analysis.plots import cdf_plot


def test_fig15_hop_cdf(benchmark, runner, report):
    def experiment():
        base_runs = [runner.metrics(app, interleaving="page")
                     for app in runner.apps]
        opt_runs = [runner.metrics(app, optimized=True,
                                   interleaving="page")
                    for app in runner.apps]
        return {
            "off_base": pooled_hop_cdf(base_runs, "offchip"),
            "off_opt": pooled_hop_cdf(opt_runs, "offchip"),
            "on_base": pooled_hop_cdf(base_runs, "onchip"),
            "on_opt": pooled_hop_cdf(opt_runs, "onchip"),
        }

    cdfs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    max_hops = 16
    lines = ["Figure 15: CDF of links traversed (all applications pooled)",
             f"{'hops':>4}{'off orig':>10}{'off opt':>10}"
             f"{'on orig':>10}{'on opt':>10}"]
    series = {k: cdf_rows(v, max_hops) for k, v in cdfs.items()}
    for h in range(max_hops + 1):
        lines.append(f"{h:>4}{series['off_base'][h]:>10.2f}"
                     f"{series['off_opt'][h]:>10.2f}"
                     f"{series['on_base'][h]:>10.2f}"
                     f"{series['on_opt'][h]:>10.2f}")
    lines.append("")
    lines.append(cdf_plot({"off orig": series["off_base"],
                           "off opt": series["off_opt"]},
                          title="off-chip requests: CDF of links"))
    report("fig15_hop_cdf", "\n".join(lines))

    at4_base = series["off_base"][4]
    at4_opt = series["off_opt"][4]
    benchmark.extra_info["offchip_leq4_base"] = at4_base
    benchmark.extra_info["offchip_leq4_opt"] = at4_opt
    # More off-chip requests use few links after optimization (22% ->
    # 31% at <= 4 links in the paper).
    assert at4_opt > at4_base
    # On-chip distances move much less than off-chip distances.
    off_shift = at4_opt - at4_base
    on_shift = abs(series["on_opt"][4] - series["on_base"][4])
    assert off_shift > 0.05
