"""Ablation: the shared-L2 delta-skip (off-chip localization).

DESIGN.md calls out the shared-L2 tradeoff: the delta-skip relocates a
minority of threads' home banks so their lines' controllers become
acceptable, trading a little on-chip locality for off-chip locality.
This ablation runs the shared-L2 suite with and without it.
"""

from repro.analysis.tables import format_percent_table

APPS_SUBSET = ("swim", "galgel", "apsi", "minimd")


def test_ablation_delta_skip(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in APPS_SUBSET:
            if app not in runner.apps:
                continue
            with_skip = runner.pair(app, interleaving="cache_line",
                                    shared=True)
            without = runner.pair(app, interleaving="cache_line",
                                  shared=True, localize_offchip=False)
            rows[app] = {
                "with_skip": with_skip.exec_time_reduction,
                "onchip_only": without.exec_time_reduction,
                "skip_offnet": with_skip.offchip_net_reduction,
                "pure_offnet": without.offchip_net_reduction,
            }
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_percent_table(
        rows, ["with_skip", "onchip_only", "skip_offnet", "pure_offnet"],
        title="Ablation: shared-L2 delta-skip on/off "
              "(exec reduction and off-chip net reduction)")
    report("ablation_delta_skip", text)

    # both variants beat the baseline; the tradeoff is small either way
    for app, r in rows.items():
        assert r["with_skip"] > -0.05
        assert r["onchip_only"] > -0.05
