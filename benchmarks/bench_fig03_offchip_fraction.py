"""Figure 3: contribution of off-chip accesses to total data accesses.

Paper: 8x8 mesh, private L2s, page interleaving; off-chip accesses are
on average 22.4% of the total (dynamic) data accesses, with wide
per-application spread.
"""


def test_fig03_offchip_fraction(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in runner.apps:
            m = runner.metrics(app, interleaving="page")
            rows[app] = m.offchip_fraction
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    average = sum(rows.values()) / len(rows)
    lines = ["Figure 3: off-chip share of total data accesses "
             "(page interleaving, private L2)",
             f"{'benchmark':<12}{'off-chip fraction':>20}"]
    for app, frac in rows.items():
        lines.append(f"{app:<12}{frac:>19.1%}")
    lines.append(f"{'average':<12}{average:>19.1%}   (paper: 22.4%)")
    report("fig03_offchip_fraction", "\n".join(lines))

    benchmark.extra_info["average_offchip_fraction"] = average
    assert 0.10 < average < 0.35  # the paper's ballpark
    assert all(f > 0 for f in rows.values())
