"""Observability overhead: obs=off vs spans vs full.

Standalone script (not a pytest benchmark): times repeated optimized
runs of one workload at each observability level and records the
relative overheads to ``BENCH_obs.json`` at the repo root.  The
headline number is ``off_overhead_pct`` -- the cost of merely *having*
the instrumentation compiled in with observation disabled, which must
stay under ``OFF_BUDGET_PCT``: the disabled path is one context-var
read per instrumented phase boundary and one ``is not None`` test per
MC/NoC event, so it should be indistinguishable from noise.

Baseline and off samples are interleaved (alternating runs) so slow
clock drift or thermal throttling hits both pools equally instead of
biasing the comparison.  Every level gets a warmup run before its
timed pool, and the reported overhead percentages are clamped at zero:
a negative median difference just means the overhead is below the
noise floor, and reporting "-2%" as if instrumentation sped the
simulator up is noise masquerading as signal.  The raw (unclamped)
values are kept alongside under ``raw_overhead_pct`` for honesty.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    REPRO_BENCH_SCALE=0.3 PYTHONPATH=src \
        python benchmarks/bench_obs_overhead.py
"""

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro import MachineConfig, RunSpec, run_simulation
from repro.workloads import build_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "9"))
APP = os.environ.get("REPRO_BENCH_APP", "swim")
OUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Tolerated obs=off overhead (the ISSUE acceptance bound).
OFF_BUDGET_PCT = 1.0


def one_run(program, config, level):
    spec = RunSpec(program=program, config=config, optimized=True,
                   obs=level)
    start = time.perf_counter()
    run_simulation(spec)
    return time.perf_counter() - start


def timed_runs(program, config, level):
    one_run(program, config, level)  # warmup: JIT-free but allocator-
    # and branch-predictor-warm, and obs buffers preallocated
    return statistics.median(one_run(program, config, level)
                             for _ in range(REPEATS))


def main():
    program = build_workload(APP, SCALE)
    config = MachineConfig.scaled_default()
    for _ in range(2):  # warm the allocator and code paths
        one_run(program, config, "off")

    # Interleaved baseline/off samples: pool A and pool B are both
    # obs=off, drawn alternately; their difference is the noise floor
    # the off-overhead claim is judged against.
    pool_a, pool_b = [], []
    for _ in range(REPEATS):
        pool_a.append(one_run(program, config, "off"))
        pool_b.append(one_run(program, config, "off"))
    baseline = statistics.median(pool_a)
    off = statistics.median(pool_b)
    spans = timed_runs(program, config, "spans")
    full = timed_runs(program, config, "full")

    def raw_pct(level_s):
        return round(100.0 * (level_s - baseline) / baseline, 2)

    def pct(level_s):
        # A negative median difference means "below the noise floor",
        # not a speedup; clamp so the headline can't go negative.
        return max(0.0, raw_pct(level_s))

    payload = {
        "benchmark": "obs_overhead",
        "app": APP,
        "scale": SCALE,
        "repeats": REPEATS,
        "baseline_seconds": round(baseline, 4),
        "off_seconds": round(off, 4),
        "spans_seconds": round(spans, 4),
        "full_seconds": round(full, 4),
        "off_overhead_pct": pct(off),
        "spans_overhead_pct": pct(spans),
        "full_overhead_pct": pct(full),
        "raw_overhead_pct": {
            "off": raw_pct(off),
            "spans": raw_pct(spans),
            "full": raw_pct(full),
        },
        "off_budget_pct": OFF_BUDGET_PCT,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if payload["off_overhead_pct"] > OFF_BUDGET_PCT:
        print(f"FAIL: obs=off costs {payload['off_overhead_pct']}% "
              f"(> {OFF_BUDGET_PCT}%)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
