"""Figure 16: the layout transformation under cache-line interleaving.

Paper averages: on-chip network latency -13.6%, off-chip network
latency -66.4%, off-chip memory latency -45.8%, execution time -20.5%.
This is the paper's default configuration for the remaining figures.
"""

from repro.analysis.tables import format_percent_table, improvement_summary

COLUMNS = ["onchip_net", "offchip_net", "offchip_mem", "exec_time"]


def test_fig16_cacheline_interleaving(benchmark, runner, report):
    def experiment():
        return {app: runner.pair(app, interleaving="cache_line")
                for app in runner.apps}

    comparisons = benchmark.pedantic(experiment, rounds=1, iterations=1)
    summary = improvement_summary(comparisons)
    text = format_percent_table(
        summary, COLUMNS,
        title="Figure 16: reductions under cache-line interleaving\n"
              "paper averages: onchip_net 13.6%, offchip_net 66.4%, "
              "offchip_mem 45.8%, exec_time 20.5%")
    report("fig16_cacheline_interleaving", text)

    avg = summary["average"]
    for key in COLUMNS:
        benchmark.extra_info[key] = avg[key]
    assert avg["offchip_net"] > 0.15
    assert avg["offchip_mem"] > 0.2
    assert avg["exec_time"] > 0.08
    # the paper finds relative savings slightly higher than under page
    # interleaving; we check the weaker, robust property: both positive.
