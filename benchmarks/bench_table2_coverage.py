"""Table 2: arrays optimized and references satisfied per application.

Paper: the fraction of arrays the pass could transform and the fraction
of (dynamic) references satisfied by the chosen layouts; arrays escape
optimization when they are accessed through unapproximable index arrays
or independently of the parallel loop.
"""

from repro.core.pipeline import LayoutTransformer


def test_table2_coverage(benchmark, runner, report):
    def experiment():
        config = runner.config(interleaving="cache_line")
        transformer = LayoutTransformer(config)
        rows = {}
        for app in runner.apps:
            result = transformer.run(runner.program(app))
            rejected = sum(1 for p in result.plans.values()
                           for a in p.approximations if a.rejected)
            rows[app] = (result.pct_arrays_optimized,
                         result.pct_refs_satisfied, rejected)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["Table 2: pass coverage per application",
             f"{'benchmark':<12}{'arrays optimized':>18}"
             f"{'refs satisfied':>16}{'rejected idx':>14}"]
    for app, (arrays, refs, rejected) in rows.items():
        lines.append(f"{app:<12}{arrays:>17.0%}{refs:>15.0%}"
                     f"{rejected:>14d}")
    avg_arrays = sum(r[0] for r in rows.values()) / len(rows)
    avg_refs = sum(r[1] for r in rows.values()) / len(rows)
    lines.append(f"{'average':<12}{avg_arrays:>17.0%}{avg_refs:>15.0%}")
    report("table2_coverage", "\n".join(lines))

    benchmark.extra_info["avg_arrays_optimized"] = avg_arrays
    benchmark.extra_info["avg_refs_satisfied"] = avg_refs
    # most arrays optimize; satisfaction is high but below 100%
    assert avg_arrays > 0.8
    assert 0.6 < avg_refs <= 1.0
    if "art" in rows:
        assert rows["art"][0] < 1.0      # the shared weight table
    if "ammp" in rows:
        assert rows["ammp"][2] >= 1      # the random nonbonded pairs
