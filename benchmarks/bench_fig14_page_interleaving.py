"""Figure 14: the layout transformation under page interleaving.

Paper averages: on-chip network latency -12.1%, off-chip network
latency -62.8%, off-chip memory latency -41.9%, execution time -17.1%
(with OS-assisted page allocation honoring the compiler's hints).
"""

from repro.analysis.tables import format_percent_table, improvement_summary

COLUMNS = ["onchip_net", "offchip_net", "offchip_mem", "exec_time"]


def test_fig14_page_interleaving(benchmark, runner, report):
    def experiment():
        return {app: runner.pair(app, interleaving="page")
                for app in runner.apps}

    comparisons = benchmark.pedantic(experiment, rounds=1, iterations=1)
    summary = improvement_summary(comparisons)
    text = format_percent_table(
        summary, COLUMNS,
        title="Figure 14: reductions under page interleaving\n"
              "paper averages: onchip_net 12.1%, offchip_net 62.8%, "
              "offchip_mem 41.9%, exec_time 17.1%")
    report("fig14_page_interleaving", text)

    avg = summary["average"]
    for key in COLUMNS:
        benchmark.extra_info[key] = avg[key]
    assert avg["offchip_net"] > 0.1
    # Page-granularity placement already aligns DRAM rows with pages, so
    # the row-buffer half of the memory-latency gain is mostly priced
    # into the baseline; we only require no regression on average.
    assert avg["offchip_mem"] > -0.05
    assert avg["exec_time"] > 0.0
