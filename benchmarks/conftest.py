"""Shared benchmark infrastructure.

Every benchmark module regenerates one table or figure of the paper's
evaluation.  They share a session-scoped :class:`ExperimentRunner` that
memoizes simulation runs, because many figures reuse the same baseline
and optimized executions (Figures 3, 4, 13 and 14 all build on the
page-interleaved private-L2 runs, for example).

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- workload scale factor (default 1.0); use 0.5
  for a quick smoke pass.
* ``REPRO_BENCH_APPS`` -- comma-separated subset of applications.
"""

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

import pytest

from repro import MachineConfig, mapping_m1, mapping_m2
from repro.arch.clustering import balanced_mapping, grid_mapping
from repro.sim.metrics import Comparison, RunMetrics
from repro.sim.run import RunResult, RunSpec, run_simulation
from repro.workloads import SUITE_ORDER, build_workload

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_apps() -> Tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_APPS", "")
    if raw.strip():
        return tuple(name.strip() for name in raw.split(","))
    return SUITE_ORDER


class ExperimentRunner:
    """Memoizing front-end over :func:`repro.sim.run.run_simulation`."""

    def __init__(self):
        self.scale = bench_scale()
        self.apps = bench_apps()
        self._programs: Dict[str, object] = {}
        self._runs: Dict[tuple, RunResult] = {}

    def program(self, app: str):
        if app not in self._programs:
            self._programs[app] = build_workload(app, self.scale)
        return self._programs[app]

    def config(self, *, interleaving: str = "cache_line",
               shared: bool = False, placement: str = "P1",
               num_mcs: int = 4, mesh: Tuple[int, int] = (8, 8),
               threads_per_core: int = 1) -> MachineConfig:
        return MachineConfig.scaled_default().with_(
            interleaving=interleaving, shared_l2=shared,
            mc_placement=placement, num_mcs=num_mcs,
            mesh_width=mesh[0], mesh_height=mesh[1],
            threads_per_core=threads_per_core)

    def mapping(self, config: MachineConfig, name: str = "M1"):
        mesh = config.mesh()
        nodes = config.mc_nodes(mesh)
        if name == "M2":
            return mapping_m2(mesh, nodes)
        if config.mc_placement != "P1":
            # grid quadrants straddle non-corner controllers; use the
            # balanced-Voronoi clustering instead (see Figure 19)
            return balanced_mapping(mesh, nodes, name="M1")
        if name == "M1" and config.num_mcs != 4:
            return grid_mapping(mesh, nodes, config.num_mcs, name="M1")
        return mapping_m1(mesh, nodes)

    def run(self, app: str, *, optimized: bool = False,
            optimal: bool = False, page_policy: str = "auto",
            mapping: str = "M1", localize_offchip: bool = True,
            **config_kw) -> RunResult:
        key = (app, optimized, optimal, page_policy, mapping,
               localize_offchip, tuple(sorted(config_kw.items())))
        if key not in self._runs:
            config = self.config(**config_kw)
            spec = RunSpec(program=self.program(app), config=config,
                           mapping=self.mapping(config, mapping),
                           optimized=optimized, optimal=optimal,
                           page_policy=page_policy,
                           localize_offchip=localize_offchip)
            self._runs[key] = run_simulation(spec)
        return self._runs[key]

    def metrics(self, app: str, **kw) -> RunMetrics:
        return self.run(app, **kw).metrics

    def pair(self, app: str, **kw) -> Comparison:
        base = self.metrics(app, optimized=False, **kw)
        opt = self.metrics(app, optimized=True, **kw)
        return Comparison(base, opt)

    def optimal_pair(self, app: str, **kw) -> Comparison:
        base = self.metrics(app, optimized=False, **kw)
        opt = self.metrics(app, optimal=True, **kw)
        return Comparison(base, opt)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture()
def report(capsys):
    """Print a result table so it survives pytest's capture, and archive
    it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}")

    return _report
