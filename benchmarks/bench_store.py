"""Persistent result store: write overhead and warm-replay speedup.

Standalone script (not a pytest benchmark): records the cost model of
:mod:`repro.store` to ``BENCH_store.json`` at the repo root.

* ``put_overhead`` -- a cold sweep with ``store=`` vs without.  Every
  grid point pays one durable record write (fsync file + dir), so this
  is the price of crash-safety on first execution.  The bound is loose
  (``PUT_OVERHEAD_BOUND``): the write must stay small next to the
  simulation itself.
* ``warm_speedup`` -- the same sweep again over the now-populated
  store.  Every point replays from a record instead of simulating, so
  this is the headline payoff; the acceptance bound is
  ``WARM_SPEEDUP_BOUND``.
* ``single_replay`` -- one optimized ``api.run`` cold vs warm, the
  store-backed analogue of the memo fast path but durable across
  processes.

Cold/warm rows and metrics are cross-checked for bit-identity as a
cheap tripwire (tests/test_store.py pins the full contract).

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py
    REPRO_BENCH_SCALE=0.5 REPRO_BENCH_REPEATS=3 PYTHONPATH=src \
        python benchmarks/bench_store.py
"""

import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro import MachineConfig
from repro.sim import memo
from repro.store import reset_instances
from repro.workloads import build_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
APP = os.environ.get("REPRO_BENCH_APP", "swim")
OUT = Path(__file__).resolve().parent.parent / "BENCH_store.json"

AXES = {"mapping": ["M1", "M2"], "num_mcs": [4, 8]}

#: Acceptance bounds: durable writes must cost < 50% extra on a cold
#: sweep at bench scale, and a fully warm store must replay the sweep
#: at least 3x faster than re-simulating it.
PUT_OVERHEAD_BOUND = 1.5
WARM_SPEEDUP_BOUND = 3.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _fresh(root=None):
    """Store reads replace simulation, so the memo must not hide the
    simulation cost we compare against; clear both between trials."""
    memo.configure(enabled=True)
    reset_instances()
    if root is not None:
        import shutil
        shutil.rmtree(root, ignore_errors=True)


def _metrics_equal(a, b):
    for name, x in vars(a).items():
        y = getattr(b, name)
        if isinstance(x, np.ndarray):
            if not np.array_equal(x, y):
                return False
        elif x != y:
            return False
    return True


def bench_sweep(program, config, workdir):
    root = str(Path(workdir) / "sweep-store")

    def cold_plain():
        _fresh()
        return repro.sweep(program, config=config, **AXES)

    def cold_store():
        _fresh(root)
        return repro.sweep(program, config=config, store=root, **AXES)

    def warm_store():
        memo.configure(enabled=True)
        reset_instances()
        return repro.sweep(program, config=config, store=root, **AXES)

    cold_plain(); cold_store(); warm_store()  # warmup all three paths
    plain_pool, cold_pool, warm_pool = [], [], []
    rows = {}
    for _ in range(REPEATS):
        seconds, result = _timed(cold_plain)
        plain_pool.append(seconds)
        rows["plain"] = result.to_csv()
        seconds, result = _timed(cold_store)
        cold_pool.append(seconds)
        rows["cold"] = result.to_csv()
        if result.store_hits != 0:
            raise SystemExit("cold sweep unexpectedly hit the store")
        seconds, result = _timed(warm_store)
        warm_pool.append(seconds)
        rows["warm"] = result.to_csv()
        if result.store_misses != 0:
            raise SystemExit("warm sweep missed a populated store")
    if not (rows["plain"] == rows["cold"] == rows["warm"]):
        raise SystemExit("sweep CSVs diverged across store modes")
    return (statistics.median(plain_pool),
            statistics.median(cold_pool),
            statistics.median(warm_pool))


def bench_single(program, config, workdir):
    root = str(Path(workdir) / "run-store")

    def cold():
        _fresh(root)
        return repro.run(program=program, config=config, optimized=True,
                         store=root)

    def warm():
        memo.configure(enabled=True)
        reset_instances()
        return repro.run(program=program, config=config, optimized=True,
                         store=root)

    cold(); warm()  # warmup
    cold_pool, warm_pool = [], []
    for _ in range(REPEATS):
        seconds, cold_result = _timed(cold)
        cold_pool.append(seconds)
        seconds, warm_result = _timed(warm)
        warm_pool.append(seconds)
        if not _metrics_equal(cold_result.metrics, warm_result.metrics):
            raise SystemExit("warm replay metrics diverged from cold run")
    return statistics.median(cold_pool), statistics.median(warm_pool)


def main():
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    program = build_workload(APP, SCALE)
    with tempfile.TemporaryDirectory(prefix="bench-store-") as workdir:
        plain, cold, warm = bench_sweep(program, config, workdir)
        single_cold, single_warm = bench_single(program, config, workdir)
    reset_instances()  # drop handles into the deleted tempdir

    payload = {
        "benchmark": "store",
        "app": APP,
        "scale": SCALE,
        "repeats": REPEATS,
        "sweep": {
            "axes": "mapping=M1,M2 x num_mcs=4,8",
            "plain_seconds": round(plain, 4),
            "cold_store_seconds": round(cold, 4),
            "warm_store_seconds": round(warm, 4),
            "put_overhead": round(cold / plain, 2),
            "warm_speedup": round(plain / warm, 2),
        },
        "single_run": {
            "cold_seconds": round(single_cold, 4),
            "warm_seconds": round(single_warm, 4),
            "warm_speedup": round(single_cold / single_warm, 2),
        },
        "put_overhead_bound": PUT_OVERHEAD_BOUND,
        "warm_speedup_bound": WARM_SPEEDUP_BOUND,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    failed = False
    if payload["sweep"]["put_overhead"] > PUT_OVERHEAD_BOUND:
        print(f"FAIL: store put overhead "
              f"{payload['sweep']['put_overhead']}x "
              f"(> {PUT_OVERHEAD_BOUND}x)", file=sys.stderr)
        failed = True
    if payload["sweep"]["warm_speedup"] < WARM_SPEEDUP_BOUND:
        print(f"FAIL: warm sweep speedup "
              f"{payload['sweep']['warm_speedup']}x "
              f"(< {WARM_SPEEDUP_BOUND}x)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
