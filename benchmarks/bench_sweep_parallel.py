"""Reference sweep: serial vs. process-pool execution.

Standalone script (not a pytest benchmark): runs the reference design-
space sweep once with ``workers=1`` and once with ``workers=4``,
asserts the two CSVs are byte-identical, and records wall-clock
timings plus the machine's CPU count to ``BENCH_sweep.json`` at the
repo root.  The speedup is an honest measurement -- on a single-core
container the pool pays fork/IPC overhead and cannot beat serial; the
recorded ``cpu_count`` says which regime the number came from.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py
    REPRO_BENCH_SCALE=0.3 PYTHONPATH=src \
        python benchmarks/bench_sweep_parallel.py
"""

import json
import os
import sys
import time
from pathlib import Path

from repro import MachineConfig
from repro.sim.sweep import Sweep, to_csv
from repro.workloads import build_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
PARALLEL_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
AXES = dict(mapping=["M1", "M2", "voronoi"],
            num_mcs=[4, 8],
            interleaving=["page", "cache_line"])
OUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def timed_sweep(program, config, workers):
    sweep = Sweep(program, config, workers=workers)
    start = time.perf_counter()
    points = sweep.run(**AXES)
    return time.perf_counter() - start, to_csv(points)


def main():
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    grid = 1
    for values in AXES.values():
        grid *= len(values)

    serial_s, serial_csv = timed_sweep(program, config, workers=1)
    parallel_s, parallel_csv = timed_sweep(program, config,
                                           workers=PARALLEL_WORKERS)
    identical = parallel_csv == serial_csv
    payload = {
        "benchmark": "reference_sweep_parallel",
        "app": "swim",
        "scale": SCALE,
        "axes": {name: list(values) for name, values in AXES.items()},
        "grid_points": grid,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_s, 3),
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "csv_byte_identical": identical,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not identical:
        print("FAIL: parallel CSV differs from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
