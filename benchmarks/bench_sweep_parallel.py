"""Reference sweep: serial vs. process-pool execution.

Standalone script (not a pytest benchmark): runs the reference design-
space sweep once with ``workers=1`` and once with ``workers=N``,
asserts the two CSVs are byte-identical, and records wall-clock
timings, the shared-artifact-plane and steal-queue counters, and the
machine's CPU count to ``BENCH_sweep.json`` at the repo root.

Honesty rules, enforced here rather than left to the reader:

* The memo cache is cleared before every timed run.  Pool workers are
  forked, so a warm parent memo would be inherited by every worker and
  flatter the parallel timing with work the serial run had to do.
* The headline number is ``per_core_efficiency``: measured speedup
  divided by the cores the pool could actually use
  (``min(workers, cpu_count)``).  A raw "speedup" from a 4-worker pool
  time-slicing one core is meaningless.
* On a single-core machine no speedup is possible, only overhead -- the
  record then carries ``skipped: true`` with the reason, and no
  efficiency bound is applied (the CSV identity check still is).
* With two or more cores the bench *fails* (exit 1) below 0.8x
  per-core efficiency -- scaling regressions break the build instead
  of quietly shipping a smaller number.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py
    REPRO_BENCH_SCALE=0.3 REPRO_BENCH_WORKERS=2 PYTHONPATH=src \
        python benchmarks/bench_sweep_parallel.py
"""

import json
import os
import sys
import time
from pathlib import Path

from repro import MachineConfig
from repro.sim import memo
from repro.sim.executor import reset_steal_stats, steal_stats
from repro.sim.shm import reset_shm_stats, shm_stats
from repro.sim.sweep import Sweep, to_csv
from repro.workloads import build_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
PARALLEL_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
EFFICIENCY_BOUND = 0.8
AXES = dict(mapping=["M1", "M2", "voronoi"],
            num_mcs=[4, 8],
            interleaving=["page", "cache_line"])
OUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def timed_sweep(program, config, workers):
    memo.cache.clear()  # forked workers inherit the parent cache
    sweep = Sweep(program, config, workers=workers)
    start = time.perf_counter()
    points = sweep.run(**AXES)
    return time.perf_counter() - start, to_csv(points)


def main():
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    grid = 1
    for values in AXES.values():
        grid *= len(values)
    cpu_count = os.cpu_count() or 1
    usable_cores = min(PARALLEL_WORKERS, cpu_count)

    serial_s, serial_csv = timed_sweep(program, config, workers=1)
    reset_shm_stats()
    reset_steal_stats()
    parallel_s, parallel_csv = timed_sweep(program, config,
                                           workers=PARALLEL_WORKERS)
    identical = parallel_csv == serial_csv
    speedup = serial_s / parallel_s
    efficiency = speedup / usable_cores
    single_core = cpu_count < 2
    payload = {
        "benchmark": "reference_sweep_parallel",
        "app": "swim",
        "scale": SCALE,
        "axes": {name: list(values) for name, values in AXES.items()},
        "grid_points": grid,
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_s, 3),
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_seconds": round(parallel_s, 3),
        "csv_byte_identical": identical,
        "shm": shm_stats(),
        "steal": steal_stats(),
        "efficiency_bound": EFFICIENCY_BOUND,
    }
    if single_core:
        # A pool on one core can only time-slice; publishing a
        # "speedup" from that regime would be noise presented as data.
        payload["skipped"] = True
        payload["skip_reason"] = (
            "cpu_count=1: parallel speedup is unmeasurable on a "
            "single-core machine; only the CSV identity and "
            "overhead are recorded")
        payload["parallel_overhead"] = round(parallel_s / serial_s, 3)
    else:
        payload["skipped"] = False
        payload["speedup"] = round(speedup, 3)
        payload["usable_cores"] = usable_cores
        payload["per_core_efficiency"] = round(efficiency, 3)

    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not identical:
        print("FAIL: parallel CSV differs from serial", file=sys.stderr)
        return 1
    if not single_core and efficiency < EFFICIENCY_BOUND:
        print(f"FAIL: per-core efficiency {efficiency:.3f} below "
              f"{EFFICIENCY_BOUND}x bound "
              f"({speedup:.2f}x over {usable_cores} usable cores)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
