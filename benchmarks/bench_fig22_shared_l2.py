"""Figure 22: shared SNUCA L2 (cache-line interleaving).

Paper: average execution-time saving 24.3% -- better than the private
case for most applications, with fma3d and minighost the exceptions
(their savings drop relative to private L2s).
"""

from repro.analysis.tables import format_percent_table, improvement_summary
from repro.workloads import HIGH_MLP

COLUMNS = ["onchip_net", "offchip_net", "offchip_mem", "exec_time"]


def test_fig22_shared_l2(benchmark, runner, report):
    def experiment():
        shared = {app: runner.pair(app, interleaving="cache_line",
                                   shared=True)
                  for app in runner.apps}
        private = {app: runner.pair(app, interleaving="cache_line")
                   for app in runner.apps}
        return shared, private

    shared, private = benchmark.pedantic(experiment, rounds=1,
                                         iterations=1)
    summary = improvement_summary(shared)
    text = format_percent_table(
        summary, COLUMNS,
        title="Figure 22: reductions with a shared SNUCA L2\n"
              "(paper average exec_time: 24.3%)")
    report("fig22_shared_l2", text)

    avg = summary["average"]
    for key in COLUMNS:
        benchmark.extra_info[key] = avg[key]
    assert avg["exec_time"] > 0.03
    assert avg["onchip_net"] > 0.15  # home-bank localization dominates
    # fma3d profits less from the shared organization than the suite
    # does on average (the paper's exception pair).
    if "fma3d" in shared:
        others = [shared[a].exec_time_reduction for a in shared
                  if a not in HIGH_MLP]
        assert shared["fma3d"].exec_time_reduction < \
            sum(others) / len(others) + 0.02
