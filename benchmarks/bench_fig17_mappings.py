"""Figure 17: execution-time savings under mappings M1 vs. M2.

Paper: in most applications M2 (two controllers per double-size
cluster) reduces the savings -- locality beats extra memory-level
parallelism -- while fma3d and minighost, whose bank queues saturate,
prefer M2.  The compiler analysis of Section 4 selects the mapping
accordingly (reproduced exactly in bench extra_info); in our simulator
M1 stays ahead even for the high-MLP pair, though by the smallest
margins of the suite (see EXPERIMENTS.md for the discrepancy note).
"""

from repro.analysis.tables import format_percent_table
from repro.core.mapping_selection import select_mapping
from repro.workloads import HIGH_MLP


def test_fig17_mappings(benchmark, runner, report):
    def experiment():
        rows = {}
        config = runner.config(interleaving="cache_line")
        m1 = runner.mapping(config, "M1")
        m2 = runner.mapping(config, "M2")
        for app in runner.apps:
            c1 = runner.pair(app, interleaving="cache_line", mapping="M1")
            c2 = runner.pair(app, interleaving="cache_line", mapping="M2")
            chosen = select_mapping([m1, m2], runner.program(app), config)
            rows[app] = {"M1": c1.exec_time_reduction,
                         "M2": c2.exec_time_reduction,
                         "analysis_picks": chosen.mapping.name}
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = {app: {"M1": r["M1"], "M2": r["M2"]}
             for app, r in rows.items()}
    text = format_percent_table(
        table, ["M1", "M2"],
        title="Figure 17: execution-time reduction, M1 vs M2\n"
              "(paper: M1 wins everywhere except fma3d/minighost)")
    picks = ", ".join(f"{a}:{r['analysis_picks']}"
                      for a, r in rows.items())
    text += f"\ncompiler mapping-selection picks: {picks}"
    report("fig17_mappings", text)

    low_mlp = [a for a in rows if a not in HIGH_MLP]
    m1_wins = sum(1 for a in low_mlp if rows[a]["M1"] >= rows[a]["M2"])
    benchmark.extra_info["m1_wins_low_mlp"] = m1_wins
    # M1 wins for (at least almost) every low-MLP application.
    assert m1_wins >= len(low_mlp) - 1
    # The Section 4 analysis prefers M2 exactly for the high-MLP pair.
    for app, r in rows.items():
        expected = "M2" if app in HIGH_MLP else "M1"
        assert r["analysis_picks"] == expected, app
