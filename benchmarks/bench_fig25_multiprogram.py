"""Figure 25: multiprogrammed workloads, weighted speedup.

Paper: co-running pairs of multithreaded applications, the optimized
layouts improve weighted speedup by 5.4%-13.1% depending on the mix --
without the compiler doing anything multiprogramming-specific.
"""

from repro.sim.multiprogram import run_multiprogram

MIXES = (("swim", "galgel"), ("wupwise", "apsi"),
         ("minighost", "hpccg"), ("mgrid", "minimd"))


def test_fig25_multiprogram(benchmark, runner, report):
    def experiment():
        config = runner.config(interleaving="cache_line")
        results = {}
        for mix in MIXES:
            if not all(app in runner.apps for app in mix):
                continue
            programs = [runner.program(app) for app in mix]
            results["+".join(mix)] = run_multiprogram(programs, config)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["Figure 25: weighted speedup of multiprogrammed workloads",
             f"{'workload':<22}{'WS orig':>10}{'WS opt':>10}"
             f"{'improvement':>13}"]
    for name, r in results.items():
        lines.append(f"{name:<22}{r.ws_original:>10.3f}"
                     f"{r.ws_optimized:>10.3f}{r.improvement:>13.1%}")
    if results:
        avg = sum(r.improvement for r in results.values()) / len(results)
        lines.append(f"{'average':<22}{'':>10}{'':>10}{avg:>13.1%}"
                     f"   (paper: 5.4%-13.1%)")
    report("fig25_multiprogram", "\n".join(lines))

    for name, r in results.items():
        benchmark.extra_info[name] = r.improvement
        assert 0 < r.ws_original <= 2.001
        assert r.improvement > -0.02  # never meaningfully hurts
    assert any(r.improvement > 0.02 for r in results.values())
