"""Figure 24: more threads per core.

Paper: savings grow with the thread count per core, because the
baseline's network contention grows dramatically while the optimization
keeps distances (and therefore link occupancy) short.
"""

from repro.analysis.tables import format_percent_table

THREAD_COUNTS = (1, 2)
# the paper's showcased application for this experiment
SPOTLIGHT = "minighost"


def test_fig24_threads_per_core(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in runner.apps:
            rows[app] = {
                f"{tpc} thr/core": runner.pair(
                    app, interleaving="cache_line",
                    threads_per_core=tpc).exec_time_reduction
                for tpc in THREAD_COUNTS}
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    labels = [f"{t} thr/core" for t in THREAD_COUNTS]
    averages = {lab: sum(r[lab] for r in rows.values()) / len(rows)
                for lab in labels}
    rows["average"] = averages
    text = format_percent_table(
        rows, labels,
        title="Figure 24: execution-time reduction vs threads per core\n"
              "(paper: higher thread counts increase the savings)")
    report("fig24_threads_per_core", text)

    benchmark.extra_info.update(averages)
    assert all(v > 0 for v in averages.values())
    # The paper's savings grow with thread count; in our scaled-down
    # model the optimized runs saturate their local controllers at two
    # threads per core, so we only require the advantage to persist
    # within a margin (see EXPERIMENTS.md).
    assert averages[labels[-1]] > averages[labels[0]] - 0.08
