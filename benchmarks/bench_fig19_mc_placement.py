"""Figure 19: different memory-controller placements (P1/P2/P3).

Paper: with four controllers, P2 (edge midpoints) yields slightly
better average savings (~20.7%) than the corner placement P1, because
the mean distance-to-controller is lower; P3 (diagonal) trails.
"""

from repro.analysis.tables import format_percent_table

PLACEMENTS = ("P1", "P2", "P3")


def test_fig19_mc_placement(benchmark, runner, report):
    def experiment():
        rows = {}
        for app in runner.apps:
            rows[app] = {
                p: runner.pair(app, interleaving="cache_line",
                               placement=p).exec_time_reduction
                for p in PLACEMENTS}
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    averages = {p: sum(r[p] for r in rows.values()) / len(rows)
                for p in PLACEMENTS}
    rows["average"] = averages
    text = format_percent_table(
        rows, list(PLACEMENTS),
        title="Figure 19: execution-time reduction per MC placement\n"
              "(paper: P2 slightly best, ~20.7% average)")
    report("fig19_mc_placement", text)

    benchmark.extra_info.update(averages)
    # every placement profits from the optimization on average
    assert all(v > 0.03 for v in averages.values())
    # P2's average is at least competitive with the corner placement
    assert averages["P2"] > averages["P1"] - 0.08
