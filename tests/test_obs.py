"""Tests for the repro.obs observability subsystem.

Covers the span tracer (nesting, isolation, zero-cost off path), the
telemetry registry (metric kinds, merging, pickling), the RunSpec
``obs`` knob (cache-identity exclusion, bit-identical results), the
exporters (Chrome trace, JSONL, Prometheus, heatmap/timeline ASCII and
CSV), the MC queue-occupancy idle-dilution fix, multiprogram per-co-run
isolation, and the CLI verbs (``trace``/``profile``/``sweep
--progress``).
"""

import io
import json
import math
import pickle
import threading

import pytest

from repro.arch.config import MachineConfig
from repro.cli import main
from repro.memsys.controller import ControllerStats
from repro.obs import (ObsData, TelemetryRegistry, Tracer, chrome_trace,
                       jsonl_events, link_heatmap, link_heatmap_csv,
                       mc_timeline, mc_timeline_csv, profile_table,
                       prometheus_text, write_chrome_trace)
from repro.obs.tracer import (NULL_SPAN, activate, current_tracer,
                              obs_span, traced)
from repro.sim.metrics import RunMetrics
from repro.sim.run import RunSpec, run_simulation
from repro.sim.sweep import Sweep
from repro.workloads import DEMO_KERNELS, build_demo_kernel, build_workload


@pytest.fixture(scope="module")
def config():
    return MachineConfig.scaled_default()


@pytest.fixture(scope="module")
def program():
    return build_workload("swim", 0.1)


def _spec(program, config, **kw):
    return RunSpec(program=program, config=config, **kw)


# ---------------------------------------------------------------------------
# tracer

class TestTracer:
    def test_nested_spans_and_counters(self):
        tracer = Tracer(label="t")
        with tracer.activate():
            with obs_span("outer", cat="a"):
                with obs_span("inner", cat="b") as span:
                    span.add(items=3)
        spans = tracer.spans()
        names = [s.name for s in spans]
        assert names == ["outer", "inner"]  # sorted by start time
        outer, inner = spans
        assert inner.args == {"items": 3}
        assert inner.start >= outer.start
        assert inner.end <= outer.end
        assert all(s.run == "t" for s in spans)

    def test_no_active_tracer_is_null_span(self):
        assert current_tracer() is None
        span = obs_span("anything", x=1)
        assert span is NULL_SPAN
        with span as handle:  # all no-ops
            assert handle.add(y=2) is handle

    def test_activation_is_scoped(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with activate(None):
                assert current_tracer() is None
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_traced_decorator(self):
        tracer = Tracer(label="d")

        @traced("work.unit", cat="test")
        def work(n):
            return n * 2

        with tracer.activate():
            assert work(21) == 42
        (span,) = tracer.spans()
        assert span.name == "work.unit"
        assert span.cat == "test"

    def test_thread_isolation_and_merge(self):
        tracer = Tracer(label="mt")

        def worker(i):
            with obs_span("thread.work", idx=i):
                pass

        threads = []
        with tracer.activate():
            ctx = __import__("contextvars").copy_context()
            for i in range(4):
                t = threading.Thread(
                    target=lambda i=i: ctx.run(worker, i))
                threads.append(t)
                t.start()
            for t in threads:
                t.join()
        spans = tracer.spans()
        assert len(spans) == 4
        # every worker's span arrived (tids may be reused across
        # short-lived threads, so assert on the payload instead)
        assert {s.args["idx"] for s in spans} == {0, 1, 2, 3}

    def test_absorb(self):
        inner = Tracer(label="inner")
        with inner.activate():
            with obs_span("leaf"):
                pass
        outer = Tracer(label="outer")
        outer.absorb(inner.spans())
        assert [s.name for s in outer.spans()] == ["leaf"]
        assert outer.spans()[0].run == "inner"  # attribution kept


# ---------------------------------------------------------------------------
# telemetry registry

class TestTelemetry:
    def test_metric_kinds(self):
        reg = TelemetryRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        assert reg.value("c") == 3
        reg.gauge("g").set(5.0)
        reg.gauge("g").set(2.0)
        gauge = reg.get("g")
        assert (gauge.value, gauge.min, gauge.max) == (2.0, 2.0, 5.0)
        hist = reg.histogram("h")
        for v in (0.5, 1.5, 100.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum == pytest.approx(102.0)
        series = reg.series("s")
        series.record(10.0, 1.0)
        series.record(20.0, 3.0)
        points = list(series.points())
        assert points  # bucketed means are queryable
        assert series.sum == pytest.approx(4.0)

    def test_kind_collision_rejected(self):
        reg = TelemetryRegistry()
        reg.counter("x")
        with pytest.raises((TypeError, ValueError)):
            reg.gauge("x")

    def test_merge_folds_counters_and_series(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.counter("only_b").inc(1)
        a.series("s").record(0.0, 1.0)
        b.series("s").record(0.0, 2.0)
        a.merge(b)
        assert a.value("n") == 5
        assert a.value("only_b") == 1
        assert a.get("s").sum == pytest.approx(3.0)

    def test_picklable(self):
        reg = TelemetryRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        reg.series("s").record(100.0, 2.0)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.value("c") == 7
        assert clone.get("h").count == 1
        assert clone.get("s").sum == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# RunSpec.obs semantics

class TestRunSpecObs:
    def test_invalid_level_rejected(self, program, config):
        with pytest.raises(ValueError):
            _spec(program, config, obs="verbose")

    def test_obs_excluded_from_key(self, program, config):
        base = _spec(program, config)
        for level in ("spans", "full"):
            assert _spec(program, config, obs=level).key() == base.key()
        # but real knobs still change the key
        assert _spec(program, config, optimized=True).key() != base.key()

    def test_off_attaches_nothing(self, program, config):
        result = run_simulation(_spec(program, config))
        assert result.obs is None

    def test_spans_level(self, program, config):
        result = run_simulation(_spec(program, config, obs="spans"))
        obs = result.obs
        assert obs is not None and obs.level == "spans"
        assert obs.telemetry is None  # full-only
        names = {s.name for s in obs.spans}
        assert {"run", "trace.generate", "sim.system",
                "sim.events"} <= names

    def test_full_level_results_bit_identical(self, program, config):
        plain = run_simulation(_spec(program, config))
        observed = run_simulation(_spec(program, config, obs="full"))
        assert observed.metrics.exec_time == plain.metrics.exec_time
        assert observed.metrics.offchip == plain.metrics.offchip
        assert observed.metrics.mc_queue_wait == \
            plain.metrics.mc_queue_wait

    def test_full_telemetry_matches_metrics(self, program, config):
        result = run_simulation(_spec(program, config, obs="full"))
        m = result.metrics
        tel = result.obs.telemetry
        assert tel is not None
        assert tel.value("sim.accesses") == m.total_accesses
        assert tel.value("sim.offchip") == m.offchip
        for mc, requests in enumerate(m.mc_requests):
            assert tel.value(f"mc.{mc}.requests") == requests
            series = tel.get(f"mc.{mc}.queue_wait")
            assert series.sum == pytest.approx(m.mc_queue_wait[mc])

    def test_tracer_does_not_leak_after_run(self, program, config):
        run_simulation(_spec(program, config, obs="full"))
        assert current_tracer() is None

    def test_outer_tracer_absorbs_run_spans(self, program, config):
        collector = Tracer(label="collector")
        with collector.activate():
            run_simulation(_spec(program, config, obs="spans"))
        names = {s.name for s in collector.spans()}
        assert "run" in names

    def test_strict_validation_with_obs_telemetry_checker(
            self, program, config):
        # the obs_telemetry checker cross-checks the two ledgers
        result = run_simulation(_spec(program, config, obs="full",
                                      validate="strict"))
        assert result.obs.telemetry is not None


# ---------------------------------------------------------------------------
# MC queue occupancy: idle-dilution fix

class TestQueueOccupancy:
    def test_busy_window_undiluted(self):
        stats = ControllerStats(requests=10, queue_wait_total=100.0,
                                first_arrival=0.0, last_finish=50.0)
        # run-wide: diluted by the 950-cycle idle tail
        assert stats.queue_occupancy(1000.0) == pytest.approx(0.1)
        # busy-window: wait integrated only over cycles with work
        assert stats.busy_elapsed == pytest.approx(50.0)
        assert stats.queue_occupancy_busy() == pytest.approx(2.0)

    def test_no_requests_is_zero(self):
        stats = ControllerStats()
        assert stats.busy_elapsed == 0.0
        assert stats.queue_occupancy_busy() == 0.0

    def test_run_metrics_reports_both(self):
        m = RunMetrics(exec_time=1000.0, mc_queue_wait=[100.0, 0.0],
                       mc_busy_elapsed=[50.0, 0.0])
        assert m.bank_queue_occupancy() == pytest.approx(0.1)
        assert m.bank_queue_occupancy_busy() == pytest.approx(2.0)

    def test_busy_falls_back_without_windows(self):
        m = RunMetrics(exec_time=1000.0, mc_queue_wait=[100.0])
        assert m.bank_queue_occupancy_busy() == \
            m.bank_queue_occupancy()

    def test_simulation_populates_busy_elapsed(self, program, config):
        result = run_simulation(_spec(program, config))
        m = result.metrics
        assert len(m.mc_busy_elapsed) == config.num_mcs
        assert any(b > 0 for b in m.mc_busy_elapsed)
        for busy in m.mc_busy_elapsed:
            assert 0.0 <= busy <= m.exec_time + 1e-6


# ---------------------------------------------------------------------------
# exporters

@pytest.fixture(scope="module")
def observed(program, config):
    return run_simulation(RunSpec(program=program, config=config,
                                  obs="full"))


class TestExporters:
    def test_chrome_trace_structure(self, observed):
        trace = chrome_trace(observed.obs)
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        durations = [e for e in events if e["ph"] == "X"]
        assert durations
        for e in durations:
            assert e["ts"] >= 0 and e["dur"] >= 0
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)
        assert any(e["ph"] == "C" for e in events)  # sim-time counters
        json.dumps(trace)  # fully serializable

    def test_write_chrome_trace(self, observed, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), observed.obs)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count > 0

    def test_multi_run_lanes(self, observed):
        trace = chrome_trace([observed.obs, observed.obs])
        pids = {e["pid"] for e in trace["traceEvents"]
                if e["ph"] == "X" and e.get("cat") != "fault"}
        assert {0, 1} <= pids

    def test_jsonl(self, observed):
        lines = jsonl_events(observed.obs).strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert any(p["event"] == "span" for p in parsed)

    def test_prometheus(self, observed):
        text = prometheus_text(observed.obs)
        assert "# TYPE" in text
        assert "sim_accesses" in text.replace(".", "_") or \
            "sim.accesses" in text

    def test_heatmap_and_timeline(self, observed):
        heat = link_heatmap(observed.obs)
        assert "NoC link occupancy" in heat
        assert RAMP_SCALE_LINE in heat
        timeline = mc_timeline(observed.obs)
        assert "MC" in timeline and "occupancy" in timeline

    def test_csv_exports(self, observed, config):
        heat_csv = link_heatmap_csv(observed.obs)
        header, *rows = heat_csv.strip().splitlines()
        assert header == "run,link,src,dst,flit_hops"
        assert rows
        tl_csv = mc_timeline_csv(observed.obs)
        header, *rows = tl_csv.strip().splitlines()
        assert header.startswith("run,mc,bucket_start_cycle")
        mcs = {int(r.split(",")[1]) for r in rows}
        assert mcs <= set(range(config.num_mcs))

    def test_profile_table(self, observed):
        table = profile_table(observed.obs, top=5)
        assert "run" in table
        assert "100.0%" in table

    def test_obsdata_merged(self, observed):
        merged = ObsData.merged([observed.obs, observed.obs],
                                label="pair")
        assert merged.label == "pair"
        assert len(merged.spans) == 2 * len(observed.obs.spans)
        assert merged.telemetry.value("sim.accesses") == \
            2 * observed.obs.telemetry.value("sim.accesses")

    def test_obsdata_picklable(self, observed):
        clone = pickle.loads(pickle.dumps(observed.obs))
        assert len(clone.spans) == len(observed.obs.spans)
        assert clone.telemetry.value("sim.accesses") == \
            observed.obs.telemetry.value("sim.accesses")


RAMP_SCALE_LINE = "scale: ' .:-=+*#%@'"


# ---------------------------------------------------------------------------
# sweep + multiprogram isolation

class TestSweepObs:
    def test_sweep_collects_merged_obs(self, program, config):
        sweep = Sweep(program, config, obs="full")
        sweep.run(num_mcs=[2, 4])
        obs = sweep.collected_obs()
        assert obs is not None
        # 2 points x (base, opt) = 4 runs, each its own lane
        assert len(obs.meta["runs"]) == 4
        labels = {r["label"] for r in obs.meta["runs"]}
        assert labels == {"swim/original", "swim/optimized"}
        # telemetry folded across all four runs
        assert obs.telemetry is not None
        assert obs.telemetry.value("sim.accesses") > 0

    def test_sweep_off_collects_nothing(self, program, config):
        sweep = Sweep(program, config)
        sweep.run(num_mcs=[2])
        assert sweep.collected_obs() is None


class TestMultiprogramObs:
    @pytest.fixture(scope="class")
    def result(self):
        programs = [build_workload("swim", 0.1),
                    build_workload("mgrid", 0.1)]
        from repro.sim.multiprogram import run_multiprogram
        return run_multiprogram(
            programs, MachineConfig.scaled_default(), obs="full")

    def test_each_corun_isolated(self, result):
        obs = result.obs
        assert obs is not None
        assert {"shared/original", "shared/optimized"} <= set(obs)
        alone = [k for k in obs if k.startswith("alone/")]
        assert len(alone) == 4  # 2 apps x original/optimized
        registries = [part.telemetry for part in obs.values()]
        assert all(r is not None for r in registries)
        assert len({id(r) for r in registries}) == len(registries)

    def test_span_attribution(self, result):
        for label, part in result.obs.items():
            assert part.label == label
            assert part.spans, f"no spans for {label}"
            assert all(s.run == label for s in part.spans)

    def test_shared_sees_all_apps(self, result):
        shared = result.obs["shared/original"]
        assert shared.meta["apps"] == ["swim", "mgrid"]
        total = shared.telemetry.value("sim.accesses")
        alone_total = sum(
            part.telemetry.value("sim.accesses")
            for label, part in result.obs.items()
            if label.startswith("alone/") and label.endswith("/original"))
        assert total == alone_total  # same work, co-scheduled

    def test_off_is_none(self):
        programs = [build_workload("swim", 0.1),
                    build_workload("mgrid", 0.1)]
        from repro.sim.multiprogram import run_multiprogram
        result = run_multiprogram(
            programs, MachineConfig.scaled_default())
        assert result.obs is None


# ---------------------------------------------------------------------------
# CLI verbs

def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCliObs:
    def test_trace_demo_kernel_chrome(self, tmp_path):
        path = tmp_path / "trace.json"
        code, text = run_cli(["trace", "matmul", "--scale", "0.5",
                              "--out", str(path)])
        assert code == 0
        assert "Chrome trace" in text
        trace = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_requires_some_output(self):
        with pytest.raises(SystemExit):
            run_cli(["trace", "matmul"])

    def test_trace_rejects_both_sources(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(["trace", "matmul", "--app", "swim",
                     "--out", str(tmp_path / "t.json")])

    def test_trace_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            run_cli(["trace", "nope", "--out",
                     str(tmp_path / "t.json")])
        assert "unknown workload" in str(err.value)

    def test_trace_heatmap_timeline(self, tmp_path):
        code, text = run_cli(["trace", "matmul", "--scale", "0.5",
                              "--out", str(tmp_path / "t.json"),
                              "--heatmap", "--timeline"])
        assert code == 0
        assert "NoC link occupancy" in text
        assert "occupancy over" in text

    def test_profile_defaults_to_matmul(self):
        code, text = run_cli(["profile", "--scale", "0.5", "--top", "5"])
        assert code == 0
        assert "span" in text and "share" in text
        assert "run" in text

    def test_demo_kernel_registry(self):
        assert "matmul" in DEMO_KERNELS
        program = build_demo_kernel("matmul", 0.5)
        assert program.name == "matmul"
        assert {a.name for a in program.arrays} == {"A", "B", "C"}

    def test_sweep_progress_lines(self, capsys):
        code, _ = run_cli(["sweep", "--app", "swim", "--scale", "0.1",
                           "--axis", "num_mcs=2,4", "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "[sweep] wave 0" in err
        assert "2/2 points done, 0 failed" in err

    def test_sweep_quiet(self, capsys):
        code, _ = run_cli(["sweep", "--app", "swim", "--scale", "0.1",
                           "--axis", "num_mcs=2", "--quiet"])
        assert code == 0
        assert "[sweep]" not in capsys.readouterr().err
