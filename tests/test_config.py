"""Machine configuration: Table 1 defaults and derived values."""

import pytest

from repro.arch.config import (CACHE_LINE_INTERLEAVING, MachineConfig,
                               PAGE_INTERLEAVING)


class TestTable1Defaults:
    """The paper_default configuration reproduces Table 1 verbatim."""

    def test_table1(self):
        cfg = MachineConfig.paper_default()
        assert (cfg.mesh_width, cfg.mesh_height) == (8, 8)
        assert cfg.l1_size == 16 * 1024
        assert cfg.l1_line == 64
        assert cfg.l1_ways == 2
        assert cfg.l2_size == 256 * 1024
        assert cfg.l2_line == 256
        assert cfg.l2_ways == 16
        assert (cfg.l1_latency, cfg.l2_latency, cfg.hop_latency) == \
            (2, 10, 4)
        assert cfg.link_bytes == 16
        assert cfg.num_mcs == 4
        assert cfg.mc_placement == "P1"          # four corners
        assert cfg.row_buffer_bytes == 4096      # = page size
        assert cfg.page_size == 4096
        assert cfg.interleaving == PAGE_INTERLEAVING
        assert not cfg.shared_l2

    def test_interleave_unit(self):
        cfg = MachineConfig.paper_default()
        assert cfg.interleave_unit == 4096
        assert cfg.with_(
            interleaving=CACHE_LINE_INTERLEAVING).interleave_unit == 256

    def test_flits(self):
        cfg = MachineConfig.paper_default()
        assert cfg.data_flits == 16   # 256 B line / 16 B links
        assert cfg.control_flits == 1


class TestScaling:
    def test_scaled_keeps_structure(self):
        cfg = MachineConfig.scaled_default()
        paper = MachineConfig.paper_default()
        assert cfg.l1_line == paper.l1_line
        assert cfg.l2_line == paper.l2_line
        assert cfg.num_mcs == paper.num_mcs
        assert cfg.l1_size < paper.l1_size
        assert cfg.l2_size < paper.l2_size

    def test_scaled_ratio(self):
        cfg = MachineConfig.scaled_default(scale=16)
        assert cfg.l1_size == 1024
        assert cfg.l2_size == 16 * 1024


class TestValidation:
    def test_bad_interleaving(self):
        with pytest.raises(ValueError):
            MachineConfig(interleaving="bogus")

    def test_line_ratio_checked(self):
        with pytest.raises(ValueError):
            MachineConfig(l1_line=96)

    def test_page_multiple_checked(self):
        with pytest.raises(ValueError):
            MachineConfig(page_size=300)


class TestDerived:
    def test_num_cores(self):
        assert MachineConfig(mesh_width=4, mesh_height=8).num_cores == 32

    def test_default_mapping_is_m1(self):
        mapping = MachineConfig.scaled_default().default_mapping()
        assert mapping.name == "M1"
        assert mapping.num_clusters == 4

    def test_with_(self):
        cfg = MachineConfig.scaled_default().with_(num_mcs=8)
        assert cfg.num_mcs == 8

    def test_effective_overlap(self):
        cfg = MachineConfig.scaled_default()
        assert cfg.effective_overlap(2.0) == cfg.miss_overlap
        assert cfg.effective_overlap(10.0) <= cfg.mlp_overlap_cap
        assert cfg.effective_overlap(10.0) > cfg.effective_overlap(3.0)
