"""Determinism: identical inputs give bit-identical results.

A research simulator must be reproducible run to run -- the trace
jitter, first-touch races, indexed-profile sampling and FR-FCFS state
are all seeded or derived deterministically.
"""

import pytest

from repro.arch.config import MachineConfig
from repro.sim.run import RunSpec, run_pair, run_simulation
from repro.sim.sweep import Sweep
from repro.workloads import build_workload

SCALE = 0.3


def snapshot(metrics):
    return (metrics.exec_time, metrics.total_accesses, metrics.l1_hits,
            metrics.l2_hits, metrics.onchip_remote, metrics.offchip,
            metrics.onchip_net_sum, metrics.offchip_net_sum,
            metrics.offchip_mem_sum, tuple(metrics.mc_requests))


class TestDeterminism:
    @pytest.mark.parametrize("interleaving", ["cache_line", "page"])
    def test_identical_runs(self, interleaving):
        cfg = MachineConfig.scaled_default().with_(
            interleaving=interleaving)
        prog = build_workload("galgel", SCALE)
        a = run_simulation(RunSpec(program=prog, config=cfg,
                                   optimized=True)).metrics
        b = run_simulation(RunSpec(program=prog, config=cfg,
                                   optimized=True)).metrics
        assert snapshot(a) == snapshot(b)

    def test_fresh_program_object(self):
        """Rebuilding the workload model gives the same simulation."""
        cfg = MachineConfig.scaled_default().with_(
            interleaving="cache_line")
        a = run_simulation(RunSpec(
            program=build_workload("hpccg", SCALE),
            config=cfg)).metrics
        b = run_simulation(RunSpec(
            program=build_workload("hpccg", SCALE),
            config=cfg)).metrics
        assert snapshot(a) == snapshot(b)

    def test_first_touch_deterministic(self):
        cfg = MachineConfig.scaled_default()
        prog = build_workload("swim", SCALE)
        a = run_simulation(RunSpec(program=prog, config=cfg,
                                   page_policy="first_touch")).metrics
        b = run_simulation(RunSpec(program=prog, config=cfg,
                                   page_policy="first_touch")).metrics
        assert snapshot(a) == snapshot(b)

    def test_sweep_agrees_with_run_pair(self):
        """The sweep harness and the plain runner produce identical
        comparisons for the same configuration."""
        cfg = MachineConfig.scaled_default().with_(
            interleaving="cache_line")
        prog = build_workload("swim", SCALE)
        _, _, direct = run_pair(prog, cfg)
        point = Sweep(prog, cfg).run(mapping=["M1"])[0]
        assert point.comparison.as_row() == direct.as_row()
