"""Determining the Data-to-Core mapping (Section 5.2)."""

import pytest

from repro.core import linalg
from repro.core.data_to_core import (RefSystem, build_unimodular,
                                     data_to_core_mapping, partition_vector,
                                     submatrix_without_column)


def ref(access, u=0, lo=0, weight=100, offset=None):
    n = len(access)
    off = tuple(offset) if offset is not None else (0,) * n
    return RefSystem(tuple(tuple(r) for r in access), off, u, lo, weight)


class TestSubmatrix:
    def test_removes_column(self):
        a = [[1, 2, 3], [4, 5, 6]]
        assert submatrix_without_column(a, 1) == [[1, 3], [4, 6]]

    def test_bad_column(self):
        with pytest.raises(ValueError):
            submatrix_without_column([[1, 2]], 5)


class TestPartitionVector:
    def test_paper_example(self):
        # Figure 9(a): ref Z[j][i], parallel loop j (u per B = (0,1)^T).
        # B = (0, 1)^T; the solution satisfies B^T g = 0.
        g = partition_vector([[0], [1]])
        assert g == [1, 0]

    def test_identity_ref(self):
        # X[i][j], parallel i: B = column j = (0,1)^T -> g = (1,0).
        g = partition_vector([[0], [1]])
        assert g is not None
        assert g[0] * 0 + g[1] * 1 == 0

    def test_unsolvable(self):
        # B square full rank: no nontrivial solution (art's WGT case).
        assert partition_vector([[1, 0], [0, 1]]) is None

    def test_depth_one_nest(self):
        # B has no columns: anything works; the default picks e_1.
        g = partition_vector([[], [], []])
        assert g == [1, 0, 0]


class TestBuildUnimodular:
    def test_keeps_sign(self):
        u = build_unimodular([-1, 0])
        assert u[0] == [-1, 0]
        assert linalg.is_unimodular(u)

    def test_divides_gcd(self):
        u = build_unimodular([2, 4])
        assert u[0] == [1, 2]

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            build_unimodular([0, 0])


class TestDataToCoreMapping:
    def test_empty(self):
        result = data_to_core_mapping([])
        assert not result.optimized

    def test_single_reference(self):
        # X[i][j] with i parallel: partition along dim 0.
        result = data_to_core_mapping([ref([[1, 0], [0, 1]])])
        assert result.optimized
        assert result.partition_row == [1, 0]
        assert result.satisfaction == 1.0

    def test_transposed_reference(self):
        # B[j][i] with i parallel (galgel): U must swap dimensions.
        result = data_to_core_mapping([ref([[0, 1], [1, 0]])])
        assert result.optimized
        assert result.partition_row == [0, 1]
        assert result.transform[0] == [0, 1]

    def test_unsolvable_single(self):
        # art's WGT: access independent of the parallel iterator.
        result = data_to_core_mapping(
            [ref([[0, 1, 0], [0, 0, 1]], u=0)])
        assert not result.optimized

    def test_weighted_majority_wins(self):
        heavy = ref([[1, 0], [0, 1]], weight=1000)
        light = ref([[0, 1], [1, 0]], weight=10)
        result = data_to_core_mapping([heavy, light])
        assert result.partition_row == [1, 0]
        assert result.satisfied_weight == 1000
        assert result.total_weight == 1010
        assert 0.9 < result.satisfaction < 1.0

    def test_weights_accumulate_across_nests(self):
        # Section 5.5: same submatrix from different nests accumulates.
        a = ref([[1, 0], [0, 1]], weight=400)
        b = ref([[1, 0], [0, 1]], weight=400, lo=2)
        c = ref([[0, 1], [1, 0]], weight=700)
        result = data_to_core_mapping([a, b, c])
        assert result.partition_row == [1, 0]  # 800 beats 700

    def test_falls_through_to_solvable_system(self):
        unsolvable = ref([[0, 1, 0], [0, 0, 1]], u=0, weight=10_000)
        solvable = ref([[1, 0, 0], [0, 0, 1]], u=0, weight=5)
        result = data_to_core_mapping([unsolvable, solvable])
        assert result.optimized
        assert result.satisfaction < 0.01  # the gate's job to reject

    def test_orientation_normalized(self):
        # Reference X[-i][j]: alpha < 0 under g=(1,0); g must flip.
        r = ref([[-1, 0], [0, 1]])
        result = data_to_core_mapping([r])
        assert r.alpha(result.partition_row) > 0

    def test_anchor_from_lower_bound(self):
        # X[i][j] with i in [3, n): thread 0's slab starts at 3.
        result = data_to_core_mapping([ref([[1, 0], [0, 1]], lo=3)])
        assert result.partition_anchor == 3

    def test_anchor_includes_offset(self):
        # X[i+2][j] with i from 0: slab starts at 2.
        result = data_to_core_mapping(
            [ref([[1, 0], [0, 1]], offset=(2, 0))])
        assert result.partition_anchor == 2

    def test_stencil_offsets_share_system(self):
        # X[i][j], X[i+1][j], X[i-1][j]: one submatrix, all satisfied.
        refs = [ref([[1, 0], [0, 1]], offset=(d, 0)) for d in (-1, 0, 1)]
        result = data_to_core_mapping(refs)
        assert result.satisfaction == 1.0
        assert len(result.systems) == 1
        assert result.systems[0].num_references == 3

    def test_transform_is_unimodular(self):
        result = data_to_core_mapping(
            [ref([[2, 1, 0], [1, 0, 1], [0, 0, 1]], u=1)])
        if result.optimized:
            assert linalg.is_unimodular(result.transform)

    def test_hyperplane_isolation_property(self):
        """Eq. (2): iterations on one iteration hyperplane touch data on
        one transformed-data hyperplane."""
        access = [[1, 1], [0, 1]]  # X[i+j][j], parallel i (u=0)
        result = data_to_core_mapping([ref(access)])
        assert result.optimized
        g = result.partition_row
        # any two iterations with equal i_u=i must give equal g . (A di)
        b = submatrix_without_column(access, 0)
        for col in linalg.transpose(b):
            assert sum(gi * ci for gi, ci in zip(g, col)) == 0
