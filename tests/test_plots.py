"""ASCII plotting helpers."""

from repro.analysis.plots import (bar_chart, cdf_plot, grouped_bar_chart,
                                  heat_grid)


class TestBarChart:
    def test_basic(self):
        text = bar_chart({"swim": 0.25, "apsi": 0.05}, title="T")
        assert "T" in text
        assert "swim" in text
        assert "25.0%" in text
        assert text.count("#") > 0

    def test_negative_values(self):
        text = bar_chart({"a": -0.1, "b": 0.2})
        assert "-" in text.splitlines()[0]

    def test_empty(self):
        assert bar_chart({}, title="x") == "x"

    def test_fixed_scale(self):
        narrow = bar_chart({"a": 0.1}, vmax=1.0, width=10)
        bars = narrow.splitlines()[0].split("|")[1]
        assert bars.count("#") == 1


class TestGroupedBars:
    def test_two_series(self):
        text = grouped_bar_chart(
            {"swim": {"M1": 0.2, "M2": 0.1}},
            series=["M1", "M2"])
        assert "M1" in text and "M2" in text
        assert "20.0%" in text

    def test_empty(self):
        assert grouped_bar_chart({}, ["x"], title="t") == "t"


class TestCdfPlot:
    def test_axes_and_markers(self):
        text = cdf_plot({"orig": [0.0, 0.5, 1.0],
                         "opt": [0.2, 0.8, 1.0]})
        assert "o=orig" in text
        assert "x=opt" in text
        assert "(hops)" in text
        assert "1.0 |" in text

    def test_overlap_marker(self):
        text = cdf_plot({"a": [1.0], "b": [1.0]})
        assert "*" in text

    def test_empty(self):
        assert cdf_plot({}, title="c") == "c"


class TestHeatGrid:
    def test_density(self):
        text = heat_grid([[0.0, 0.5], [0.0, 1.0]])
        lines = text.splitlines()
        assert lines[0][:2] == "  "      # zero cell blank
        assert "@" in lines[1]           # max cell darkest
        assert "scale" in lines[-1]
