"""The structured error taxonomy (repro.errors)."""

import pytest

from repro.errors import (FrontendError, LayoutError, ReproError,
                          SimulationError, SimulationTimeout, SolverError)


class TestTaxonomy:
    def test_kinds(self):
        assert FrontendError("x").kind == "frontend"
        assert SolverError("x").kind == "solver"
        assert LayoutError("x").kind == "layout"
        assert SimulationError("x").kind == "simulation"
        assert SimulationTimeout("x").kind == "simulation"

    def test_all_are_repro_errors(self):
        for cls in (FrontendError, SolverError, LayoutError,
                    SimulationError, SimulationTimeout):
            assert issubclass(cls, ReproError)
        assert issubclass(SimulationTimeout, SimulationError)

    def test_catchable_as_exception(self):
        with pytest.raises(ReproError):
            raise SolverError("no solution")


class TestContext:
    def test_str_includes_location_and_array(self):
        err = FrontendError("unexpected token", line=7, column=3)
        assert "line 7:3" in str(err)
        assert "[frontend]" in str(err)

        err = SolverError("singular system", array="Z", nest="sweep")
        text = str(err)
        assert "array 'Z'" in text and "nest 'sweep'" in text

    def test_plain_message_without_context(self):
        assert str(SimulationError("boom")) == "[simulation] boom"

    def test_context_dict_skips_empty_fields(self):
        err = LayoutError("bad stride", array="A")
        ctx = err.context()
        assert ctx == {"kind": "layout", "array": "A"}

    def test_cause_is_attached(self):
        cause = ValueError("inner")
        err = SolverError("outer", cause=cause)
        assert err.cause is cause


class TestTransient:
    def test_default_not_transient(self):
        assert not SimulationError("x").transient
        assert not SolverError("x").transient

    def test_timeout_is_transient_by_default(self):
        assert SimulationTimeout("slow").transient
        assert SimulationTimeout("slow").context()["transient"] is True

    def test_transient_flag_settable(self):
        assert SimulationError("flaky", transient=True).transient
        assert not SimulationTimeout("hard", transient=False).transient
