"""Compile/trace memoization: sharing, invalidation, bit-identity.

The memo (repro.sim.memo) may only ever be a *pure* cache: two runs
share an artifact exactly when recomputing it would produce the same
value.  These tests pin the invalidation semantics (a key-relevant
change recomputes, an irrelevant one shares), the bit-identity of
memo-on vs memo-off runs, the read-only protection on cached trace
arrays, and the LRU/configure plumbing.
"""

import numpy as np
import pytest

from repro.arch.config import MachineConfig
from repro.sim import memo
from repro.sim.run import RunSpec, run_simulation
from repro.workloads import build_workload

SCALE = 0.2


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts from an empty, enabled, default-sized memo."""
    memo.configure(enabled=True, capacity=8)
    yield
    memo.configure(enabled=True, capacity=8)


def _spec(program, config, **kw):
    return RunSpec(program=program, config=config, **kw)


def _metrics_equal(a, b):
    for name, x in vars(a).items():
        y = getattr(b, name)
        if isinstance(x, np.ndarray):
            if not np.array_equal(x, y):
                return False
        elif x != y:
            return False
    return True


def test_repeat_run_hits_cache_and_is_identical():
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    spec = _spec(program, config, optimized=True)
    first = run_simulation(spec).metrics
    hits_before = memo.cache.hits
    second = run_simulation(spec).metrics
    assert memo.cache.hits >= hits_before + 2  # compile + trace
    assert _metrics_equal(first, second)


def test_memo_off_bit_identical():
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    spec = _spec(program, config, optimized=True)
    warm = run_simulation(spec).metrics
    cached = run_simulation(spec).metrics        # memo hit
    memo.configure(enabled=False)
    cold = run_simulation(spec).metrics          # recomputed
    assert _metrics_equal(warm, cached)
    assert _metrics_equal(warm, cold)


def test_baseline_shared_across_mapping_axis():
    # Original layouts never depend on the mapping: two baseline runs
    # differing only in mapping share both compile and trace artifacts.
    from repro.sim.executor import resolve_mapping
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    keys = set()
    for name in ("M1", "M2"):
        spec = _spec(program, config,
                     mapping=resolve_mapping(config, name),
                     optimized=False)
        keys.add((memo.compile_key(spec), memo.trace_key(spec)))
    assert len(keys) == 1


def test_optimized_mapping_change_recomputes():
    from repro.sim.executor import resolve_mapping
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    keys = {memo.compile_key(_spec(program, config,
                                   mapping=resolve_mapping(config, name),
                                   optimized=True))
            for name in ("M1", "M2")}
    assert len(keys) == 2


def test_irrelevant_config_field_shares_baseline_traces():
    # hop_latency is not read by placement or trace generation: two
    # baseline runs differing only in it share one trace set.
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    a = _spec(program, config, optimized=False)
    b = _spec(program, config.with_(hop_latency=config.hop_latency + 1),
              optimized=False)
    assert memo.trace_key(a) == memo.trace_key(b)


@pytest.mark.parametrize("field, value", [
    ("interleaving", "page"),
    ("num_mcs", 8),
    ("threads_per_core", 2),
])
def test_trace_relevant_field_invalidates(field, value):
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default().with_(
        interleaving="cache_line")
    a = _spec(program, config, optimized=False)
    b = _spec(program, config.with_(**{field: value}), optimized=False)
    assert memo.trace_key(a) != memo.trace_key(b)


def test_program_change_invalidates():
    config = MachineConfig.scaled_default()
    a = _spec(build_workload("swim", SCALE), config, optimized=False)
    b = _spec(build_workload("mgrid", SCALE), config, optimized=False)
    assert memo.compile_key(a) != memo.compile_key(b)
    assert memo.trace_key(a) != memo.trace_key(b)


def test_cached_trace_arrays_are_read_only():
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    spec = _spec(program, config, optimized=True)
    run_simulation(spec)
    _, layouts, _ = memo.compiled(spec)
    _, _, traces = memo.placed_traces(spec, layouts)
    with pytest.raises(ValueError):
        traces[0].vaddrs[0] = 0


def test_seed_and_fault_axes_share_artifacts():
    # Seeds and fault plans act downstream of trace generation: every
    # seed of one grid point reuses the same compile+trace entries.
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    run_simulation(_spec(program, config, optimized=True, seed=0,
                         page_policy="first_touch"))
    hits_before = memo.cache.hits
    m1 = run_simulation(_spec(program, config, optimized=True, seed=1,
                              page_policy="first_touch")).metrics
    assert memo.cache.hits >= hits_before + 2
    memo.configure(enabled=False)
    m2 = run_simulation(_spec(program, config, optimized=True, seed=1,
                              page_policy="first_touch")).metrics
    assert _metrics_equal(m1, m2)


def test_lru_eviction_bounds_entries():
    memo.configure(capacity=2)
    config = MachineConfig.scaled_default()
    for app in ("swim", "mgrid", "applu"):
        run_simulation(_spec(build_workload(app, SCALE), config,
                             optimized=False))
    assert len(memo.cache) <= 2


def test_configure_clears_and_disables():
    program = build_workload("swim", SCALE)
    config = MachineConfig.scaled_default()
    run_simulation(_spec(program, config, optimized=True))
    assert len(memo.cache) > 0
    memo.configure(enabled=False)
    assert len(memo.cache) == 0
    assert not memo.enabled()
    run_simulation(_spec(program, config, optimized=True))
    assert len(memo.cache) == 0  # disabled: nothing stored
    memo.configure(enabled=True)
    assert memo.enabled()


def test_obs_spans_present_on_hit_path():
    # tests/test_obs.py pins the span names a run must emit; a memo
    # hit must keep emitting them (marked memo="hit") or observability
    # silently loses its trace.generate/os.place lanes.
    import repro.api as api
    program = build_workload("swim", SCALE)
    api.run(program=program, optimized=True, obs="full")
    result = api.run(program=program, optimized=True, obs="full")
    names = {span.name for span in result.obs.spans}
    assert {"run", "os.place", "trace.generate", "sim.system",
            "sim.events"} <= names
    hit_spans = [span for span in result.obs.spans
                 if (span.args or {}).get("memo") == "hit"]
    assert hit_spans


def test_cache_is_thread_safe_under_concurrent_mutation():
    # ArtifactCache serves parallel hardened sweeps from one process;
    # hammer it from several threads (gets, puts, configure/clear) and
    # require no exception and an intact size invariant at the end.
    import threading

    memo.configure(enabled=True, capacity=16)
    errors = []
    start = threading.Barrier(8)

    def worker(slot):
        try:
            start.wait()
            for i in range(300):
                key = ("k", slot % 4, i % 8)
                memo.cache.put(key, (slot, i))
                got = memo.cache.get(key)
                assert got is None or got[0] in range(8)
                key in memo.cache
                len(memo.cache)
                if i % 97 == 0:
                    memo.configure(enabled=True, capacity=16)
        except Exception as err:  # pragma: no cover - failure path
            errors.append(err)

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(memo.cache) <= 16
